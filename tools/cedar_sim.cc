// cedar_sim: flag-driven experiment runner — the Swiss-army entry point for
// exploring workloads, policies, deadlines, and execution engines without
// writing code.
//
// Examples:
//   cedar_sim --workload=facebook --policies=prop-split,cedar,ideal
//             --deadlines=500,1000,2000 --queries=100
//   cedar_sim --workload=interactive --engine=cluster --machines=80 --slots=4
//   cedar_sim --workload=facebook --engine=loaded --interarrival=200
//             --policies=cedar
//   cedar_sim --workload=google-sigma:1.7 --csv=/tmp/results.csv

#include <iostream>
#include <sstream>

#include "src/cluster/experiment.h"
#include "src/cluster/loaded_runtime.h"
#include "src/common/csv.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/policy_registry.h"
#include "src/obs/obs_flags.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace {

std::vector<double> ParseDoubleList(const std::string& text) {
  std::vector<double> values;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      values.push_back(std::stod(token));
    }
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags(
      "cedar_sim: run aggregation-query experiments from the command line.\n"
      "Engines: sim (analytic tree simulator), cluster (slot-scheduled engine),\n"
      "loaded (multi-query Poisson arrivals on a shared cluster).");
  std::string* workload_name =
      flags.AddString("workload", "facebook", "workload name (see src/trace/workloads.h)");
  std::string* policy_list = flags.AddString(
      "policies", "prop-split,cedar,ideal", "comma-separated policy names");
  std::string* deadlines_text =
      flags.AddString("deadlines", "500,1000,2000,3000", "comma-separated deadlines");
  std::string* engine = flags.AddString("engine", "sim", "sim | cluster | loaded");
  int64_t* queries = flags.AddInt("queries", 100, "queries per deadline");
  int64_t* k1 = flags.AddInt("k1", 50, "bottom fanout");
  int64_t* k2 = flags.AddInt("k2", 50, "upper fanout");
  int64_t* machines = flags.AddInt("machines", 80, "cluster machines (cluster/loaded engines)");
  int64_t* slots = flags.AddInt("slots", 4, "slots per machine");
  double* slow_fraction =
      flags.AddDouble("slow_fraction", 0.0, "fraction of slow machines (cluster engine)");
  double* slow_factor = flags.AddDouble("slow_factor", 1.0, "slowdown of slow machines");
  bool* speculation = flags.AddBool("speculation", false, "enable task speculation (cluster)");
  double* interarrival =
      flags.AddDouble("interarrival", 100.0, "mean query inter-arrival time (loaded engine)");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  int64_t* threads = flags.AddInt(
      "threads", 0, "experiment worker threads (0 = one per hardware thread)");
  std::string* csv_path = flags.AddString("csv", "", "also write results to this CSV file");
  ObservabilityFlags obs = AddObservabilityFlags(flags);
  flags.Parse(argc, argv);
  ObservabilityScope obs_scope = InitObservability(obs);

  auto workload =
      MakeWorkloadByName(*workload_name, static_cast<int>(*k1), static_cast<int>(*k2));
  auto policies = MakePolicyList(*policy_list);
  std::vector<const WaitPolicy*> policy_ptrs = PolicyPointers(policies);
  std::vector<double> deadlines = ParseDoubleList(*deadlines_text);

  std::vector<std::string> columns = {"deadline"};
  for (const auto* policy : policy_ptrs) {
    columns.push_back("q(" + policy->name() + ")");
  }
  if (*engine == "loaded") {
    columns.push_back("utilization");
    columns.push_back("mean_queue_delay");
  }
  TablePrinter table(columns);
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<CsvWriter>(*csv_path);
    csv->Header(columns);
  }

  PrintBanner(std::cout, "cedar_sim: " + workload->name() + " on engine '" + *engine + "'");
  std::cout << "offline tree: " << workload->OfflineTree().ToString() << "\n";

  for (double deadline : deadlines) {
    std::vector<std::string> row = {TablePrinter::FormatDouble(deadline, 0)};
    if (*engine == "sim") {
      ExperimentConfig config;
      config.deadline = deadline;
      config.num_queries = static_cast<int>(*queries);
      config.seed = static_cast<uint64_t>(*seed);
      config.threads = static_cast<int>(*threads);
      auto result = RunExperiment(*workload, policies, config);
      for (const auto* policy : policy_ptrs) {
        row.push_back(TablePrinter::FormatDouble(result.Outcome(policy->name()).MeanQuality(), 4));
      }
    } else if (*engine == "cluster") {
      ClusterExperimentConfig config;
      config.cluster.machines = static_cast<int>(*machines);
      config.cluster.slots_per_machine = static_cast<int>(*slots);
      config.cluster.slow_machine_fraction = *slow_fraction;
      config.cluster.slow_machine_factor = *slow_factor;
      config.deadline = deadline;
      config.num_queries = static_cast<int>(*queries);
      config.seed = static_cast<uint64_t>(*seed);
      config.threads = static_cast<int>(*threads);
      config.run.speculation.enabled = *speculation;
      auto result = RunClusterExperiment(*workload, policies, config);
      for (const auto* policy : policy_ptrs) {
        row.push_back(TablePrinter::FormatDouble(result.Outcome(policy->name()).MeanQuality(), 4));
      }
    } else if (*engine == "loaded") {
      LoadedRunConfig config;
      config.cluster.machines = static_cast<int>(*machines);
      config.cluster.slots_per_machine = static_cast<int>(*slots);
      config.deadline = deadline;
      config.mean_interarrival = *interarrival;
      config.num_queries = static_cast<int>(*queries);
      config.seed = static_cast<uint64_t>(*seed);
      double utilization = 0.0;
      double queue_delay = 0.0;
      for (const auto* policy : policy_ptrs) {
        LoadedRunResult result = RunLoadedCluster(*workload, *policy, config);
        row.push_back(TablePrinter::FormatDouble(result.MeanQuality(), 4));
        utilization = result.utilization;
        queue_delay = result.mean_queue_delay;
      }
      row.push_back(TablePrinter::FormatDouble(utilization, 3));
      row.push_back(TablePrinter::FormatDouble(queue_delay, 2));
    } else {
      CEDAR_LOG(FATAL) << "unknown engine '" << *engine << "' (sim | cluster | loaded)";
    }
    if (csv != nullptr) {
      csv->Row(row);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  if (csv != nullptr) {
    std::cout << "results written to " << *csv_path << "\n";
  }
  FinishObservability(obs, obs_scope, std::cout);
  return 0;
}
