// cedar_plan: compute the optimal wait plan and quality curve for a tree
// described on the command line — the "what would Cedar do" calculator.
//
//   cedar_plan --stages="lognormal:2.77:0.84:50,lognormal:3.25:0.95:50"
//              --deadline=1000
//   cedar_plan --stages="normal:40:80:50,normal:40:10:50" --deadline=200
//              --target_quality=0.9
//
// Each stage is family:p1:p2:fanout, bottom first. Prints the per-tier
// optimal waits, the expected quality, a q_n(d) curve, and (optionally) the
// dual-problem answer for --target_quality.

#include <iostream>
#include <sstream>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/dual.h"
#include "src/core/wait_optimizer.h"
#include "src/obs/obs_flags.h"

namespace {

cedar::TreeSpec ParseStages(const std::string& text) {
  using namespace cedar;
  std::vector<StageSpec> stages;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    std::istringstream stage_in(token);
    std::string family;
    std::string p1;
    std::string p2;
    std::string fanout;
    CEDAR_CHECK(std::getline(stage_in, family, ':') && std::getline(stage_in, p1, ':') &&
                std::getline(stage_in, p2, ':') && std::getline(stage_in, fanout, ':'))
        << "bad stage spec '" << token << "' (want family:p1:p2:fanout)";
    DistributionSpec spec;
    spec.family = DistributionFamilyFromName(family);
    spec.p1 = std::stod(p1);
    spec.p2 = std::stod(p2);
    stages.emplace_back(std::shared_ptr<const Distribution>(MakeDistribution(spec)),
                        std::stoi(fanout));
  }
  return TreeSpec(std::move(stages));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("cedar_plan: optimal wait plan for a described aggregation tree.");
  std::string* stages_text = flags.AddString(
      "stages", "lognormal:2.77:0.84:50,lognormal:3.25:0.95:50",
      "comma-separated stages, bottom first, each family:p1:p2:fanout");
  double* deadline = flags.AddDouble("deadline", 1000.0, "end-to-end deadline");
  double* target = flags.AddDouble("target_quality", 0.0,
                                   "if > 0, also solve min deadline for this quality");
  int64_t* curve_points = flags.AddInt("curve_points", 12, "points of q_n(d) to print");
  ObservabilityFlags obs = AddObservabilityFlags(flags);
  flags.Parse(argc, argv);
  // --metrics-report exposes the CEDAR_PROFILE_SCOPE timings of the wait
  // optimizer / curve stack this tool exercises; --trace-out is accepted for
  // interface parity (planning alone emits no query-lifecycle spans).
  ObservabilityScope obs_scope = InitObservability(obs);

  TreeSpec tree = ParseStages(*stages_text);
  PrintBanner(std::cout, "cedar_plan: " + tree.ToString());

  TreePlan plan = PlanTree(tree, *deadline);
  TablePrinter waits({"tier", "absolute_wait", "share_of_deadline_%"});
  for (size_t tier = 0; tier < plan.absolute_waits.size(); ++tier) {
    waits.AddRow({std::to_string(tier),
                  TablePrinter::FormatDouble(plan.absolute_waits[tier], 2),
                  TablePrinter::FormatDouble(100.0 * plan.absolute_waits[tier] / *deadline, 1)});
  }
  waits.Print(std::cout);
  std::cout << "expected quality q_n(" << *deadline
            << ") = " << TablePrinter::FormatDouble(plan.expected_quality, 4) << "\n";

  PrintBanner(std::cout, "maximum expected quality vs deadline");
  TablePrinter curve({"deadline", "q_n"});
  auto stack = BuildQualityCurveStack(tree, *deadline);
  for (int i = 1; i <= *curve_points; ++i) {
    double d = *deadline * static_cast<double>(i) / static_cast<double>(*curve_points);
    curve.AddNumericRow({d, stack[0](d)}, 4);
  }
  curve.Print(std::cout);

  if (*target > 0.0) {
    DualSolution dual = SolveDeadlineForQuality(tree, *target, 100.0 * *deadline);
    PrintBanner(std::cout, "dual problem");
    if (dual.feasible) {
      std::cout << "smallest deadline with q_n >= " << *target << ": "
                << TablePrinter::FormatDouble(dual.deadline, 2) << " (achieves "
                << TablePrinter::FormatDouble(dual.achieved_quality, 4) << ")\n";
    } else {
      std::cout << "target " << *target << " unreachable within " << 100.0 * *deadline << "\n";
    }
  }
  FinishObservability(obs, obs_scope, std::cout);
  return 0;
}
