#!/usr/bin/env bash
# tools/check.sh — Cedar's full verification matrix (DESIGN.md §10).
#
# Runs, in order, stopping at the first failure:
#   format   clang-format --dry-run -Werror against the checked-in .clang-format
#   build    default build, warnings-as-errors (-DCEDAR_WERROR=ON)
#   test     the full ctest suite in build/
#   lint     ctest -L tier1_lint (cedar_lint tree scan + rule fixture suite)
#   lockgraph ctest -L tier1_lockgraph (lock-discipline tree scan + fixtures)
#   store    ctest -L tier1_store (wait-table store suite + microbench smoke run)
#   asan     AddressSanitizer build in build-asan/, ctest -L tier1_asan
#   ubsan    UndefinedBehaviorSanitizer build in build-ubsan/, ctest -L tier1_ubsan
#   tsan     ThreadSanitizer build in build-tsan/, ctest -L tier1_tsan
#   tidy     clang-tidy over every target in build-tidy/ (-DCEDAR_CLANG_TIDY=ON)
#   tsafety  clang -Wthread-safety build in build-tsafety/ (-DCEDAR_THREAD_SAFETY=ON)
#
# Stages whose external tool is not installed (clang-format, clang-tidy) are
# reported SKIP rather than failing: the container bakes in only the gcc
# toolchain, and a skipped optional gate must not mask the mandatory ones.
# Exit status: 0 when every non-skipped stage passed, 1 on the first failure.
#
# Usage: tools/check.sh [--jobs=N] [--only=stage[,stage...]]

set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
ONLY=""

for arg in "$@"; do
  case "$arg" in
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    --only=*) ONLY="${arg#--only=}" ;;
    *)
      echo "usage: tools/check.sh [--jobs=N] [--only=stage,...]" >&2
      exit 2
      ;;
  esac
done

STAGE_NAMES=()
STAGE_RESULTS=()

record() { STAGE_NAMES+=("$1"); STAGE_RESULTS+=("$2"); }

summary() {
  echo
  echo "==== check.sh stage summary ===="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-9s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
  done
}

wanted() {
  [[ -z "$ONLY" ]] && return 0
  [[ ",$ONLY," == *",$1,"* ]]
}

# run_stage <name> <command...>: runs the command, records PASS/FAIL, and on
# FAIL prints the summary and exits non-zero immediately (first-failure stop).
run_stage() {
  local name="$1"
  shift
  if ! wanted "$name"; then
    record "$name" "SKIP (--only)"
    return 0
  fi
  echo
  echo "==== stage: $name ===="
  if "$@"; then
    record "$name" PASS
  else
    record "$name" FAIL
    summary
    echo "check.sh: stage '$name' failed" >&2
    exit 1
  fi
}

skip_stage() {
  record "$1" "SKIP ($2)"
  echo
  echo "==== stage: $1 — SKIP: $2 ===="
}

# --- format -----------------------------------------------------------------
format_stage() {
  # shellcheck disable=SC2046
  clang-format --dry-run -Werror $(git -C "$ROOT" ls-files '*.cc' '*.h' \
      | grep -v '^tests/lint_fixtures/')
}
if wanted format; then
  if command -v clang-format > /dev/null 2>&1; then
    run_stage format format_stage
  else
    skip_stage format "clang-format not installed"
  fi
else
  record format "SKIP (--only)"
fi

# --- default build + tests + lint tier -------------------------------------
build_stage() {
  cmake -B "$ROOT/build" -S "$ROOT" -DCEDAR_WERROR=ON \
    && cmake --build "$ROOT/build" -j "$JOBS"
}
run_stage build build_stage

test_stage() { ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"; }
run_stage test test_stage

lint_stage() { ctest --test-dir "$ROOT/build" -L tier1_lint --output-on-failure; }
run_stage lint lint_stage

lockgraph_stage() { ctest --test-dir "$ROOT/build" -L tier1_lockgraph --output-on-failure; }
run_stage lockgraph lockgraph_stage

store_stage() { ctest --test-dir "$ROOT/build" -L tier1_store --output-on-failure; }
run_stage store store_stage

# --- sanitizer matrix -------------------------------------------------------
sanitizer_stage() {
  local sanitizer="$1" dir="$2" label="$3"
  cmake -B "$dir" -S "$ROOT" -DCEDAR_SANITIZE="$sanitizer" -DCEDAR_WERROR=ON \
    && cmake --build "$dir" -j "$JOBS" \
    && ctest --test-dir "$dir" -L "$label" --output-on-failure -j "$JOBS"
}
run_stage asan sanitizer_stage address "$ROOT/build-asan" tier1_asan
run_stage ubsan sanitizer_stage undefined "$ROOT/build-ubsan" tier1_ubsan
run_stage tsan sanitizer_stage thread "$ROOT/build-tsan" tier1_tsan

# --- clang-tidy -------------------------------------------------------------
tidy_stage() {
  cmake -B "$ROOT/build-tidy" -S "$ROOT" -DCEDAR_CLANG_TIDY=ON \
    && cmake --build "$ROOT/build-tidy" -j "$JOBS"
}
if wanted tidy; then
  if command -v clang-tidy > /dev/null 2>&1; then
    run_stage tidy tidy_stage
  else
    skip_stage tidy "clang-tidy not installed"
  fi
else
  record tidy "SKIP (--only)"
fi

# --- clang thread-safety analysis -------------------------------------------
tsafety_stage() {
  cmake -B "$ROOT/build-tsafety" -S "$ROOT" -DCMAKE_CXX_COMPILER=clang++ \
      -DCEDAR_THREAD_SAFETY=ON -DCEDAR_WERROR=ON \
    && cmake --build "$ROOT/build-tsafety" -j "$JOBS"
}
if wanted tsafety; then
  if command -v clang++ > /dev/null 2>&1; then
    run_stage tsafety tsafety_stage
  else
    skip_stage tsafety "clang++ not installed"
  fi
else
  record tsafety "SKIP (--only)"
fi

summary
echo "check.sh: all executed stages passed"
