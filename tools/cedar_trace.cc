// cedar_trace: generate, inspect, and fit job traces.
//
//   cedar_trace --mode=generate --workload=facebook --jobs=200 --out=/tmp/fb.csv
//   cedar_trace --mode=inspect --in=/tmp/fb.csv
//   cedar_trace --mode=fit --workload=facebook --samples=20000
//
// "fit" runs the §4.2.1 offline type-fitting step on samples drawn from the
// workload's bottom stage and prints the ranked candidate families.

#include <algorithm>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/histogram.h"
#include "src/common/table.h"
#include "src/obs/obs_flags.h"
#include "src/stats/fitting.h"
#include "src/trace/trace_io.h"
#include "src/trace/workloads.h"

namespace {

void Generate(const std::string& workload_name, int k1, int k2, int jobs, uint64_t seed,
              const std::string& out) {
  using namespace cedar;
  auto workload = MakeWorkloadByName(workload_name, k1, k2);
  QueryTrace trace = MaterializeTrace(*workload, jobs, seed);
  SaveQueryTrace(trace, out);
  std::cout << "wrote " << trace.queries.size() << " jobs (" << trace.fanouts.size()
            << " stages) to " << out << "\n";
}

void Inspect(const std::string& in) {
  using namespace cedar;
  QueryTrace trace = LoadQueryTrace(in);
  ReplayWorkload replay(trace);
  PrintBanner(std::cout, "trace '" + trace.name + "' (" + std::to_string(trace.queries.size()) +
                             " jobs, unit " + trace.unit + ")");
  std::cout << "global offline fit: " << replay.OfflineTree().ToString() << "\n";

  for (size_t stage = 0; stage < trace.fanouts.size(); ++stage) {
    PrintBanner(std::cout, "stage " + std::to_string(stage) + " per-job stage means (log bins)");
    std::vector<double> means;
    means.reserve(trace.queries.size());
    for (const auto& record : trace.queries) {
      means.push_back(MakeDistribution(record.stages[stage])->Mean());
    }
    double lo = *std::min_element(means.begin(), means.end());
    double hi = *std::max_element(means.begin(), means.end()) * 1.001;
    Histogram histogram = Histogram::Logarithmic(std::max(lo, 1e-9), hi, 12);
    histogram.AddAll(means);
    histogram.Print(std::cout);
  }
}

void Fit(const std::string& workload_name, int k1, int k2, int samples, uint64_t seed) {
  using namespace cedar;
  auto workload = MakeWorkloadByName(workload_name, k1, k2);
  Rng rng(seed);
  std::vector<double> durations;
  durations.reserve(static_cast<size_t>(samples));
  // Mix samples across queries: the offline fitting step sees completed
  // queries' durations, not a single query's.
  while (static_cast<int>(durations.size()) < samples) {
    QueryTruth truth = workload->DrawQuery(rng);
    for (int i = 0; i < 50 && static_cast<int>(durations.size()) < samples; ++i) {
      durations.push_back(truth.stage_durations[0]->Sample(rng));
    }
  }
  DistributionFitter fitter;
  auto fits = fitter.FitSamples(durations);
  PrintBanner(std::cout, "offline distribution-type fit of " + std::to_string(samples) +
                             " bottom-stage samples from '" + workload->name() + "'");
  TablePrinter table({"rank", "family", "fit", "relative_rms_error", "max_rel_error"});
  int rank = 1;
  for (const auto& fit : fits) {
    table.AddRow({std::to_string(rank++), DistributionFamilyName(fit.spec.family),
                  fit.spec.ToString(), TablePrinter::FormatDouble(fit.relative_rms_error, 4),
                  TablePrinter::FormatDouble(fit.max_relative_error, 4)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("cedar_trace: generate / inspect / fit job traces.");
  std::string* mode = flags.AddString("mode", "generate", "generate | inspect | fit");
  std::string* workload_name = flags.AddString("workload", "facebook", "workload name");
  int64_t* jobs = flags.AddInt("jobs", 100, "jobs to generate");
  int64_t* samples = flags.AddInt("samples", 20000, "samples for --mode=fit");
  int64_t* k1 = flags.AddInt("k1", 50, "bottom fanout");
  int64_t* k2 = flags.AddInt("k2", 50, "upper fanout");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  std::string* out = flags.AddString("out", "/tmp/cedar_trace.csv", "output path (generate)");
  std::string* in = flags.AddString("in", "/tmp/cedar_trace.csv", "input path (inspect)");
  ObservabilityFlags obs = AddObservabilityFlags(flags);
  flags.Parse(argc, argv);
  ObservabilityScope obs_scope = InitObservability(obs);

  if (*mode == "generate") {
    Generate(*workload_name, static_cast<int>(*k1), static_cast<int>(*k2),
             static_cast<int>(*jobs), static_cast<uint64_t>(*seed), *out);
  } else if (*mode == "inspect") {
    Inspect(*in);
  } else if (*mode == "fit") {
    Fit(*workload_name, static_cast<int>(*k1), static_cast<int>(*k2),
        static_cast<int>(*samples), static_cast<uint64_t>(*seed));
  } else {
    CEDAR_LOG(FATAL) << "unknown mode '" << *mode << "'";
  }
  FinishObservability(obs, obs_scope, std::cout);
  return 0;
}
