// cedar_lint: scans the tree for violations of Cedar's determinism and
// engineering invariants (see tools/lint/lint.h for the rule table and
// DESIGN.md §10 for the policy) and, via the lockgraph pass, for lock
// discipline violations (tools/lint/lockgraph.h, DESIGN.md §12). Registered
// with ctest as the `cedar_lint` and `cedar_lockgraph` tests under the
// tier1_lint / tier1_lockgraph labels, so every `ctest` run machine-checks
// the invariants the paper figures depend on.
//
//   cedar_lint --root=/path/to/repo            # lint src/ bench/ tools/ tests/
//   cedar_lint --root=. --pass=lockgraph       # lock-discipline analysis only
//   cedar_lint --root=. --rule=wallclock       # run a single rule
//   cedar_lint --root=. --rule=lockgraph-cycle # rules route to their pass
//   cedar_lint --list-rules
//
// Exit status: 0 when clean, 1 when any unsuppressed violation was found,
// 2 on usage errors. Deliberately free of cedar library dependencies: the
// linter must stay buildable even when the code it lints is not.

#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"
#include "tools/lint/lockgraph.h"

namespace {

bool ConsumeFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

bool IsLockgraphRule(const std::string& rule) {
  return rule.rfind("lockgraph-", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string rule;
  std::string pass = "all";
  std::string dirs_flag = "src,bench,tools,tests";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& name : cedar::lint::AllRules()) {
        std::cout << name << "\n";
      }
      for (const std::string& name : cedar::lint::LockgraphRules()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (ConsumeFlag(arg, "root", &root) || ConsumeFlag(arg, "rule", &rule) ||
        ConsumeFlag(arg, "pass", &pass) || ConsumeFlag(arg, "dirs", &dirs_flag)) {
      continue;
    }
    std::cerr << "cedar_lint: unknown argument '" << arg
              << "' (want --root=PATH [--pass=lint|lockgraph|all] [--rule=RULE] "
                 "[--dirs=a,b] [--list-rules])\n";
    return 2;
  }
  if (pass != "lint" && pass != "lockgraph" && pass != "all") {
    std::cerr << "cedar_lint: unknown --pass='" << pass << "' (want lint|lockgraph|all)\n";
    return 2;
  }
  // A --rule belongs to exactly one pass; narrow to it so the other pass does
  // not report "0 violations" for a rule it never runs.
  if (!rule.empty() && pass == "all") {
    pass = IsLockgraphRule(rule) ? "lockgraph" : "lint";
  }
  if (!rule.empty() && IsLockgraphRule(rule) != (pass == "lockgraph")) {
    std::cerr << "cedar_lint: --rule=" << rule << " is not part of --pass=" << pass << "\n";
    return 2;
  }

  std::vector<std::string> dirs;
  std::string dir;
  for (char c : dirs_flag + ",") {
    if (c == ',') {
      if (!dir.empty()) {
        dirs.push_back(dir);
      }
      dir.clear();
    } else {
      dir.push_back(c);
    }
  }

  int files_scanned = 0;
  std::vector<cedar::lint::Diagnostic> diagnostics;
  if (pass == "lint" || pass == "all") {
    diagnostics = cedar::lint::LintTree(root, dirs, rule, &files_scanned);
  }
  if (pass == "lockgraph" || pass == "all") {
    int lockgraph_scanned = 0;
    std::vector<cedar::lint::Diagnostic> lock_diags =
        cedar::lint::LockgraphTree(root, dirs, rule, &lockgraph_scanned);
    diagnostics.insert(diagnostics.end(), lock_diags.begin(), lock_diags.end());
    if (lockgraph_scanned > files_scanned) {
      files_scanned = lockgraph_scanned;
    }
  }
  for (const cedar::lint::Diagnostic& diagnostic : diagnostics) {
    std::cout << diagnostic.ToString() << "\n";
  }
  if (files_scanned == 0) {
    std::cerr << "cedar_lint: no .cc/.h files found under --root=" << root
              << " (wrong --root?)\n";
    return 2;
  }
  std::cout << "cedar_lint: " << files_scanned << " files, " << diagnostics.size()
            << " violation" << (diagnostics.size() == 1 ? "" : "s") << "\n";
  return diagnostics.empty() ? 0 : 1;
}
