// cedar_lint: repo-specific static analysis enforcing Cedar's determinism
// and engineering invariants (DESIGN.md §10). The engine is a library so the
// fixture unit test (tests/lint_test.cc) can drive individual rules; the
// CLI driver (tools/cedar_lint.cc) scans the tree and is registered as the
// `cedar_lint` ctest test under the tier1_lint label.
//
// Rules (slug — invariant):
//   wallclock        — no system_clock/steady_clock/time()/clock() outside
//                      src/obs/ and src/rt/: engine results must never depend
//                      on wall-clock time (thread-count bit-identity).
//   rng              — no rand()/srand()/std::random_device/raw std engines
//                      outside the seeded Rng helpers (src/stats/rng.*):
//                      every random draw must flow from an experiment seed.
//   ptr-hash         — no pointer-address-based fingerprints or hashing
//                      (reinterpret_cast to integer, std::hash of a pointer):
//                      addresses are recycled between queries, the exact
//                      aliasing bug class fixed in CedarPolicy's table cache.
//   unordered-iter   — no iteration over unordered containers: iteration
//                      order is implementation-defined and silently leaks
//                      nondeterminism into CSV/trace/report output paths.
//   raw-new          — no raw new/delete in engine code (src/): ownership is
//                      expressed with unique_ptr/containers.
//   stdout           — no std::cout/printf writing from src/: libraries take
//                      a std::ostream& or use CEDAR_LOG so tools own stdout.
//   fork-override    — every WaitPolicy subclass (transitively) either
//                      overrides ForkForWorker or carries an explicit allow:
//                      forgetting it reintroduces cross-worker shared state.
//   include-guard    — every header has the canonical CEDAR_<PATH>_H_
//                      include guard (or #pragma once).
//   self-contained   — a header that names a common std:: type directly
//                      includes the std header that provides it (curated
//                      symbol table, not full IWYU).
//
// Escape hatch: `// cedar-lint: allow(rule-a, rule-b)` on the offending line
// or the line directly above suppresses those rules there; a justification
// comment is expected by review convention. `// cedar-lint: allow-file(rule)`
// anywhere in a file suppresses the rule for the whole file.

#ifndef CEDAR_TOOLS_LINT_LINT_H_
#define CEDAR_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cedar {
namespace lint {

struct Diagnostic {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  // "file:line: error: [rule] message" — clickable in editors and CI logs.
  std::string ToString() const;
};

// All known rule slugs, in reporting order.
const std::vector<std::string>& AllRules();

// A linting pass over a set of files. Cross-file rules (fork-override, the
// <name>.cc / <name>.h pairing used by unordered-iter) see every file added
// before Run(), so add the whole tree first.
class LintRun {
 public:
  LintRun() = default;

  // Restrict to one rule (fixture tests); empty = all rules.
  void SetRuleFilter(const std::string& rule);

  // Registers |content| under repo-relative |path| ("src/core/policy.h").
  // Path decides which rules apply and the canonical include-guard name.
  void AddFile(const std::string& path, const std::string& content);

  // Runs every applicable rule over the added files and returns the
  // unsuppressed diagnostics sorted by (file, line, rule).
  std::vector<Diagnostic> Run();

 private:
  struct FileState {
    std::string path;
    // Code with comments and string/char literals blanked to spaces, one
    // entry per line: rule regexes never match inside prose or literals.
    std::vector<std::string> lines;
    // line (1-based) -> rules allowed on that line.
    std::map<int, std::set<std::string>> line_allows;
    std::set<std::string> file_allows;
    std::set<std::string> includes;  // direct #include targets
  };

  bool RuleEnabled(const std::string& rule) const;
  bool Suppressed(const FileState& file, int line, const std::string& rule) const;
  void Report(const FileState& file, int line, const std::string& rule,
              const std::string& message);

  void CheckPatternRules(const FileState& file);
  void CheckUnorderedIteration(const FileState& file);
  void CheckIncludeGuard(const FileState& file);
  void CheckSelfContained(const FileState& file);
  void CheckForkOverride();

  std::vector<FileState> files_;
  std::map<std::string, const FileState*> by_path_;
  std::string rule_filter_;
  std::vector<Diagnostic> diagnostics_;
};

// Convenience for the CLI driver: reads |root|-relative |dirs| recursively
// (.cc/.h files, skipping tests/lint_fixtures/ and build directories), feeds
// them to a LintRun, and returns the diagnostics. Paths that do not exist
// are ignored. |out_files_scanned| (optional) reports the file count.
std::vector<Diagnostic> LintTree(const std::string& root, const std::vector<std::string>& dirs,
                                 const std::string& rule_filter, int* out_files_scanned);

}  // namespace lint
}  // namespace cedar

#endif  // CEDAR_TOOLS_LINT_LINT_H_
