#include "tools/lint/stripped_source.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>

namespace cedar {
namespace lint {
namespace {

void ParseAllowMarkers(const std::string& comment, int line, StrippedSource& out) {
  static const std::regex kAllow("cedar-lint:\\s*(allow|allow-file)\\(([^)]*)\\)");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
       it != std::sregex_iterator(); ++it) {
    const bool file_scope = (*it)[1].str() == "allow-file";
    std::istringstream rules((*it)[2].str());
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      const size_t begin = rule.find_first_not_of(" \t");
      const size_t end = rule.find_last_not_of(" \t");
      if (begin == std::string::npos) {
        continue;
      }
      rule = rule.substr(begin, end - begin + 1);
      if (file_scope) {
        out.file_allows.insert(rule);
      } else {
        out.line_allows[line].insert(rule);
      }
    }
  }
}

// A '\'' right after an identifier or number is a C++14 digit separator
// (1'000'000) or an apostrophe in prose, never a char-literal start.
bool StartsCharLiteral(const std::string& line, size_t i) {
  if (i == 0) {
    return true;
  }
  const char prev = line[i - 1];
  return !(std::isalnum(static_cast<unsigned char>(prev)) || prev == '_');
}

// When the '"' at position |i| opens a raw string literal, returns the length
// of its prefix ("R", "u8R", "uR", "UR", or "LR") ending just before the
// quote; 0 otherwise. Checking at the quote — rather than at the 'R' — is
// what makes the encoding-prefixed forms work: in u8R"(..)" the 'R' is
// preceded by an alphanumeric character, so an R-anchored test cannot tell
// it from the tail of an identifier.
size_t RawStringPrefixLength(const std::string& line, size_t i) {
  if (i == 0 || line[i - 1] != 'R') {
    return 0;
  }
  size_t start = i - 1;  // position of the 'R'
  if (start >= 2 && line[start - 2] == 'u' && line[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (line[start - 1] == 'u' || line[start - 1] == 'U' || line[start - 1] == 'L')) {
    start -= 1;
  }
  if (start > 0) {
    const char before = line[start - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') {
      return 0;  // identifier tail (e.g. FOOBAR"...), not a raw literal
    }
  }
  return i - start;
}

}  // namespace

StrippedSource StripSource(const std::string& content) {
  StrippedSource out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;       // for R"delim( ... )delim"
  std::string comment_buffer;  // text of the comment currently being read
  int comment_start_line = 1;

  std::vector<std::string> raw_lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      raw_lines.push_back(line);
    }
  }

  auto flush_comment = [&](int end_line) {
    // A line allow applies to the line the comment *ends* on (trailing
    // comments) which is also where a full-line comment sits.
    ParseAllowMarkers(comment_buffer, end_line, out);
    (void)comment_start_line;
    comment_buffer.clear();
  };

  for (size_t line_index = 0; line_index < raw_lines.size(); ++line_index) {
    const std::string& line = raw_lines[line_index];
    const int line_number = static_cast<int>(line_index) + 1;
    std::string stripped(line.size(), ' ');

    if (state == State::kLineComment) {  // line comments never span lines
      state = State::kCode;
    }

    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_start_line = line_number;
            comment_buffer.append(line.substr(i + 2));
            i = line.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_start_line = line_number;
            ++i;
          } else if (c == '"' && RawStringPrefixLength(line, i) > 0) {
            // The prefix characters were already copied through as code; the
            // literal body is blanked until the matching )delim" appears.
            const size_t paren = line.find('(', i + 1);
            raw_delim = ")";
            if (paren != std::string::npos) {
              raw_delim.append(line, i + 1, paren - i - 1);
            }
            raw_delim.push_back('"');
            state = State::kRawString;
            stripped[i] = '"';
            i = paren == std::string::npos ? line.size() : paren;
          } else if (c == '"') {
            state = State::kString;
            stripped[i] = '"';
          } else if (c == '\'' && StartsCharLiteral(line, i)) {
            state = State::kChar;
            stripped[i] = '\'';
          } else {
            stripped[i] = c;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: handled at line start / via i = line.size()
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            flush_comment(line_number);
            ++i;
          } else {
            comment_buffer.push_back(c);
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            stripped[i] = '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            stripped[i] = '\'';
          }
          break;
        case State::kRawString: {
          const size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            i = line.size();
          } else {
            i = end + raw_delim.size() - 1;
            stripped[i] = '"';
            state = State::kCode;
          }
          break;
        }
      }
    }

    if (state == State::kLineComment) {
      flush_comment(line_number);
    } else if (state == State::kBlockComment) {
      comment_buffer.push_back('\n');
    }
    out.lines.push_back(std::move(stripped));
  }
  if (state == State::kBlockComment) {
    flush_comment(static_cast<int>(raw_lines.size()));
  }
  return out;
}

bool IsAllowed(const StrippedSource& source, int line, const std::string& rule) {
  if (source.file_allows.count(rule) != 0) {
    return true;
  }
  for (int candidate : {line, line - 1}) {
    auto it = source.line_allows.find(candidate);
    if (it != source.line_allows.end() && it->second.count(rule) != 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> ListSourceFiles(const std::string& root,
                                         const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string extension = entry.path().extension().string();
      if (extension != ".cc" && extension != ".h") {
        continue;
      }
      const std::string relative = fs::relative(entry.path(), fs::path(root)).generic_string();
      // Fixture files violate rules on purpose; build trees hold generated
      // code we do not own.
      if (relative.find("lint_fixtures") != std::string::npos ||
          relative.find("build") == 0 || relative.find("/build/") != std::string::npos) {
        continue;
      }
      paths.push_back(relative);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string ReadSourceFile(const std::string& root, const std::string& relative) {
  std::ifstream in(std::filesystem::path(root) / relative, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

}  // namespace lint
}  // namespace cedar
