// Shared lexing layer for the cedar_lint passes (lint.cc and lockgraph.cc):
// blanks comments and string/char literals out of C++ source so rule logic
// only ever sees code, harvests `cedar-lint: allow(...)` markers from the
// comment text while doing so, and lists the tree's lintable files.

#ifndef CEDAR_TOOLS_LINT_STRIPPED_SOURCE_H_
#define CEDAR_TOOLS_LINT_STRIPPED_SOURCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cedar {
namespace lint {

struct StrippedSource {
  // Code with comments and string/char literals blanked to spaces, one entry
  // per input line.
  std::vector<std::string> lines;
  // line (1-based) -> rules allowed on that line (`cedar-lint: allow(rule)`).
  std::map<int, std::set<std::string>> line_allows;
  // Rules allowed for the whole file (`cedar-lint: allow-file(rule)`).
  std::set<std::string> file_allows;
};

// Runs the comment/string-stripping state machine over |content|. Handles
// line and block comments, escaped string/char literals, C++14 digit
// separators, and raw string literals including the encoding-prefixed forms
// (R"(..)", u8R"(..)", uR"(..)", UR"(..)", LR"(..)").
StrippedSource StripSource(const std::string& content);

// True when the allow tables suppress |rule| at |line|: an allow on the line
// itself or the line directly above, or a file-wide allow.
bool IsAllowed(const StrippedSource& source, int line, const std::string& rule);

// Repo-relative paths of every .cc/.h file under |root|/|dirs|, sorted.
// Skips tests/lint_fixtures/ (rule violations on purpose) and build trees.
// Directories that do not exist are ignored.
std::vector<std::string> ListSourceFiles(const std::string& root,
                                         const std::vector<std::string>& dirs);

// Reads |root|/|relative| as bytes ("" when unreadable).
std::string ReadSourceFile(const std::string& root, const std::string& relative);

}  // namespace lint
}  // namespace cedar

#endif  // CEDAR_TOOLS_LINT_STRIPPED_SOURCE_H_
