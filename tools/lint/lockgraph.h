// Cross-TU lock-discipline analyzer ("lockgraph"), DESIGN.md §12.
//
// A lexical pass over the whole tree (same stripped-source lexer as the lint
// pass) that models lock acquisition order globally — something clang's
// per-TU -Wthread-safety cannot see. It extracts, per translation unit:
//
//   * mutex declarations (std::mutex, cedar::Mutex) — class members,
//     namespace-scope globals, and locals;
//   * RAII acquisitions (std::lock_guard / unique_lock / scoped_lock and
//     cedar::MutexLock) with brace-matched scope nesting, plus manual
//     guard.unlock() releases;
//   * condition-variable waits (std::condition_variable[_any]::wait* and
//     cedar::CondVar::Wait);
//   * CEDAR_REQUIRES(...) annotations on function heads, which seed the
//     held-lock set so callee bodies are analyzed in their true context;
//   * writes to member fields of classes that own a mutex.
//
// From these it builds one global lock-acquisition-order graph (edge A→B
// whenever B is acquired while A is held) and reports:
//
//   lockgraph-cycle           an acquisition edge that closes a cycle in the
//                             global order graph — a potential deadlock. The
//                             diagnostic points at the witness acquisition.
//   lockgraph-cv-wait         a condition-variable wait performed while a
//                             lock other than the one being waited on is
//                             held; the sleeping thread blocks that lock's
//                             other waiters indefinitely.
//   lockgraph-unguarded-field a member field of a mutex-owning class that is
//                             written both under and outside its dominant
//                             mutex (constructors, destructors, and lambda
//                             bodies are exempt). Each unlocked write site is
//                             flagged.
//
// Findings are suppressible with the standard markers on the witness line
// (or the line above):  // cedar-lint: allow(lockgraph-cycle)
// and file-wide with allow-file(...).
//
// The pass is heuristic by design: it trades soundness for zero build-time
// cost and whole-program reach, and it deliberately resolves short type
// names only when the match among mutex-owning classes is unique.

#ifndef CEDAR_TOOLS_LINT_LOCKGRAPH_H_
#define CEDAR_TOOLS_LINT_LOCKGRAPH_H_

#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace cedar {
namespace lint {

// Stable list of lockgraph rule slugs (all prefixed "lockgraph-").
const std::vector<std::string>& LockgraphRules();

// One analyzer run over an explicit set of files. Add every file first (the
// pass is cross-TU: edges discovered in one file close cycles in another),
// then Run().
class LockgraphRun {
 public:
  // Restrict output to one rule slug ("" = all rules).
  void SetRuleFilter(const std::string& rule);

  // Registers |content| under repo-relative |path|.
  void AddFile(const std::string& path, const std::string& content);

  // Runs extraction + graph analysis; returns diagnostics sorted by
  // (file, line, rule). Idempotent.
  std::vector<Diagnostic> Run();

 private:
  struct FileEntry {
    std::string path;
    std::string content;
  };
  std::string rule_filter_;
  std::vector<FileEntry> files_;
};

// Convenience driver: runs the lockgraph pass over every .cc/.h beneath
// |root|/|dirs| (same file set as LintTree). |rule_filter| as above;
// |out_files_scanned| (optional) receives the file count.
std::vector<Diagnostic> LockgraphTree(const std::string& root,
                                      const std::vector<std::string>& dirs,
                                      const std::string& rule_filter,
                                      int* out_files_scanned);

}  // namespace lint
}  // namespace cedar

#endif  // CEDAR_TOOLS_LINT_LOCKGRAPH_H_
