#include "tools/lint/lockgraph.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "tools/lint/stripped_source.h"

namespace cedar {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Small text helpers.

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  const size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

std::string FirstWord(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
    ++i;
  }
  return text.substr(0, i);
}

// Removes CEDAR_*(...) annotation macros and alignas(...) so declaration
// shapes are regular again.
std::string StripAnnotations(const std::string& text) {
  static const std::regex kMacro("\\b(?:CEDAR_[A-Z_]+|alignas)\\s*(\\([^()]*\\))?");
  return std::regex_replace(text, kMacro, " ");
}

// Removes balanced <...> template argument lists. Bails (returns the input
// unchanged) when the angles do not balance — e.g. comparison operators —
// so this is only safe for declaration-shaped text, never expressions.
std::string StripTemplateAngles(const std::string& text) {
  std::string out;
  int depth = 0;
  for (char c : text) {
    if (c == '<') {
      ++depth;
      continue;
    }
    if (c == '>') {
      if (depth == 0) {
        return text;  // imbalance: not a template argument list
      }
      --depth;
      continue;
    }
    if (depth == 0) {
      out.push_back(c);
    }
  }
  return depth == 0 ? out : text;
}

std::string CollapseSpaces(const std::string& text) {
  std::string out;
  bool pending = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending = !out.empty();
    } else {
      if (pending) {
        out.push_back(' ');
        pending = false;
      }
      out.push_back(c);
    }
  }
  return out;
}

// Splits on top-level commas (ignoring commas nested in parens/braces).
std::vector<std::string> SplitTopLevel(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '{' || c == '[') {
      ++depth;
    } else if (c == ')' || c == '}' || c == ']') {
      --depth;
    }
    if (c == ',' && depth <= 0) {
      parts.push_back(Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!Trim(current).empty()) {
    parts.push_back(Trim(current));
  }
  return parts;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ---------------------------------------------------------------------------
// Extracted facts shared across the two scan phases.

struct ClassInfo {
  std::string short_name;
  std::set<std::string> mutexes;  // member mutex names
  std::set<std::string> cvs;      // member condition-variable names
  std::set<std::string> atomics;  // std::atomic members (exempt from guarding)
  std::set<std::string> fields;   // plain data members
};

struct Resolved {
  std::string id;        // global lock identity, e.g. "ThreadPool::state_mutex_"
  std::string owner;     // qualified class owning the mutex ("" if none)
  std::string receiver;  // receiver expression text ("" for bare / this->)
};

struct EdgeWitness {
  std::string file;
  int line = 0;
};

struct WriteSite {
  std::string file;
  int line = 0;
  bool locked = false;
  std::string lock_id;  // which lock was held, for dominant-mutex voting
};

struct PendingDiag {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct GlobalState {
  std::map<std::string, ClassInfo> classes;                    // qualified name ->
  std::map<std::string, std::set<std::string>> file_globals;   // file -> mutex names
  std::map<std::pair<std::string, std::string>, EdgeWitness> edges;  // (held, acquired)
  std::map<std::pair<std::string, std::string>, std::vector<WriteSite>> writes;
  std::vector<PendingDiag> cv_diags;

  // Resolves a bare class short name among mutex-owning classes; "" unless
  // the match is unique.
  std::string ResolveLockedClass(const std::string& word) const {
    if (classes.count(word) != 0 && !classes.at(word).mutexes.empty()) {
      return word;
    }
    std::string found;
    for (const auto& entry : classes) {
      if (entry.second.mutexes.empty() || entry.second.short_name != word) {
        continue;
      }
      if (!found.empty()) {
        return "";  // ambiguous
      }
      found = entry.first;
    }
    return found;
  }
};

// ---------------------------------------------------------------------------
// ScopeWalker: brace-matched statement segmentation over stripped source.
//
// Feeds subclasses a stream of flushed statements plus scope open/close
// events. Statements flush at top-level ';'; braces inside parentheses or
// initializer heads are "transparent" (the text keeps accumulating), so
// `std::atomic<int> x{0};` and lambdas-in-arguments stay one statement.

enum class ScopeKind { kNamespace, kClass, kEnum, kFunction, kBlock, kInit };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string head;  // raw statement text that preceded the '{'
  std::string name;  // class short name / function name
  std::string qualified;  // for kClass: '::'-joined class nesting (no namespaces)
  bool is_lambda = false;
  int line = 0;
};

class ScopeWalker {
 public:
  virtual ~ScopeWalker() = default;

  void Walk(const std::vector<std::string>& lines) {
    scopes_.clear();
    std::string buffer;
    int buffer_line = 0;
    int paren_depth = 0;
    int transparent_depth = 0;
    bool continuation = false;
    auto flush = [&]() {
      const std::string statement = Trim(buffer);
      buffer.clear();
      const int line = buffer_line;
      buffer_line = 0;
      if (!statement.empty()) {
        OnStatement(statement, line == 0 ? 1 : line);
      }
    };
    for (size_t index = 0; index < lines.size(); ++index) {
      const std::string& line = lines[index];
      const int line_number = static_cast<int>(index) + 1;
      if (continuation) {  // body of a multi-line preprocessor directive
        continuation = !line.empty() && line.back() == '\\';
        continue;
      }
      const size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        continuation = !line.empty() && line.back() == '\\';
        continue;
      }
      for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == ';' && paren_depth == 0 && transparent_depth == 0) {
          flush();
          continue;
        }
        if (c == '{') {
          if (paren_depth > 0 || transparent_depth > 0) {
            ++transparent_depth;
            buffer.push_back('{');
            continue;
          }
          Scope scope = Classify(Trim(buffer), buffer_line ? buffer_line : line_number);
          if (scope.kind == ScopeKind::kInit) {
            ++transparent_depth;  // initializer list: keep accumulating
            buffer.push_back('{');
            continue;
          }
          buffer.clear();
          buffer_line = 0;
          if (scope.kind == ScopeKind::kClass) {
            const std::string enclosing = EnclosingClass();
            scope.qualified = enclosing.empty() ? scope.name : enclosing + "::" + scope.name;
          }
          scopes_.push_back(scope);
          OnScopeOpen(scopes_.back());
          continue;
        }
        if (c == '}') {
          if (transparent_depth > 0) {
            --transparent_depth;
            buffer.push_back('}');
            continue;
          }
          flush();
          if (!scopes_.empty()) {
            const Scope top = scopes_.back();
            scopes_.pop_back();
            OnScopeClose(top);
          }
          continue;
        }
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')' && paren_depth > 0) {
          --paren_depth;
        }
        buffer.push_back(c);
        if (buffer_line == 0 && !std::isspace(static_cast<unsigned char>(c))) {
          buffer_line = line_number;
        }
      }
      if (!buffer.empty() && buffer.back() != ' ') {
        buffer.push_back(' ');
      }
    }
    flush();
  }

 protected:
  virtual void OnScopeOpen(const Scope& scope) { (void)scope; }
  virtual void OnScopeClose(const Scope& scope) { (void)scope; }
  virtual void OnStatement(const std::string& statement, int line) {
    (void)statement;
    (void)line;
  }

  const std::vector<Scope>& scopes() const { return scopes_; }

  // Innermost enclosing class qualification, "" when outside any class.
  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) {
        return it->qualified;
      }
    }
    return "";
  }

 private:
  static Scope Classify(const std::string& head, int line) {
    Scope scope;
    scope.head = head;
    scope.line = line;
    scope.kind = ScopeKind::kBlock;
    if (head.empty()) {
      return scope;
    }
    static const std::set<std::string>* control = new std::set<std::string>{
        "if", "for", "while", "switch", "do", "try", "catch", "else", "case", "default"};
    if (control->count(FirstWord(head)) != 0) {
      return scope;
    }
    static const std::regex kEnumHead("\\benum\\b");
    if (std::regex_search(head, kEnumHead)) {
      scope.kind = ScopeKind::kEnum;  // enum BEFORE class: `enum class X` is an enum
      return scope;
    }
    const std::string clean = Trim(StripAnnotations(head));
    static const std::regex kClassHead("\\b(?:class|struct|union)\\s+([A-Za-z_]\\w*)");
    std::smatch match;
    if (clean.find('(') == std::string::npos && clean.find('=') == std::string::npos &&
        std::regex_search(clean, match, kClassHead)) {
      scope.kind = ScopeKind::kClass;
      scope.name = match[1].str();
      return scope;
    }
    static const std::regex kNamespaceHead("\\bnamespace\\b");
    if (clean.find('(') == std::string::npos && std::regex_search(clean, kNamespaceHead)) {
      scope.kind = ScopeKind::kNamespace;
      return scope;
    }
    static const std::regex kLambdaHead(
        "(^|[=(,\\s])\\[[^\\]]*\\]\\s*(\\([^()]*\\))?\\s*"
        "(mutable|noexcept|constexpr|\\s)*(->[^{}]*)?$");
    if (std::regex_search(clean, kLambdaHead)) {
      scope.kind = ScopeKind::kFunction;
      scope.is_lambda = true;
      return scope;
    }
    const size_t paren = clean.find('(');
    if (paren != std::string::npos) {
      size_t end = paren;
      while (end > 0 && std::isspace(static_cast<unsigned char>(clean[end - 1]))) {
        --end;
      }
      size_t begin = end;
      while (begin > 0 && IsIdentChar(clean[begin - 1])) {
        --begin;
      }
      if (begin > 0 && clean[begin - 1] == '~') {
        --begin;
      }
      std::string name = clean.substr(begin, end - begin);
      if (name.empty() && clean.find("operator") != std::string::npos) {
        name = "operator";
      }
      if (!name.empty()) {
        scope.kind = ScopeKind::kFunction;
        scope.name = name;
        return scope;
      }
    }
    scope.kind = ScopeKind::kInit;  // brace initializer: transparent
    return scope;
  }

  std::vector<Scope> scopes_;
};

// ---------------------------------------------------------------------------
// Phase A: harvest class members (mutexes, cvs, atomics, plain fields) and
// namespace-scope mutex globals.

const std::regex& MutexDeclPattern() {
  static const std::regex* pattern =
      new std::regex("\\b(?:std::mutex|(?:cedar::)?Mutex)\\s+([A-Za-z_]\\w*)\\s*$");
  return *pattern;
}

class ClassScanner : public ScopeWalker {
 public:
  ClassScanner(GlobalState& state, std::string file) : state_(state), file_(std::move(file)) {}

 protected:
  void OnStatement(const std::string& statement, int line) override {
    (void)line;
    const ScopeKind innermost = scopes().empty() ? ScopeKind::kNamespace : scopes().back().kind;
    if (innermost == ScopeKind::kNamespace) {
      std::smatch match;
      const std::string text = Trim(StripAnnotations(statement));
      if (std::regex_search(text, match, MutexDeclPattern())) {
        state_.file_globals[file_].insert(match[1].str());
      }
      return;
    }
    if (innermost != ScopeKind::kClass) {
      return;
    }
    ParseMember(statement);
  }

 private:
  void ParseMember(const std::string& statement) {
    static const std::regex kAccess("\\b(public|private|protected)\\s*:");
    std::string text = std::regex_replace(statement, kAccess, " ");
    text = Trim(StripAnnotations(text));
    if (text.empty()) {
      return;
    }
    ClassInfo& info = state_.classes[EnclosingClass()];
    info.short_name = scopes().back().name;
    std::smatch match;
    if (std::regex_search(text, match, MutexDeclPattern())) {
      info.mutexes.insert(match[1].str());
      return;
    }
    static const std::regex kCondVar(
        "\\b(?:std::condition_variable(?:_any)?|(?:cedar::)?CondVar)\\s+([A-Za-z_]\\w*)\\s*$");
    if (std::regex_search(text, match, kCondVar)) {
      info.cvs.insert(match[1].str());
      return;
    }
    const std::string flat = Trim(StripTemplateAngles(text));
    static const std::regex kAtomic("\\b(?:std::)?atomic\\s+([A-Za-z_]\\w*)");
    if (std::regex_search(flat, match, kAtomic)) {
      info.atomics.insert(match[1].str());
      return;
    }
    if (flat.find('(') != std::string::npos) {
      return;  // method declaration, = default, etc.
    }
    static const std::set<std::string>* rejected = new std::set<std::string>{
        "friend",   "using", "typedef", "static",  "template", "operator",
        "explicit", "virtual", "class", "struct",  "union",    "enum",
        "return",   "public", "private", "protected"};
    if (rejected->count(FirstWord(flat)) != 0) {
      return;
    }
    static const std::regex kField(
        "^[\\w:,\\s&*]+[\\s&*]([A-Za-z_]\\w*)\\s*(\\[[^\\]]*\\])?\\s*(=.*|\\{.*\\})?$");
    if (std::regex_match(flat, match, kField)) {
      info.fields.insert(match[1].str());
    }
  }

  GlobalState& state_;
  std::string file_;
};

// ---------------------------------------------------------------------------
// Phase B: walk function bodies tracking held locks, record lock-order edges,
// condition-variable waits, and member-field writes.

struct Held {
  Resolved lock;
  std::string guard;  // guard variable name; "" when seeded by CEDAR_REQUIRES
  size_t depth = 0;   // scope-stack size at acquisition (for scope-exit release)
};

struct FunctionCtx {
  std::string cls;  // qualified class the function belongs to ("" for free)
  bool ctor_dtor = false;
  bool lambda = false;
  std::map<std::string, std::string> locals;    // name -> resolved locked class ("")
  std::map<std::string, Resolved> guard_ids;    // guard var -> lock (for re-lock)
  std::vector<Held> held;
};

class FunctionScanner : public ScopeWalker {
 public:
  FunctionScanner(GlobalState& state, std::string file)
      : state_(state), file_(std::move(file)) {}

 protected:
  void OnScopeOpen(const Scope& scope) override {
    if (scope.kind == ScopeKind::kBlock && !ctxs_.empty()) {
      // Range-for declarations bind a loop variable the body writes through:
      // `for (Shard& shard : shards_)`.
      static const std::regex kRangeFor(
          "\\bfor\\s*\\(\\s*(?:const\\s+)?((?:\\w+(?:::\\w+)*))\\s*[&*]*"
          "\\s+([A-Za-z_]\\w*)\\s*:");
      std::smatch match;
      const std::string clean = StripTemplateAngles(StripAnnotations(scope.head));
      if (std::regex_search(clean, match, kRangeFor)) {
        ctxs_.back().locals[match[2].str()] = ResolveTypeWords(match[1].str());
      }
      return;
    }
    if (scope.kind != ScopeKind::kFunction) {
      return;
    }
    FunctionCtx ctx;
    if (scope.is_lambda) {
      ctx.lambda = true;
      if (!ctxs_.empty()) {  // resolve captured names in the enclosing frame
        ctx.cls = ctxs_.back().cls;
        ctx.locals = ctxs_.back().locals;
      }
      ctxs_.push_back(std::move(ctx));
      return;
    }
    const std::string clean = Trim(StripTemplateAngles(StripAnnotations(scope.head)));
    ctx.cls = EnclosingClass();
    if (ctx.cls.empty()) {  // out-of-class body: resolve `Qualifier::Name(`
      static const std::regex kQualified("([A-Za-z_]\\w*)\\s*::\\s*~?[A-Za-z_]\\w*\\s*\\(");
      std::smatch match;
      if (std::regex_search(clean, match, kQualified)) {
        ctx.cls = state_.ResolveLockedClass(match[1].str());
      }
    }
    if (!ctx.cls.empty()) {
      const size_t sep = ctx.cls.rfind("::");
      const std::string short_name = sep == std::string::npos ? ctx.cls : ctx.cls.substr(sep + 2);
      ctx.ctor_dtor = scope.name == short_name || scope.name == "~" + short_name;
    }
    ParseParams(clean, ctx);
    ctxs_.push_back(std::move(ctx));
    // CEDAR_REQUIRES seeds the held set; parse from the raw head (the
    // annotation-stripped copy has lost it).
    static const std::regex kRequires("CEDAR_REQUIRES\\s*\\(([^()]*)\\)");
    for (auto it = std::sregex_iterator(scope.head.begin(), scope.head.end(), kRequires);
         it != std::sregex_iterator(); ++it) {
      for (const std::string& arg : SplitTopLevel((*it)[1].str())) {
        Held held;
        held.lock = ResolveLockExpr(arg, ctxs_.back());
        held.depth = scopes().size();
        ctxs_.back().held.push_back(std::move(held));
      }
    }
  }

  void OnScopeClose(const Scope& scope) override {
    if (ctxs_.empty()) {
      return;
    }
    if (scope.kind == ScopeKind::kFunction) {
      ctxs_.pop_back();
      return;
    }
    // Block exit: RAII guards declared inside it release.
    std::vector<Held>& held = ctxs_.back().held;
    held.erase(std::remove_if(held.begin(), held.end(),
                              [&](const Held& h) { return h.depth > scopes().size(); }),
               held.end());
  }

  void OnStatement(const std::string& statement, int line) override {
    if (ctxs_.empty()) {
      return;
    }
    const ScopeKind innermost = scopes().empty() ? ScopeKind::kNamespace : scopes().back().kind;
    if (innermost != ScopeKind::kFunction && innermost != ScopeKind::kBlock) {
      return;  // class members, enumerators, namespace decls
    }
    FunctionCtx& ctx = ctxs_.back();
    const std::string flat = Trim(StripTemplateAngles(StripAnnotations(statement)));
    RegisterLocal(flat, ctx);
    ScanGuardDecls(flat, line, ctx);
    ScanManualLockOps(statement, ctx);
    ScanCvWait(statement, line, ctx);
    if (!ctx.ctor_dtor && !ctx.lambda) {
      ScanWrites(statement, line, ctx);
    }
  }

 private:
  // --- name resolution ---------------------------------------------------

  Resolved ResolveLockExpr(const std::string& raw, const FunctionCtx& ctx) const {
    Resolved out;
    std::string text = Trim(raw);
    static const std::regex kThis("^(?:&\\s*)?(?:\\*\\s*)?(?:this\\s*->\\s*)?");
    text = std::regex_replace(text, kThis, "", std::regex_constants::format_first_only);
    static const std::regex kBare("^[A-Za-z_]\\w*$");
    static const std::regex kMember("^([A-Za-z_]\\w*)(?:\\.|->)([A-Za-z_]\\w*)$");
    std::smatch match;
    if (std::regex_match(text, kBare)) {
      if (ctx.locals.count(text) == 0) {
        if (!ctx.cls.empty()) {
          auto it = state_.classes.find(ctx.cls);
          if (it != state_.classes.end() && it->second.mutexes.count(text) != 0) {
            out.id = ctx.cls + "::" + text;
            out.owner = ctx.cls;
            return out;
          }
        }
        auto globals = state_.file_globals.find(file_);
        if (globals != state_.file_globals.end() && globals->second.count(text) != 0) {
          out.id = file_ + "::" + text;
          return out;
        }
      }
      out.id = file_ + "::" + text;  // local or unresolved: file-scoped identity
      return out;
    }
    if (std::regex_match(text, match, kMember)) {
      const std::string object = match[1].str();
      const std::string member = match[2].str();
      auto local = ctx.locals.find(object);
      if (local != ctx.locals.end() && !local->second.empty()) {
        auto it = state_.classes.find(local->second);
        if (it != state_.classes.end() && it->second.mutexes.count(member) != 0) {
          out.id = local->second + "::" + member;
          out.owner = local->second;
          out.receiver = object;
          return out;
        }
      }
      out.id = file_ + "::" + CollapseSpaces(text);
      out.receiver = object;
      return out;
    }
    out.id = file_ + "::" + CollapseSpaces(text);
    return out;
  }

  std::string ResolveTypeWords(const std::string& type) const {
    const size_t sep = type.rfind("::");
    return state_.ResolveLockedClass(sep == std::string::npos ? type : type.substr(sep + 2));
  }

  void ParseParams(const std::string& clean_head, FunctionCtx& ctx) const {
    const size_t open = clean_head.find('(');
    if (open == std::string::npos) {
      return;
    }
    int depth = 0;
    size_t close = open;
    for (size_t i = open; i < clean_head.size(); ++i) {
      if (clean_head[i] == '(') {
        ++depth;
      } else if (clean_head[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == open) {
      return;
    }
    for (const std::string& param : SplitTopLevel(clean_head.substr(open + 1, close - open - 1))) {
      static const std::regex kParam(
          "^(?:const\\s+)?((?:\\w+(?:::\\w+)*))\\s*[&*]*\\s*([A-Za-z_]\\w*)$");
      std::smatch match;
      if (std::regex_match(param, match, kParam)) {
        ctx.locals[match[2].str()] = ResolveTypeWords(match[1].str());
      }
    }
  }

  void RegisterLocal(const std::string& flat, FunctionCtx& ctx) const {
    static const std::regex kLocal(
        "^(?:const\\s+|static\\s+|mutable\\s+)*((?:\\w+(?:::\\w+)*))\\s*[&*]*"
        "\\s+([A-Za-z_]\\w*)\\s*(?:[=({\\[].*)?$");
    static const std::set<std::string>* rejected = new std::set<std::string>{
        "return", "delete", "throw", "new", "goto", "else", "case", "using", "typedef"};
    std::smatch match;
    if (!std::regex_match(flat, match, kLocal) || rejected->count(match[1].str()) != 0) {
      return;
    }
    ctx.locals[match[2].str()] = ResolveTypeWords(match[1].str());
  }

  // --- lock tracking ------------------------------------------------------

  void Acquire(FunctionCtx& ctx, const Resolved& lock, const std::string& guard, int line) {
    for (const Held& held : ctx.held) {
      const auto key = std::make_pair(held.lock.id, lock.id);
      if (state_.edges.count(key) == 0) {
        state_.edges[key] = EdgeWitness{file_, line};
      }
    }
    Held held;
    held.lock = lock;
    held.guard = guard;
    held.depth = scopes().size();
    ctx.held.push_back(std::move(held));
    if (!guard.empty()) {
      ctx.guard_ids[guard] = lock;
      ctx.locals[guard] = "";  // guards are locals too: never write targets
    }
  }

  void ScanGuardDecls(const std::string& flat, int line, FunctionCtx& ctx) {
    static const std::regex kStdGuard(
        "\\b(?:std::)?(lock_guard|unique_lock|scoped_lock)\\s+([A-Za-z_]\\w*)\\s*"
        "[({]([^(){}]*)[)}]");
    static const std::regex kMutexLock(
        "\\b(?:cedar::)?MutexLock\\s+([A-Za-z_]\\w*)\\s*\\(([^()]*)\\)");
    std::smatch match;
    if (std::regex_search(flat, match, kStdGuard)) {
      const std::string kind = match[1].str();
      const std::string guard = match[2].str();
      std::vector<std::string> args = SplitTopLevel(match[3].str());
      if (args.empty()) {
        return;
      }
      for (const std::string& arg : args) {
        if (arg.find("defer_lock") != std::string::npos) {
          ctx.guard_ids[guard] = ResolveLockExpr(args[0], ctx);  // armed, not held
          ctx.locals[guard] = "";
          return;
        }
      }
      if (kind == "scoped_lock") {
        // Atomic multi-acquisition: edges from previously-held locks to each
        // argument, but none among the arguments themselves.
        const std::vector<Held> before = ctx.held;
        for (const std::string& arg : args) {
          if (arg.find("adopt_lock") != std::string::npos) {
            continue;
          }
          std::vector<Held> argument_free = ctx.held;
          ctx.held = before;
          Acquire(ctx, ResolveLockExpr(arg, ctx), guard, line);
          argument_free.push_back(ctx.held.back());
          ctx.held = std::move(argument_free);
        }
      } else {
        Acquire(ctx, ResolveLockExpr(args[0], ctx), guard, line);
      }
      return;
    }
    if (std::regex_search(flat, match, kMutexLock)) {
      const std::vector<std::string> args = SplitTopLevel(match[2].str());
      if (!args.empty()) {
        Acquire(ctx, ResolveLockExpr(args[0], ctx), match[1].str(), line);
      }
    }
  }

  void ScanManualLockOps(const std::string& statement, FunctionCtx& ctx) {
    static const std::regex kUnlock("([A-Za-z_]\\w*)\\s*\\.\\s*unlock\\s*\\(\\s*\\)");
    for (auto it = std::sregex_iterator(statement.begin(), statement.end(), kUnlock);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      std::vector<Held>& held = ctx.held;
      const size_t before = held.size();
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) { return h.guard == name && !name.empty(); }),
                 held.end());
      if (held.size() == before) {  // not a guard: maybe a mutex unlocked directly
        const std::string id = ResolveLockExpr(name, ctx).id;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const Held& h) { return h.lock.id == id; }),
                   held.end());
      }
    }
    static const std::regex kRelock("([A-Za-z_]\\w*)\\s*\\.\\s*lock\\s*\\(\\s*\\)");
    for (auto it = std::sregex_iterator(statement.begin(), statement.end(), kRelock);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      auto guard = ctx.guard_ids.find(name);
      if (guard == ctx.guard_ids.end()) {
        continue;
      }
      const bool already = std::any_of(ctx.held.begin(), ctx.held.end(),
                                       [&](const Held& h) { return h.guard == name; });
      if (!already) {
        Acquire(ctx, guard->second, name, 0);
      }
    }
  }

  void ScanCvWait(const std::string& statement, int line, FunctionCtx& ctx) {
    static const std::regex kWait(
        "[A-Za-z_]\\w*\\s*(?:\\.|->)\\s*[Ww]ait(?:_for|_until)?\\s*\\(\\s*"
        "([A-Za-z_]\\w*)\\s*[,)]");
    std::smatch match;
    if (!std::regex_search(statement, match, kWait)) {
      return;
    }
    const std::string guard = match[1].str();
    const Held* waited = nullptr;
    for (const Held& h : ctx.held) {
      if (h.guard == guard) {
        waited = &h;
        break;
      }
    }
    if (waited == nullptr) {
      return;
    }
    for (const Held& other : ctx.held) {
      if (other.lock.id == waited->lock.id) {
        continue;
      }
      state_.cv_diags.push_back(PendingDiag{
          file_, line, "lockgraph-cv-wait",
          "condition-variable wait releases '" + waited->lock.id + "' but still holds '" +
              other.lock.id +
              "'; a sleeping waiter blocks every other user of that lock indefinitely"});
    }
  }

  // --- write extraction ---------------------------------------------------

  void RecordWrite(const std::vector<std::string>& chain, int line, const FunctionCtx& ctx) {
    std::string cls;
    std::string field;
    std::string receiver;
    if (chain.size() == 1) {
      const std::string& name = chain[0];
      if (ctx.locals.count(name) != 0 || ctx.cls.empty()) {
        return;
      }
      cls = ctx.cls;
      field = name;
    } else if (chain.size() == 2) {
      auto local = ctx.locals.find(chain[0]);
      if (local == ctx.locals.end() || local->second.empty()) {
        return;
      }
      cls = local->second;
      field = chain[1];
      receiver = chain[0];
    } else {
      return;
    }
    auto it = state_.classes.find(cls);
    if (it == state_.classes.end() || it->second.mutexes.empty() ||
        it->second.fields.count(field) == 0 || it->second.atomics.count(field) != 0) {
      return;
    }
    WriteSite site;
    site.file = file_;
    site.line = line;
    for (const Held& h : ctx.held) {
      if (h.lock.owner == cls && h.lock.receiver == receiver) {
        site.locked = true;
        site.lock_id = h.lock.id;
        break;
      }
    }
    state_.writes[std::make_pair(cls, field)].push_back(std::move(site));
  }

  // Parses an identifier chain (a, a.b, a->b) ending just before |end|;
  // empty when the target is complex (array element, call result).
  static std::vector<std::string> ChainEndingAt(const std::string& text, size_t end) {
    std::vector<std::string> chain;
    size_t i = end;
    while (true) {
      while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) {
        --i;
      }
      size_t stop = i;
      while (i > 0 && IsIdentChar(text[i - 1])) {
        --i;
      }
      if (stop == i) {
        return {};  // no identifier: complex target
      }
      chain.insert(chain.begin(), text.substr(i, stop - i));
      while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) {
        --i;
      }
      if (i > 0 && text[i - 1] == '.') {
        --i;
        continue;
      }
      if (i > 1 && text[i - 1] == '>' && text[i - 2] == '-') {
        i -= 2;
        continue;
      }
      if (i > 0 && (text[i - 1] == ']' || text[i - 1] == ')')) {
        return {};  // a[i] = / f() = : give up rather than misattribute
      }
      return chain;
    }
  }

  static std::vector<std::string> ChainStartingAt(const std::string& text, size_t start) {
    std::vector<std::string> chain;
    size_t i = start;
    while (true) {
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      const size_t begin = i;
      while (i < text.size() && IsIdentChar(text[i])) {
        ++i;
      }
      if (i == begin) {
        return {};
      }
      chain.push_back(text.substr(begin, i - begin));
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      if (i < text.size() && text[i] == '.') {
        ++i;
        continue;
      }
      if (i + 1 < text.size() && text[i] == '-' && text[i + 1] == '>') {
        i += 2;
        continue;
      }
      return chain;
    }
  }

  void ScanWrites(const std::string& statement, int line, const FunctionCtx& ctx) {
    for (size_t i = 0; i < statement.size(); ++i) {
      const char c = statement[i];
      const char prev = i > 0 ? statement[i - 1] : '\0';
      const char next = i + 1 < statement.size() ? statement[i + 1] : '\0';
      if (c == '=' ) {
        if (next == '=' || prev == '=' || prev == '!' || prev == '<' || prev == '>') {
          continue;  // comparison or shift-assign; also skips the 2nd '=' of ==
        }
        size_t target_end = i;
        if (prev == '+' || prev == '-' || prev == '*' || prev == '/' || prev == '%' ||
            prev == '&' || prev == '|' || prev == '^') {
          target_end = i - 1;  // compound assignment
        }
        RecordWrite(ChainEndingAt(statement, target_end), line, ctx);
        continue;
      }
      if ((c == '+' && next == '+') || (c == '-' && next == '-')) {
        std::vector<std::string> chain = ChainStartingAt(statement, i + 2);
        if (chain.empty()) {
          chain = ChainEndingAt(statement, i);  // postfix
        }
        RecordWrite(chain, line, ctx);
        ++i;
        continue;
      }
    }
    static const std::regex kMutate(
        "\\b((?:[A-Za-z_]\\w*(?:\\.|->))*[A-Za-z_]\\w*)\\s*\\.\\s*"
        "(push_back|pop_back|push_front|pop_front|clear|erase|insert|emplace|emplace_back|"
        "emplace_front|resize|reserve|assign|swap|store|fetch_add|fetch_sub|exchange)\\s*\\(");
    for (auto it = std::sregex_iterator(statement.begin(), statement.end(), kMutate);
         it != std::sregex_iterator(); ++it) {
      std::vector<std::string> chain;
      std::string token;
      const std::string object = (*it)[1].str();
      std::string normalized = object;
      size_t arrow = 0;
      while ((arrow = normalized.find("->")) != std::string::npos) {
        normalized.replace(arrow, 2, ".");
      }
      std::istringstream parts(normalized);
      while (std::getline(parts, token, '.')) {
        chain.push_back(token);
      }
      RecordWrite(chain, line, ctx);
    }
  }

  GlobalState& state_;
  std::string file_;
  std::vector<FunctionCtx> ctxs_;
};

// ---------------------------------------------------------------------------
// Reporting: cycle detection over the global edge set, pending cv-wait
// diagnostics, and the unguarded-field vote.

bool Reaches(const std::map<std::string, std::set<std::string>>& adjacency,
             const std::string& start, const std::string& target) {
  if (start == target) {
    return true;
  }
  std::set<std::string> visited{start};
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    auto it = adjacency.find(node);
    if (it == adjacency.end()) {
      continue;
    }
    for (const std::string& next : it->second) {
      if (next == target) {
        return true;
      }
      if (visited.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  return false;
}

std::vector<Diagnostic> Report(const GlobalState& state, const std::string& rule_filter,
                               const std::map<std::string, StrippedSource>& stripped) {
  std::vector<Diagnostic> diagnostics;
  auto emit = [&](const std::string& file, int line, const std::string& rule,
                  const std::string& message) {
    if (!rule_filter.empty() && rule_filter != rule) {
      return;
    }
    auto it = stripped.find(file);
    if (it != stripped.end() && IsAllowed(it->second, line, rule)) {
      return;
    }
    diagnostics.push_back(Diagnostic{file, line, rule, message});
  };

  std::map<std::string, std::set<std::string>> adjacency;
  for (const auto& edge : state.edges) {
    adjacency[edge.first.first].insert(edge.first.second);
  }
  for (const auto& edge : state.edges) {
    const std::string& held = edge.first.first;
    const std::string& acquired = edge.first.second;
    if (!Reaches(adjacency, acquired, held)) {
      continue;
    }
    const std::string message =
        held == acquired
            ? "lock '" + acquired + "' is acquired while already held (self-deadlock)"
            : "acquiring '" + acquired + "' while holding '" + held +
                  "' closes a cycle in the global lock-acquisition order (potential deadlock)";
    emit(edge.second.file, edge.second.line, "lockgraph-cycle", message);
  }

  for (const PendingDiag& diag : state.cv_diags) {
    emit(diag.file, diag.line, diag.rule, diag.message);
  }

  for (const auto& entry : state.writes) {
    const std::vector<WriteSite>& sites = entry.second;
    std::map<std::string, int> votes;
    int locked_count = 0;
    for (const WriteSite& site : sites) {
      if (site.locked) {
        ++locked_count;
        ++votes[site.lock_id];
      }
    }
    if (locked_count == 0 || locked_count == static_cast<int>(sites.size())) {
      continue;  // consistently unlocked (not ours to judge) or consistently locked
    }
    std::string dominant;
    int best = 0;
    for (const auto& vote : votes) {  // map order: ties break lexicographically
      if (vote.second > best) {
        best = vote.second;
        dominant = vote.first;
      }
    }
    std::ostringstream message;
    message << "field '" << entry.first.first << "::" << entry.first.second
            << "' is written here without holding '" << dominant << "' (" << locked_count
            << " of " << sites.size()
            << " writes hold it); guard the write or suppress with "
               "allow(lockgraph-unguarded-field)";
    for (const WriteSite& site : sites) {
      if (!site.locked) {
        emit(site.file, site.line, "lockgraph-unguarded-field", message.str());
      }
    }
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  return diagnostics;
}

}  // namespace

const std::vector<std::string>& LockgraphRules() {
  static const std::vector<std::string>* rules = new std::vector<std::string>{
      "lockgraph-cycle",
      "lockgraph-cv-wait",
      "lockgraph-unguarded-field",
  };
  return *rules;
}

void LockgraphRun::SetRuleFilter(const std::string& rule) { rule_filter_ = rule; }

void LockgraphRun::AddFile(const std::string& path, const std::string& content) {
  files_.push_back(FileEntry{path, content});
}

std::vector<Diagnostic> LockgraphRun::Run() {
  std::map<std::string, StrippedSource> stripped;
  for (const FileEntry& file : files_) {
    stripped[file.path] = StripSource(file.content);
  }
  GlobalState state;
  for (const FileEntry& file : files_) {
    ClassScanner scanner(state, file.path);
    scanner.Walk(stripped[file.path].lines);
  }
  for (const FileEntry& file : files_) {
    FunctionScanner scanner(state, file.path);
    scanner.Walk(stripped[file.path].lines);
  }
  return Report(state, rule_filter_, stripped);
}

std::vector<Diagnostic> LockgraphTree(const std::string& root,
                                      const std::vector<std::string>& dirs,
                                      const std::string& rule_filter,
                                      int* out_files_scanned) {
  LockgraphRun run;
  run.SetRuleFilter(rule_filter);
  int scanned = 0;
  for (const std::string& relative : ListSourceFiles(root, dirs)) {
    run.AddFile(relative, ReadSourceFile(root, relative));
    ++scanned;
  }
  if (out_files_scanned != nullptr) {
    *out_files_scanned = scanned;
  }
  return run.Run();
}

}  // namespace lint
}  // namespace cedar
