#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>
#include <utility>

#include "tools/lint/stripped_source.h"

namespace cedar {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Path predicates deciding which rules apply where.

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Wall-clock reads are the observability layer's and the realtime
// aggregator's job; everything else must be simulated-time only.
bool WallclockExempt(const std::string& path) {
  return StartsWith(path, "src/obs/") || StartsWith(path, "src/rt/");
}

// The seeded Rng wrappers (and their unit test, which cross-checks against
// the std engines) are the one sanctioned home for raw std randomness.
bool RngExempt(const std::string& path) {
  const std::string base = Basename(path);
  return StartsWith(base, "rng");
}

bool IsEngineCode(const std::string& path) { return StartsWith(path, "src/"); }

std::string CanonicalGuard(const std::string& path) {
  std::string guard = "CEDAR_";
  for (char c : path) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

// ---------------------------------------------------------------------------
// Pattern-rule table.

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
  bool (*exempt)(const std::string& path);  // may be null
  bool engine_only;                         // restrict to src/
};

const std::vector<PatternRule>& PatternRules() {
  static const std::vector<PatternRule>* rules = new std::vector<PatternRule>{
      {"wallclock",
       std::regex("\\b(system_clock|steady_clock|high_resolution_clock)\\b|"
                  "\\b(time|clock|gettimeofday|clock_gettime)\\s*\\("),
       "wall-clock read outside src/obs/ and src/rt/; engine results must not depend on real "
       "time",
       &WallclockExempt, false},
      {"rng",
       std::regex("\\b(rand|srand)\\s*\\(|\\brandom_device\\b|\\bmt19937(_64)?\\b|"
                  "\\bdefault_random_engine\\b|\\bminstd_rand0?\\b"),
       "raw std randomness outside src/stats/rng; draw through a seeded cedar::Rng instead",
       &RngExempt, false},
      {"ptr-hash",
       std::regex("reinterpret_cast\\s*<\\s*(std::)?(uintptr_t|size_t|intptr_t)\\s*>|"
                  "std::hash\\s*<[^<>]*\\*\\s*>"),
       "pointer-address fingerprint/hash; addresses are recycled between queries — key by "
       "content or sequence id",
       nullptr, false},
      {"raw-new",
       std::regex("\\bnew\\b|(^|[^=!<>+*/%&|^-])\\s\\bdelete\\b"),
       "raw new/delete in engine code; use std::make_unique / containers",
       nullptr, true},
      {"stdout",
       std::regex("\\bstd::cout\\b|\\bprintf\\s*\\(|\\bfprintf\\s*\\(\\s*stdout\\b|"
                  "\\bputs\\s*\\("),
       "direct stdout write from src/; take a std::ostream& or use CEDAR_LOG",
       nullptr, true},
  };
  return *rules;
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << file << ":" << line << ": error: [" << rule << "] " << message;
  return out.str();
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string>* rules = new std::vector<std::string>{
      "wallclock", "rng",           "ptr-hash",      "unordered-iter", "raw-new",
      "stdout",    "fork-override", "include-guard", "self-contained",
  };
  return *rules;
}

void LintRun::SetRuleFilter(const std::string& rule) { rule_filter_ = rule; }

void LintRun::AddFile(const std::string& path, const std::string& content) {
  StrippedSource stripped = StripSource(content);
  FileState state;
  state.path = path;
  state.lines = std::move(stripped.lines);
  state.line_allows = std::move(stripped.line_allows);
  state.file_allows = std::move(stripped.file_allows);
  // Include paths must come from the raw text: the stripper blanks string
  // literals, which erases the path inside #include "...".
  static const std::regex kInclude("^\\s*#\\s*include\\s*[<\"]([^>\"]+)[>\"]");
  std::istringstream raw(content);
  std::string raw_line;
  while (std::getline(raw, raw_line)) {
    std::smatch match;
    if (std::regex_search(raw_line, match, kInclude)) {
      state.includes.insert(match[1].str());
    }
  }
  files_.push_back(std::move(state));
}

bool LintRun::RuleEnabled(const std::string& rule) const {
  return rule_filter_.empty() || rule_filter_ == rule;
}

bool LintRun::Suppressed(const FileState& file, int line, const std::string& rule) const {
  if (file.file_allows.count(rule) != 0) {
    return true;
  }
  for (int candidate : {line, line - 1}) {
    auto it = file.line_allows.find(candidate);
    if (it != file.line_allows.end() && it->second.count(rule) != 0) {
      return true;
    }
  }
  return false;
}

void LintRun::Report(const FileState& file, int line, const std::string& rule,
                     const std::string& message) {
  if (!RuleEnabled(rule) || Suppressed(file, line, rule)) {
    return;
  }
  diagnostics_.push_back(Diagnostic{file.path, line, rule, message});
}

void LintRun::CheckPatternRules(const FileState& file) {
  for (const PatternRule& rule : PatternRules()) {
    if (rule.engine_only && !IsEngineCode(file.path)) {
      continue;
    }
    if (rule.exempt != nullptr && rule.exempt(file.path)) {
      continue;
    }
    for (size_t i = 0; i < file.lines.size(); ++i) {
      if (std::regex_search(file.lines[i], rule.pattern)) {
        Report(file, static_cast<int>(i) + 1, rule.rule, rule.message);
      }
    }
  }
}

void LintRun::CheckUnorderedIteration(const FileState& file) {
  // Names declared as unordered containers in this file and, for a .cc, in
  // its sibling header (members iterated in the implementation).
  static const std::regex kDecl(
      "\\bstd::unordered_(?:map|set|multimap|multiset)\\s*<[^;{}]*>\\s+(\\w+)\\s*[;={(]");
  static const std::regex kDeclOpen(  // declaration whose template args span lines
      "\\bstd::unordered_(?:map|set|multimap|multiset)\\s*<[^;{}>]*$");
  std::set<std::string> names;
  auto collect = [&](const FileState& source) {
    for (const std::string& line : source.lines) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
    }
  };
  collect(file);
  if (!IsHeader(file.path)) {
    std::string sibling = file.path;
    const size_t dot = sibling.find_last_of('.');
    if (dot != std::string::npos) {
      sibling = sibling.substr(0, dot) + ".h";
      auto it = by_path_.find(sibling);
      if (it != by_path_.end()) {
        collect(*it->second);
      }
    }
  }
  if (names.empty()) {
    return;
  }
  std::string alternation;
  for (const std::string& name : names) {
    alternation += (alternation.empty() ? "" : "|") + name;
  }
  const std::regex range_for("\\bfor\\s*\\([^();]*:[^();]*\\b(" + alternation + ")\\b");
  for (size_t i = 0; i < file.lines.size(); ++i) {
    std::smatch match;
    if (std::regex_search(file.lines[i], match, range_for)) {
      Report(file, static_cast<int>(i) + 1, "unordered-iter",
             "iteration over unordered container '" + match[1].str() +
                 "'; order is implementation-defined — iterate a sorted copy or switch to an "
                 "ordered container before this feeds any output");
    }
  }
}

void LintRun::CheckIncludeGuard(const FileState& file) {
  if (!IsHeader(file.path)) {
    return;
  }
  static const std::regex kDirective("^\\s*#\\s*(\\w+)\\s*(\\S*)");
  std::vector<std::pair<int, std::smatch>> directives;
  for (size_t i = 0; i < file.lines.size() && directives.size() < 2; ++i) {
    std::smatch match;
    if (std::regex_search(file.lines[i], match, kDirective)) {
      directives.emplace_back(static_cast<int>(i) + 1, match);
    }
  }
  const std::string guard = CanonicalGuard(file.path);
  if (directives.empty()) {
    Report(file, 1, "include-guard", "header has no include guard; want #ifndef " + guard);
    return;
  }
  if (directives[0].second[1].str() == "pragma") {
    if (directives[0].second[2].str() != "once") {
      Report(file, directives[0].first, "include-guard",
             "header's first directive is a #pragma other than 'once'; want #pragma once or "
             "#ifndef " +
                 guard);
    }
    return;
  }
  if (directives[0].second[1].str() != "ifndef" || directives[0].second[2].str() != guard) {
    Report(file, directives[0].first, "include-guard",
           "first directive must be the canonical include guard #ifndef " + guard);
    return;
  }
  if (directives.size() < 2 || directives[1].second[1].str() != "define" ||
      directives[1].second[2].str() != guard) {
    Report(file, directives[0].first, "include-guard",
           "#ifndef " + guard + " must be followed by #define " + guard);
  }
}

void LintRun::CheckSelfContained(const FileState& file) {
  if (!IsHeader(file.path)) {
    return;
  }
  struct Symbol {
    const char* display;
    std::regex use;
    std::vector<std::string> providers;  // any direct include satisfies
  };
  static const std::vector<Symbol>* symbols = new std::vector<Symbol>{
      {"std::string", std::regex("\\bstd::(string|to_string)\\b"), {"string"}},
      {"std::vector", std::regex("\\bstd::vector\\b"), {"vector"}},
      {"std::unique_ptr/std::shared_ptr",
       std::regex("\\bstd::(unique_ptr|shared_ptr|make_unique|make_shared|weak_ptr)\\b"),
       {"memory"}},
      {"std::function", std::regex("\\bstd::function\\b"), {"functional"}},
      {"std::unordered_map", std::regex("\\bstd::unordered_(map|multimap)\\b"),
       {"unordered_map"}},
      {"std::unordered_set", std::regex("\\bstd::unordered_(set|multiset)\\b"),
       {"unordered_set"}},
      {"std::map", std::regex("\\bstd::(map|multimap)\\b"), {"map"}},
      {"std::set", std::regex("\\bstd::(set|multiset)\\b"), {"set"}},
      {"std::pair", std::regex("\\bstd::(pair|make_pair|move|forward|swap)\\b"), {"utility"}},
      {"std::tuple", std::regex("\\bstd::(tuple|make_tuple|tie)\\b"), {"tuple"}},
      {"std::optional", std::regex("\\bstd::(optional|nullopt)\\b"), {"optional"}},
      {"std::array", std::regex("\\bstd::array\\b"), {"array"}},
      {"std::deque", std::regex("\\bstd::deque\\b"), {"deque"}},
      {"std::initializer_list", std::regex("\\bstd::initializer_list\\b"),
       {"initializer_list"}},
      {"std::mutex", std::regex("\\bstd::(mutex|lock_guard|unique_lock|scoped_lock)\\b"),
       {"mutex"}},
      {"std::condition_variable", std::regex("\\bstd::condition_variable\\b"),
       {"condition_variable"}},
      {"std::thread", std::regex("\\bstd::thread\\b"), {"thread"}},
      {"std::atomic", std::regex("\\bstd::atomic\\b"), {"atomic"}},
      {"std::ostream/std::istream", std::regex("\\bstd::(ostream|istream|iostream|endl)\\b"),
       {"iosfwd", "ostream", "istream", "iostream"}},
      {"std::ostringstream", std::regex("\\bstd::[io]?stringstream\\b"), {"sstream"}},
      {"fixed-width ints", std::regex("\\b(u?int(8|16|32|64)_t)\\b"),
       {"cstdint", "stdint.h"}},
      {"cedar::Mutex/MutexLock/CondVar",
       std::regex("\\bcedar::(Mutex|MutexLock|CondVar)\\b|"
                  "\\b(Mutex|MutexLock|CondVar)\\s+\\w+\\s*[;({]"),
       {"src/common/mutex.h"}},
      {"CEDAR_GUARDED_BY et al.",
       std::regex("\\bCEDAR_(CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY|REQUIRES|"
                  "ACQUIRE|RELEASE|TRY_ACQUIRE|EXCLUDES|RETURN_CAPABILITY|"
                  "NO_THREAD_SAFETY_ANALYSIS)\\b"),
       {"src/common/thread_annotations.h", "src/common/mutex.h"}},
  };
  for (const Symbol& symbol : *symbols) {
    bool provided = false;
    for (const std::string& provider : symbol.providers) {
      // A provider header is allowed to name its own symbols.
      if (file.includes.count(provider) != 0 || file.path == provider) {
        provided = true;
        break;
      }
    }
    if (provided) {
      continue;
    }
    for (size_t i = 0; i < file.lines.size(); ++i) {
      if (std::regex_search(file.lines[i], symbol.use)) {
        Report(file, static_cast<int>(i) + 1, "self-contained",
               std::string("header uses ") + symbol.display + " but does not include <" +
                   symbol.providers.front() + "> directly");
        break;  // one diagnostic per symbol per header
      }
    }
  }
}

void LintRun::CheckForkOverride() {
  if (!RuleEnabled("fork-override")) {
    return;
  }
  struct ClassDecl {
    std::string name;
    std::string base;
    const FileState* file;
    int line;
    size_t line_index;
    size_t column;
  };
  static const std::regex kClass(
      "\\b(?:class|struct)\\s+(\\w+)\\s*(?:final\\s*)?:\\s*(?:public|protected|private)?\\s*"
      "(?:cedar::)?(\\w+)");
  std::vector<ClassDecl> decls;
  for (const FileState& file : files_) {
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& line = file.lines[i];
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kClass);
           it != std::sregex_iterator(); ++it) {
        decls.push_back(ClassDecl{(*it)[1].str(), (*it)[2].str(), &file,
                                  static_cast<int>(i) + 1, i,
                                  static_cast<size_t>(it->position())});
      }
    }
  }
  std::map<std::string, std::string> parent;
  for (const ClassDecl& decl : decls) {
    parent.emplace(decl.name, decl.base);
  }
  auto derives_from_wait_policy = [&](const std::string& name) {
    std::string current = name;
    for (int depth = 0; depth < 16; ++depth) {  // cycle guard
      auto it = parent.find(current);
      if (it == parent.end()) {
        return false;
      }
      if (it->second == "WaitPolicy") {
        return true;
      }
      current = it->second;
    }
    return false;
  };
  for (const ClassDecl& decl : decls) {
    if (!derives_from_wait_policy(decl.name)) {
      continue;
    }
    // Extract the class body (brace matching on stripped text) and look for
    // a ForkForWorker declaration anywhere inside it.
    const FileState& file = *decl.file;
    bool overrides = false;
    int depth = 0;
    bool in_body = false;
    bool body_done = false;
    for (size_t i = decl.line_index; i < file.lines.size() && !body_done; ++i) {
      const std::string& line = file.lines[i];
      const bool line_in_body = in_body;
      for (size_t j = i == decl.line_index ? decl.column : 0; j < line.size(); ++j) {
        if (line[j] == '{') {
          ++depth;
          in_body = true;
        } else if (line[j] == '}') {
          --depth;
          if (in_body && depth == 0) {
            body_done = true;
            break;
          }
        }
      }
      if ((line_in_body || in_body) && line.find("ForkForWorker") != std::string::npos) {
        overrides = true;
        break;
      }
    }
    if (!overrides) {
      Report(file, decl.line, "fork-override",
             "WaitPolicy subclass '" + decl.name +
                 "' does not override ForkForWorker; forked workers would share its Clone() "
                 "state — override it, or allow(fork-override) with a justification that the "
                 "default (Clone) is detached");
    }
  }
}

std::vector<Diagnostic> LintRun::Run() {
  diagnostics_.clear();
  by_path_.clear();
  for (const FileState& file : files_) {
    by_path_[file.path] = &file;
  }
  for (const FileState& file : files_) {
    CheckPatternRules(file);
    CheckUnorderedIteration(file);
    CheckIncludeGuard(file);
    CheckSelfContained(file);
  }
  CheckForkOverride();
  std::sort(diagnostics_.begin(), diagnostics_.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  return diagnostics_;
}

std::vector<Diagnostic> LintTree(const std::string& root, const std::vector<std::string>& dirs,
                                 const std::string& rule_filter, int* out_files_scanned) {
  LintRun run;
  run.SetRuleFilter(rule_filter);
  int scanned = 0;
  for (const std::string& relative : ListSourceFiles(root, dirs)) {
    run.AddFile(relative, ReadSourceFile(root, relative));
    ++scanned;
  }
  if (out_files_scanned != nullptr) {
    *out_files_scanned = scanned;
  }
  return run.Run();
}

}  // namespace lint
}  // namespace cedar
