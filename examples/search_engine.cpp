// Web-search scenario (§2.1, Figure 2): a query fans out across index
// silos; every aggregator ranks and forwards results under an end-to-end
// deadline of 140-170 ms. This example runs the interactive workload
// (Facebook-map-in-ms bottom stage, Google-cluster upper stage), compares
// all wait policies, and then solves the §6 dual problem: the smallest
// deadline at which a target response quality is achievable.
//
//   ./search_engine [--deadline_ms=150] [--queries=200] [--target_quality=0.95]

#include <iostream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/dual.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  cedar::FlagSet flags("Web-search aggregation under millisecond deadlines.");
  double* deadline = flags.AddDouble("deadline_ms", 150.0, "end-to-end deadline (ms)");
  int64_t* queries = flags.AddInt("queries", 200, "number of search queries");
  double* target = flags.AddDouble("target_quality", 0.95, "dual-problem quality target");
  int64_t* seed = flags.AddInt("seed", 17, "workload seed");
  flags.Parse(argc, argv);

  auto workload = cedar::MakeInteractiveWorkload(50, 50);
  std::cout << "Scenario: " << workload.name() << ", deadline " << *deadline << " ms, "
            << workload.OfflineTree().TotalProcesses() << " index-server processes\n";

  cedar::ProportionalSplitPolicy prop_split;
  cedar::EqualSplitPolicy equal_split;
  cedar::MeanSubtractPolicy mean_subtract;
  cedar::CedarPolicy cedar_policy;
  cedar::OraclePolicy ideal;

  cedar::ExperimentConfig config;
  config.deadline = *deadline;
  config.num_queries = static_cast<int>(*queries);
  config.seed = static_cast<uint64_t>(*seed);

  auto result = cedar::RunExperiment(
      workload, {&prop_split, &equal_split, &mean_subtract, &cedar_policy, &ideal}, config);

  cedar::TablePrinter table({"policy", "avg_quality", "p5_quality", "median", "p95_quality"});
  for (const auto& outcome : result.outcomes) {
    table.AddRow({outcome.policy_name,
                  cedar::TablePrinter::FormatDouble(outcome.MeanQuality(), 3),
                  cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.05), 3),
                  cedar::TablePrinter::FormatDouble(outcome.quality.Median(), 3),
                  cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.95), 3)});
  }
  table.Print(std::cout);
  std::cout << "Cedar vs Proportional-split: +"
            << cedar::TablePrinter::FormatDouble(
                   result.ImprovementPercent("prop-split", "cedar"), 1)
            << "%\n";

  // The dual problem (§6): the same machinery answers "what is the smallest
  // deadline that achieves x% quality?" for SLO planning.
  cedar::DualSolution dual =
      cedar::SolveDeadlineForQuality(workload.OfflineTree(), *target, 10.0 * *deadline);
  std::cout << "\nDual problem: reaching quality " << *target << " needs a deadline of ";
  if (dual.feasible) {
    std::cout << cedar::TablePrinter::FormatDouble(dual.deadline, 1) << " ms (achieves "
              << cedar::TablePrinter::FormatDouble(dual.achieved_quality, 3) << ").\n";
  } else {
    std::cout << "more than " << 10.0 * *deadline << " ms (infeasible in range).\n";
  }
  return 0;
}
