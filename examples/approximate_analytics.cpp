// Approximate-analytics scenario (§2.1, Figure 3): a BlinkDB/Dremel-style
// framework compiles a query into map -> partial-aggregate -> root and must
// answer within a user-specified deadline. This example:
//   1. materializes a job trace from the Facebook-like workload and writes
//      it to CSV (the paper's per-job replay),
//   2. reloads it and replays every job through the slot-scheduled cluster
//      engine (320 slots) under Proportional-split and Cedar,
//   3. repeats with speculative execution enabled, showing Cedar coexisting
//      with straggler mitigation (§7).
//
//   ./approximate_analytics [--deadline=1000] [--jobs=60] [--trace=/tmp/jobs.csv]

#include <iostream>

#include "src/cluster/experiment.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/trace/trace_io.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  cedar::FlagSet flags("Approximate analytics on a slot-scheduled cluster engine.");
  double* deadline = flags.AddDouble("deadline", 1000.0, "query deadline (seconds)");
  int64_t* jobs = flags.AddInt("jobs", 60, "number of jobs in the trace");
  std::string* trace_path =
      flags.AddString("trace", "/tmp/cedar_jobs.csv", "where to write the job trace");
  int64_t* seed = flags.AddInt("seed", 23, "trace generation seed");
  flags.Parse(argc, argv);

  // 1. Materialize and persist a job trace.
  auto generator = cedar::MakeFacebookWorkload(20, 16);
  cedar::QueryTrace trace =
      cedar::MaterializeTrace(generator, static_cast<int>(*jobs), static_cast<uint64_t>(*seed));
  cedar::SaveQueryTrace(trace, *trace_path);
  std::cout << "Materialized " << trace.queries.size() << " jobs to " << *trace_path << "\n";

  // 2. Reload and replay through the cluster engine.
  cedar::ReplayWorkload replay(cedar::LoadQueryTrace(*trace_path));
  std::cout << "Replay workload: " << replay.name() << ", offline view "
            << replay.OfflineTree().ToString() << "\n";

  cedar::ProportionalSplitPolicy prop_split;
  cedar::CedarPolicy cedar_policy;

  cedar::ClusterExperimentConfig config;
  config.cluster.machines = 80;
  config.cluster.slots_per_machine = 4;
  config.deadline = *deadline;
  config.num_queries = static_cast<int>(trace.queries.size());
  config.seed = static_cast<uint64_t>(*seed);

  auto run = [&](const char* label) {
    auto result = cedar::RunClusterExperiment(replay, {&prop_split, &cedar_policy}, config);
    cedar::TablePrinter table({"policy", "avg_quality", "p10", "p90", "late_root_arrivals"});
    for (const auto& outcome : result.outcomes) {
      table.AddRow({outcome.policy_name,
                    cedar::TablePrinter::FormatDouble(outcome.MeanQuality(), 3),
                    cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.1), 3),
                    cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.9), 3),
                    std::to_string(outcome.root_arrivals_late)});
    }
    std::cout << "\n--- " << label << " ---\n";
    table.Print(std::cout);
    std::cout << "Cedar improvement: +"
              << cedar::TablePrinter::FormatDouble(
                     result.ImprovementPercent("prop-split", "cedar"), 1)
              << "%  (speculative clones launched: " << result.total_clones_launched << ")\n";
  };

  run("plain engine");

  // 3. Same replay with speculative execution enabled.
  config.run.speculation.enabled = true;
  config.run.speculation.slowdown_threshold = 2.0;
  run("with speculative execution (straggler mitigation coexists with Cedar)");
  return 0;
}
