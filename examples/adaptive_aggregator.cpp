// A guided walkthrough of one aggregator's life (Pseudocode 1): watch the
// online learner refine its (mu, sigma) estimate and CalculateWait adjust
// the timer as process outputs arrive. This is the example to read when
// integrating Cedar into your own aggregation service.
//
//   ./adaptive_aggregator [--fanout=50] [--deadline=1000] [--true_mu=4.0]

#include <algorithm>
#include <iostream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/online_learner.h"
#include "src/core/quality.h"
#include "src/core/wait_optimizer.h"
#include "src/stats/rng.h"

int main(int argc, char** argv) {
  cedar::FlagSet flags("Single-aggregator walkthrough of Cedar's online loop.");
  int64_t* fanout = flags.AddInt("fanout", 50, "number of child processes (k1)");
  double* deadline = flags.AddDouble("deadline", 1000.0, "end-to-end deadline");
  double* true_mu = flags.AddDouble("true_mu", 4.0, "this query's true lognormal mu");
  double* true_sigma = flags.AddDouble("true_sigma", 0.84, "this query's true lognormal sigma");
  int64_t* seed = flags.AddInt("seed", 7, "rng seed");
  flags.Parse(argc, argv);

  const int k = static_cast<int>(*fanout);

  // What the system believes offline (global fit across past queries) vs
  // what this query actually is.
  cedar::LogNormalDistribution offline_x1(5.0, 1.5);
  cedar::LogNormalDistribution true_x1(*true_mu, *true_sigma);
  cedar::LogNormalDistribution x2(4.3, 1.0);  // upper stage, known offline

  // q_1 curve for the subtree above this aggregator: the CDF of X2.
  cedar::PiecewiseLinear upper = cedar::TabulateCdf(x2, *deadline, 401);
  double epsilon = *deadline / 400.0;

  std::cout << "Offline belief: " << offline_x1.ToString() << "\n"
            << "This query:     " << true_x1.ToString() << "\n"
            << "Upper stage:    " << x2.ToString() << ", deadline " << *deadline << "\n\n";

  cedar::WaitDecision initial =
      cedar::OptimizeWait(offline_x1, k, upper, *deadline, epsilon);
  std::cout << "Initial wait from offline belief: " << initial.wait
            << " (expected quality under that belief: "
            << cedar::TablePrinter::FormatDouble(initial.expected_quality, 3) << ")\n";
  cedar::WaitDecision oracle = cedar::OptimizeWait(true_x1, k, upper, *deadline, epsilon);
  std::cout << "Wait an oracle would pick:        " << oracle.wait << "\n\n";

  // Sample this query's process durations — the arrivals the aggregator
  // will observe in order.
  cedar::Rng rng(static_cast<uint64_t>(*seed));
  std::vector<double> arrivals(static_cast<size_t>(k));
  for (auto& arrival : arrivals) {
    arrival = true_x1.Sample(rng);
  }
  std::sort(arrivals.begin(), arrivals.end());

  cedar::OnlineLearnerOptions learner_options;
  learner_options.min_samples = 5;
  cedar::OnlineLearner learner(k, learner_options);

  cedar::TablePrinter table(
      {"arrival#", "time", "fitted_mu", "fitted_sigma", "recomputed_wait"});
  double wait = initial.wait;
  int sent_at = -1;
  for (int i = 0; i < k; ++i) {
    double now = arrivals[static_cast<size_t>(i)];
    if (now > wait && sent_at < 0) {
      sent_at = i;  // the timer would have fired before this arrival
    }
    learner.Observe(now);
    auto fit = learner.CurrentFit();
    std::string mu_text = "-";
    std::string sigma_text = "-";
    if (fit.has_value()) {
      auto fitted = cedar::MakeDistribution(*fit);
      wait = cedar::OptimizeWait(*fitted, k, upper, *deadline, epsilon).wait;
      mu_text = cedar::TablePrinter::FormatDouble(fit->p1, 3);
      sigma_text = cedar::TablePrinter::FormatDouble(fit->p2, 3);
    }
    if (i < 12 || (i + 1) % 10 == 0) {
      table.AddRow({std::to_string(i + 1), cedar::TablePrinter::FormatDouble(now, 2), mu_text,
                    sigma_text, cedar::TablePrinter::FormatDouble(wait, 1)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nFinal learned fit: mu="
            << cedar::TablePrinter::FormatDouble(learner.CurrentFit()->p1, 3)
            << " sigma=" << cedar::TablePrinter::FormatDouble(learner.CurrentFit()->p2, 3)
            << " (truth: mu=" << *true_mu << " sigma=" << *true_sigma << ")\n"
            << "Final wait " << cedar::TablePrinter::FormatDouble(wait, 1)
            << " vs oracle wait " << cedar::TablePrinter::FormatDouble(oracle.wait, 1) << "\n";
  if (sent_at >= 0) {
    std::cout << "(With the offline-only wait the timer would have fired after arrival "
              << sent_at << " of " << k << ".)\n";
  }
  return 0;
}
