// Quickstart: run a handful of aggregation queries from the Facebook-like
// workload under three wait policies — the Proportional-split baseline, the
// Cedar algorithm, and the Ideal (oracle) ceiling — and print the resulting
// response qualities.
//
//   ./quickstart [--deadline=1000] [--queries=50] [--fanout=50] [--seed=7]

#include <iostream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  cedar::FlagSet flags(
      "Cedar quickstart: compare wait policies on the Facebook-like workload.");
  double* deadline = flags.AddDouble("deadline", 1000.0, "end-to-end deadline (seconds)");
  int64_t* queries = flags.AddInt("queries", 50, "number of queries to replay");
  int64_t* fanout = flags.AddInt("fanout", 50, "fanout at both tree levels");
  int64_t* seed = flags.AddInt("seed", 7, "workload RNG seed");
  flags.Parse(argc, argv);

  auto workload =
      cedar::MakeFacebookWorkload(static_cast<int>(*fanout), static_cast<int>(*fanout));
  std::cout << "Workload: " << workload.name() << " (durations in " << workload.time_unit()
            << ")\n"
            << "Offline tree: " << workload.OfflineTree().ToString() << "\n"
            << "Deadline: " << *deadline << " " << workload.time_unit() << ", " << *queries
            << " queries\n";

  cedar::ProportionalSplitPolicy baseline;
  cedar::CedarPolicy cedar_policy;
  cedar::OraclePolicy ideal;

  cedar::ExperimentConfig config;
  config.deadline = *deadline;
  config.num_queries = static_cast<int>(*queries);
  config.seed = static_cast<uint64_t>(*seed);

  cedar::ExperimentResult result =
      cedar::RunExperiment(workload, {&baseline, &cedar_policy, &ideal}, config);

  cedar::TablePrinter table({"policy", "avg_quality", "p10_quality", "p90_quality",
                             "improvement_vs_baseline_%"});
  for (const auto& outcome : result.outcomes) {
    double improvement = cedar::PercentImprovement(
        result.Outcome(baseline.name()).MeanQuality(), outcome.MeanQuality());
    table.AddRow({outcome.policy_name, cedar::TablePrinter::FormatDouble(outcome.MeanQuality()),
                  cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.10)),
                  cedar::TablePrinter::FormatDouble(outcome.quality.Quantile(0.90)),
                  cedar::TablePrinter::FormatDouble(improvement, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nCedar improves average response quality by "
            << cedar::TablePrinter::FormatDouble(
                   result.ImprovementPercent(baseline.name(), cedar_policy.name()), 1)
            << "% over Proportional-split (Ideal ceiling: "
            << cedar::TablePrinter::FormatDouble(
                   result.ImprovementPercent(baseline.name(), ideal.name()), 1)
            << "%).\n";
  return 0;
}
