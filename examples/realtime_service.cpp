// Real-time endhost demo: a wall-clock partial-aggregation service.
//
// Spawns k worker threads (simulated index servers) whose response times
// are log-normal in real milliseconds, and one RealtimeAggregator driven by
// the Cedar policy. Prints the timeline: the offline initial wait, each
// arrival, and the final send — everything on std::chrono::steady_clock.
// This is the §1 claim in action: no network-layer support, just endhost
// timers.
//
//   ./realtime_service [--fanout=16] [--deadline_ms=250] [--true_mu_ms=40]

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/core/quality.h"
#include "src/rt/realtime_aggregator.h"
#include "src/stats/rng.h"

int main(int argc, char** argv) {
  cedar::FlagSet flags("Real-time partial aggregation with Cedar on wall-clock timers.");
  int64_t* fanout = flags.AddInt("fanout", 16, "number of worker threads");
  double* deadline_ms = flags.AddDouble("deadline_ms", 250.0, "end-to-end deadline (ms)");
  double* true_mu_ms = flags.AddDouble("true_mu_ms", 40.0,
                                       "median worker latency in ms (this query's truth)");
  int64_t* seed = flags.AddInt("seed", 11, "rng seed");
  flags.Parse(argc, argv);

  const int k = static_cast<int>(*fanout);
  const double deadline_s = *deadline_ms / 1000.0;

  // Offline knowledge (seconds): believed worker latency and upstream ship.
  auto offline_x1 = std::make_shared<cedar::LogNormalDistribution>(std::log(0.030), 0.6);
  auto x2 = std::make_shared<cedar::LogNormalDistribution>(std::log(0.020), 0.5);
  cedar::TreeSpec tree = cedar::TreeSpec::TwoLevel(offline_x1, k, x2, 1);
  cedar::PiecewiseLinear upper = cedar::TabulateCdf(*x2, deadline_s, 201);

  cedar::AggregatorContext ctx;
  ctx.tier = 0;
  ctx.deadline = deadline_s;
  ctx.fanout = k;
  ctx.offline_tree = &tree;
  ctx.upper_quality = &upper;
  ctx.epsilon = deadline_s / 400.0;

  std::cout << "Believed worker latency: " << offline_x1->ToString()
            << " s; actual median this query: " << *true_mu_ms << " ms\n"
            << "Deadline " << *deadline_ms << " ms, fanout " << k << "\n\n";

  cedar::RealtimeAggregator<int>::Result result;
  cedar::RealtimeAggregator<int> aggregator(
      std::make_unique<cedar::CedarPolicy>(), ctx,
      [&](cedar::RealtimeAggregator<int>::Result r) { result = std::move(r); });

  aggregator.Start();

  // Workers: the query's true latency differs from the offline belief —
  // Cedar must adapt on the fly.
  cedar::LogNormalDistribution true_latency(std::log(*true_mu_ms / 1000.0), 0.6);
  cedar::Rng rng(static_cast<uint64_t>(*seed));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    double latency_s = true_latency.Sample(rng);
    workers.emplace_back([&aggregator, i, latency_s] {
      std::this_thread::sleep_for(std::chrono::duration<double>(latency_s));
      aggregator.Offer(i);
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  aggregator.Join();

  cedar::TablePrinter table({"metric", "value"});
  table.AddRow({"outputs included", std::to_string(result.outputs.size()) + " / " +
                                        std::to_string(k)});
  table.AddRow({"send time (ms)",
                cedar::TablePrinter::FormatDouble(result.send_time * 1000.0, 1)});
  table.AddRow({"sent early (all arrived)", result.sent_early ? "yes" : "no"});
  if (!result.arrival_times.empty()) {
    table.AddRow({"first arrival (ms)",
                  cedar::TablePrinter::FormatDouble(result.arrival_times.front() * 1000.0, 1)});
    table.AddRow({"last included arrival (ms)",
                  cedar::TablePrinter::FormatDouble(result.arrival_times.back() * 1000.0, 1)});
  }
  table.Print(std::cout);

  double quality = static_cast<double>(result.outputs.size()) / k;
  std::cout << "\nResponse quality: " << cedar::TablePrinter::FormatDouble(quality, 3) << "\n";
  return 0;
}
