#include "bench/bench_util.h"

#include <algorithm>
#include <memory>
#include <ostream>

#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"

namespace cedar {
namespace {

// One worker pool for the whole sweep: constructing (and joining) a pool per
// RunExperiment call wasted a thread spawn/teardown per deadline. Returns
// null when the sweep would run serially anyway.
std::unique_ptr<ThreadPool> MakeSweepPool(int requested_threads, int num_queries) {
  const int threads = std::min(ResolveThreadCount(requested_threads), std::max(num_queries, 1));
  if (threads <= 1) {
    return nullptr;
  }
  return std::make_unique<ThreadPool>(threads);
}

std::vector<std::string> SweepColumns(const std::vector<const WaitPolicy*>& policies,
                                      const std::string& baseline, const std::string& unit) {
  std::vector<std::string> columns = {"deadline_" + unit};
  for (const auto* policy : policies) {
    columns.push_back("q(" + policy->name() + ")");
  }
  for (const auto* policy : policies) {
    if (policy->name() != baseline) {
      columns.push_back("impr(" + policy->name() + ")_%");
    }
  }
  return columns;
}

std::vector<std::string> SweepRow(double deadline,
                                  const std::vector<const WaitPolicy*>& policies,
                                  const std::string& baseline,
                                  const std::function<double(const std::string&)>& quality_of) {
  std::vector<std::string> row = {TablePrinter::FormatDouble(deadline, 0)};
  for (const auto* policy : policies) {
    row.push_back(TablePrinter::FormatDouble(quality_of(policy->name()), 3));
  }
  double base_quality = quality_of(baseline);
  for (const auto* policy : policies) {
    if (policy->name() != baseline) {
      double improvement = base_quality > 0.0
                               ? 100.0 * (quality_of(policy->name()) - base_quality) / base_quality
                               : 0.0;
      row.push_back(TablePrinter::FormatDouble(improvement, 1));
    }
  }
  return row;
}

}  // namespace

void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<const WaitPolicy*>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options) {
  CEDAR_CHECK(!policies.empty());
  std::string baseline = options.baseline.empty() ? policies.front()->name() : options.baseline;

  PrintBanner(out, title);
  out << "workload=" << workload.name() << " unit=" << workload.time_unit()
      << " queries=" << options.num_queries << " seed=" << options.seed << "\n";

  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options.threads, options.num_queries);
  TablePrinter table(SweepColumns(policies, baseline, workload.time_unit()));
  for (double deadline : deadlines) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = options.num_queries;
    config.seed = options.seed;
    config.threads = options.threads;
    config.pool = pool.get();
    config.sim = options.sim;
    ExperimentResult result = RunExperiment(workload, policies, config);
    table.AddRow(SweepRow(deadline, policies, baseline, [&](const std::string& name) {
      return result.Outcome(name).MeanQuality();
    }));
  }
  table.Print(out);
}

void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<const WaitPolicy*>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options) {
  CEDAR_CHECK(!policies.empty());
  std::string baseline = options.baseline.empty() ? policies.front()->name() : options.baseline;

  PrintBanner(out, title);
  out << "workload=" << workload.name() << " unit=" << workload.time_unit()
      << " cluster=" << options.cluster.machines << "x" << options.cluster.slots_per_machine
      << " slots, queries=" << options.num_queries << " seed=" << options.seed << "\n";

  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options.threads, options.num_queries);
  TablePrinter table(SweepColumns(policies, baseline, workload.time_unit()));
  for (double deadline : deadlines) {
    ClusterExperimentConfig config;
    config.cluster = options.cluster;
    config.deadline = deadline;
    config.num_queries = options.num_queries;
    config.seed = options.seed;
    config.threads = options.threads;
    config.pool = pool.get();
    config.run = options.run;
    ClusterExperimentResult result = RunClusterExperiment(workload, policies, config);
    table.AddRow(SweepRow(deadline, policies, baseline, [&](const std::string& name) {
      return result.Outcome(name).MeanQuality();
    }));
  }
  table.Print(out);
}

void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options) {
  RunDeadlineSweep(out, title, workload, PolicyPointers(policies), deadlines, options);
}

void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options) {
  RunClusterDeadlineSweep(out, title, workload, PolicyPointers(policies), deadlines, options);
}

}  // namespace cedar
