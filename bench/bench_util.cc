#include "bench/bench_util.h"

#include <algorithm>
#include <memory>
#include <ostream>

#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"

namespace cedar {
namespace {

// One worker pool for the whole sweep: constructing (and joining) a pool per
// RunExperiment call wasted a thread spawn/teardown per deadline. Returns
// null when the sweep would run serially anyway.
std::unique_ptr<ThreadPool> MakeSweepPool(int requested_threads, int num_queries) {
  const int threads = std::min(ResolveThreadCount(requested_threads), std::max(num_queries, 1));
  if (threads <= 1) {
    return nullptr;
  }
  return std::make_unique<ThreadPool>(threads);
}

std::vector<std::string> SweepColumns(const std::vector<const WaitPolicy*>& policies,
                                      const std::string& baseline, const std::string& unit) {
  std::vector<std::string> columns = {"deadline_" + unit};
  for (const auto* policy : policies) {
    columns.push_back("q(" + policy->name() + ")");
  }
  for (const auto* policy : policies) {
    if (policy->name() != baseline) {
      columns.push_back("impr(" + policy->name() + ")_%");
    }
  }
  return columns;
}

// The store a sweep's policies actually resolve to: the explicitly scoped
// one, else the process Global() (the CedarPolicy default).
WaitTableStore& SweepStore(WaitTableStore* configured) {
  return configured != nullptr ? *configured : WaitTableStore::Global();
}

// Printed after a sweep's table when the run touched the wait-table store:
// the hit rate is the sweep's table-build amortization at a glance.
void PrintStoreDelta(std::ostream& out, const WaitTableStoreStats& before,
                     const WaitTableStoreStats& after) {
  WaitTableStoreStats delta;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  delta.build_waits = after.build_waits - before.build_waits;
  delta.evictions = after.evictions - before.evictions;
  if (delta.Gets() <= 0) {
    return;
  }
  out << "wait-table store: gets=" << delta.Gets() << " builds=" << delta.misses
      << " hit_rate=" << TablePrinter::FormatDouble(100.0 * delta.HitRate(), 1)
      << "% build_waits=" << delta.build_waits << " evictions=" << delta.evictions << "\n";
}

std::vector<std::string> SweepRow(double deadline,
                                  const std::vector<const WaitPolicy*>& policies,
                                  const std::string& baseline,
                                  const std::function<double(const std::string&)>& quality_of) {
  std::vector<std::string> row = {TablePrinter::FormatDouble(deadline, 0)};
  for (const auto* policy : policies) {
    row.push_back(TablePrinter::FormatDouble(quality_of(policy->name()), 3));
  }
  double base_quality = quality_of(baseline);
  for (const auto* policy : policies) {
    if (policy->name() != baseline) {
      double improvement = base_quality > 0.0
                               ? 100.0 * (quality_of(policy->name()) - base_quality) / base_quality
                               : 0.0;
      row.push_back(TablePrinter::FormatDouble(improvement, 1));
    }
  }
  return row;
}

}  // namespace

BenchObservability::BenchObservability(FlagSet& flags) : flags_(AddObservabilityFlags(flags)) {}

void BenchObservability::Init() { scope_ = InitObservability(flags_); }

void BenchObservability::Finish(std::ostream& out) { FinishObservability(flags_, scope_, out); }

void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<const WaitPolicy*>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options) {
  CEDAR_CHECK(!policies.empty());
  std::string baseline = options.baseline.empty() ? policies.front()->name() : options.baseline;

  PrintBanner(out, title);
  out << "workload=" << workload.name() << " unit=" << workload.time_unit()
      << " queries=" << options.num_queries << " seed=" << options.seed << "\n";

  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options.threads, options.num_queries);
  WaitTableStore& store = SweepStore(options.wait_table_store);
  const WaitTableStoreStats store_before = store.GetStats();
  TablePrinter table(SweepColumns(policies, baseline, workload.time_unit()));
  for (double deadline : deadlines) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = options.num_queries;
    config.seed = options.seed;
    config.threads = options.threads;
    config.pool = pool.get();
    config.sim = options.sim;
    config.wait_table_store = options.wait_table_store;
    ExperimentResult result = RunExperiment(workload, policies, config);
    table.AddRow(SweepRow(deadline, policies, baseline, [&](const std::string& name) {
      return result.Outcome(name).MeanQuality();
    }));
  }
  table.Print(out);
  PrintStoreDelta(out, store_before, store.GetStats());
}

void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<const WaitPolicy*>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options) {
  CEDAR_CHECK(!policies.empty());
  std::string baseline = options.baseline.empty() ? policies.front()->name() : options.baseline;

  PrintBanner(out, title);
  out << "workload=" << workload.name() << " unit=" << workload.time_unit()
      << " cluster=" << options.cluster.machines << "x" << options.cluster.slots_per_machine
      << " slots, queries=" << options.num_queries << " seed=" << options.seed << "\n";

  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options.threads, options.num_queries);
  WaitTableStore& store = SweepStore(options.wait_table_store);
  const WaitTableStoreStats store_before = store.GetStats();
  TablePrinter table(SweepColumns(policies, baseline, workload.time_unit()));
  for (double deadline : deadlines) {
    ClusterExperimentConfig config;
    config.cluster = options.cluster;
    config.deadline = deadline;
    config.num_queries = options.num_queries;
    config.seed = options.seed;
    config.threads = options.threads;
    config.pool = pool.get();
    config.run = options.run;
    config.wait_table_store = options.wait_table_store;
    ClusterExperimentResult result = RunClusterExperiment(workload, policies, config);
    table.AddRow(SweepRow(deadline, policies, baseline, [&](const std::string& name) {
      return result.Outcome(name).MeanQuality();
    }));
  }
  table.Print(out);
  PrintStoreDelta(out, store_before, store.GetStats());
}

void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options) {
  RunDeadlineSweep(out, title, workload, PolicyPointers(policies), deadlines, options);
}

void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options) {
  RunClusterDeadlineSweep(out, title, workload, PolicyPointers(policies), deadlines, options);
}

}  // namespace cedar
