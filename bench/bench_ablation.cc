// Ablations of Cedar's design choices (DESIGN.md §5):
//  * scan step epsilon — discretization error of CalculateWait;
//  * minimum samples before trusting the online fit;
//  * re-optimization frequency (every arrival vs every n-th);
//  * exact integrated order-statistic scores vs Blom's approximation.
// All on the Facebook workload at D = 1000 s against Proportional-split.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace {

using namespace cedar;

double CedarQuality(const Workload& workload, const CedarPolicyOptions& cedar_options,
                    double deadline, int queries, uint64_t seed, double epsilon_fraction) {
  CedarPolicy cedar(cedar_options);
  ExperimentConfig config;
  config.deadline = deadline;
  config.num_queries = queries;
  config.seed = seed;
  config.sim.grid.epsilon_fraction = epsilon_fraction;
  auto result = RunExperiment(workload, {&cedar}, config);
  return result.Outcome(cedar.name()).MeanQuality();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("Ablation benches for Cedar's design choices.");
  int64_t* queries = flags.AddInt("queries", 60, "queries per configuration");
  double* deadline = flags.AddDouble("deadline", 1000.0, "deadline (seconds)");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeFacebookWorkload(50, 50);
  int n = static_cast<int>(*queries);
  auto s = static_cast<uint64_t>(*seed);

  {
    PrintBanner(std::cout, "Ablation: CalculateWait scan step epsilon (fraction of deadline)");
    TablePrinter table({"epsilon_fraction", "q(cedar)"});
    for (double fraction : {1.0 / 50, 1.0 / 100, 1.0 / 200, 1.0 / 400, 1.0 / 800}) {
      table.AddNumericRow({fraction, CedarQuality(workload, {}, *deadline, n, s, fraction)}, 4);
    }
    table.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "Ablation: minimum samples before the online fit is trusted");
    TablePrinter table({"min_samples", "q(cedar)"});
    for (int min_samples : {2, 5, 10, 15, 25}) {
      CedarPolicyOptions options;
      options.learner.min_samples = min_samples;
      table.AddNumericRow(
          {static_cast<double>(min_samples),
           CedarQuality(workload, options, *deadline, n, s, 1.0 / 400)},
          4);
    }
    table.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "Ablation: re-optimization frequency (every n-th arrival)");
    TablePrinter table({"reoptimize_every", "q(cedar)"});
    for (int every : {1, 2, 5, 10, 25}) {
      CedarPolicyOptions options;
      options.reoptimize_every = every;
      table.AddNumericRow({static_cast<double>(every),
                           CedarQuality(workload, options, *deadline, n, s, 1.0 / 400)},
                          4);
    }
    table.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "Ablation: exact order-statistic scores vs Blom's approximation");
    TablePrinter table({"score_method", "q(cedar)"});
    for (auto method : {OrderScoreMethod::kExact, OrderScoreMethod::kBlom}) {
      CedarPolicyOptions options;
      options.learner.score_method = method;
      table.AddRow({method == OrderScoreMethod::kExact ? "exact" : "blom",
                    TablePrinter::FormatDouble(
                        CedarQuality(workload, options, *deadline, n, s, 1.0 / 400), 4)});
    }
    table.Print(std::cout);
  }
  obs.Finish(std::cout);
  return 0;
}
