// Microbench for the wait-table precompute service (§4.3.3 fast path).
//
// Part 1 — build parallelism: one WaitTable build (every grid point is an
// independent OptimizeWait scan) timed serially and on worker pools of
// increasing size, with every grid point checked bit-identical to the
// serial build.
//
// Part 2 — sweep amortization: a fig08-style multi-deadline sweep of the
// table-driven Cedar run twice, with per-fork table caches (the historical
// behaviour, share_wait_tables=false) and through a shared WaitTableStore.
// Total table-build work is counted via the wait_table.builds metric; the
// per-query qualities of both runs are asserted bit-identical, so the
// reported reduction is pure redundancy removal.
//
// --smoke shrinks the grid, the query count, and the deadline list to a
// few-second run for the tier1_store CI label.

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/math_util.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/core/policies.h"
#include "src/core/quality.h"
#include "src/core/wait_table_store.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/trace/workloads.h"

namespace {

using namespace cedar;

double MillisBetween(int64_t begin_ns, int64_t end_ns) {
  return static_cast<double>(end_ns - begin_ns) / 1e6;
}

// Exact grid-point lookups (bilinear weights are 0 at grid nodes), compared
// bitwise against the serial build.
void CheckBitIdentical(const WaitTable& serial, const WaitTable& parallel) {
  const WaitTableSpec& spec = serial.spec();
  for (int li = 0; li < spec.location_points; ++li) {
    double location = Lerp(spec.location_min, spec.location_max,
                           static_cast<double>(li) / (spec.location_points - 1));
    for (int si = 0; si < spec.scale_points; ++si) {
      double scale = Lerp(spec.scale_min, spec.scale_max,
                          static_cast<double>(si) / (spec.scale_points - 1));
      CEDAR_CHECK(serial.Lookup(location, scale) == parallel.Lookup(location, scale))
          << "parallel build diverged at grid point (" << li << ", " << si << ")";
    }
  }
}

void RunBuildBench(std::ostream& out, const WaitTableSpec& spec, int repeats) {
  PrintBanner(out, "Part 1: WaitTable build, serial vs pool-parallel grid fill");
  const PiecewiseLinear upper = TabulateCdf(LogNormalDistribution(3.25, 0.95), 1000.0, 401);
  const double epsilon = 1000.0 / 400.0;
  const int fanout = 50;
  out << "grid=" << spec.location_points << "x" << spec.scale_points
      << " points, repeats=" << repeats << " (best shown), hardware_threads="
      << ThreadPool::HardwareThreads() << "\n";

  auto best_build_ms = [&](ThreadPool* pool, std::unique_ptr<WaitTable>& table_out) {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      int64_t begin = SteadyNowNs();
      auto table = std::make_unique<WaitTable>(spec, fanout, upper, 1000.0, epsilon, pool);
      double ms = MillisBetween(begin, SteadyNowNs());
      if (r == 0 || ms < best) {
        best = ms;
      }
      table_out = std::move(table);
    }
    return best;
  };

  std::unique_ptr<WaitTable> serial;
  double serial_ms = best_build_ms(nullptr, serial);

  TablePrinter table({"build", "time_ms", "speedup_x"});
  table.AddRow({"serial", TablePrinter::FormatDouble(serial_ms, 1),
                TablePrinter::FormatDouble(1.0, 2)});
  // Pools beyond the hardware width still run (the bit-identity check is the
  // point); their speedup just saturates at the core count.
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    std::unique_ptr<WaitTable> parallel;
    double parallel_ms = best_build_ms(&pool, parallel);
    CheckBitIdentical(*serial, *parallel);
    table.AddRow({"pool-" + std::to_string(threads),
                  TablePrinter::FormatDouble(parallel_ms, 1),
                  TablePrinter::FormatDouble(parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                                             2)});
  }
  table.Print(out);
  out << "grid points bit-identical across all builds\n";
}

void RunSweepBench(std::ostream& out, const WaitTableSpec& spec,
                   const std::vector<double>& deadlines, int num_queries, int threads) {
  PrintBanner(out, "Part 2: deadline sweep, per-fork table caches vs shared store");
  auto workload = MakeFacebookWorkload(20, 20);
  out << "workload=" << workload.name() << " queries=" << num_queries
      << " threads=" << threads << " deadlines=" << deadlines.size() << "\n";

  CedarPolicyOptions options;
  options.use_wait_table = true;
  options.table_spec = spec;
  options.share_wait_tables = false;
  CedarPolicy fork_cached(options);  // the historical per-fork TableCache path
  options.share_wait_tables = true;
  CedarPolicy store_shared(options);

  ThreadPool pool(threads);
  WaitTableStore store;  // sweep-scoped; the engine lends |pool| per run
  Counter& builds = MetricsRegistry::Global().GetCounter("wait_table.builds");

  long long baseline_builds = 0;
  long long store_builds = 0;
  TablePrinter table({"deadline_s", "builds_per_fork", "builds_store", "mean_quality"});
  for (double deadline : deadlines) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = num_queries;
    config.seed = 42;
    config.pool = &pool;
    // Offline upper knowledge: one curve per deadline, as deployed — the
    // regime where per-fork caches redundantly rebuild the same table.
    config.sim.per_query_upper_knowledge = false;

    long long before = builds.Value();
    ExperimentResult baseline = RunExperiment(workload, {&fork_cached}, config);
    long long per_fork = builds.Value() - before;

    config.wait_table_store = &store;
    before = builds.Value();
    ExperimentResult shared = RunExperiment(workload, {&store_shared}, config);
    long long with_store = builds.Value() - before;

    // Same tables by content => byte-identical qualities, or the store path
    // changed behaviour and the comparison below is meaningless.
    const auto& base_q = baseline.Outcome("cedar").quality.values();
    const auto& store_q = shared.Outcome("cedar").quality.values();
    CEDAR_CHECK_EQ(base_q.size(), store_q.size());
    for (size_t i = 0; i < base_q.size(); ++i) {
      CEDAR_CHECK(base_q[i] == store_q[i])
          << "store-enabled quality diverged at deadline " << deadline << ", query " << i;
    }

    baseline_builds += per_fork;
    store_builds += with_store;
    table.AddRow({TablePrinter::FormatDouble(deadline, 0), std::to_string(per_fork),
                  std::to_string(with_store),
                  TablePrinter::FormatDouble(shared.Outcome("cedar").MeanQuality(), 3)});
  }
  table.Print(out);

  const WaitTableStoreStats stats = store.GetStats();
  out << "qualities byte-identical across both runs\n";
  out << "total builds: per-fork=" << baseline_builds << " store=" << store_builds
      << " reduction="
      << TablePrinter::FormatDouble(store_builds > 0 ? static_cast<double>(baseline_builds) /
                                                           static_cast<double>(store_builds)
                                                     : 0.0,
                                    1)
      << "x\n";
  out << "store: gets=" << stats.Gets() << " hit_rate="
      << TablePrinter::FormatDouble(100.0 * stats.HitRate(), 1)
      << "% build_waits=" << stats.build_waits << " evictions=" << stats.evictions << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("Wait-table microbench: parallel builds and store amortization.");
  int64_t* queries = flags.AddInt("queries", 60, "queries per deadline (part 2)");
  int64_t* threads = flags.AddInt("threads", 4, "sweep worker threads (part 2)");
  int64_t* repeats = flags.AddInt("repeats", 3, "build timing repeats (part 1)");
  bool* smoke = flags.AddBool("smoke", false, "tiny grid and query count (CI smoke run)");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();
  // The report is driven by the wait_table.builds counter, so metrics are on
  // regardless of --metrics (which additionally prints the full report).
  SetMetricsEnabled(true);

  WaitTableSpec spec;
  spec.location_min = 0.0;
  spec.location_max = 10.0;
  spec.location_points = *smoke ? 17 : 81;
  spec.scale_min = 0.1;
  spec.scale_max = 2.5;
  spec.scale_points = *smoke ? 9 : 25;

  std::vector<double> deadlines =
      *smoke ? std::vector<double>{800.0, 1000.0}
             : std::vector<double>{600.0, 800.0, 1000.0, 1200.0};
  const int num_queries = *smoke ? 8 : static_cast<int>(*queries);
  const int sweep_threads = *smoke ? 2 : static_cast<int>(*threads);

  RunBuildBench(std::cout, spec, *smoke ? 1 : static_cast<int>(*repeats));
  RunSweepBench(std::cout, spec, deadlines, num_queries, sweep_threads);

  obs.Finish(std::cout);
  return 0;
}
