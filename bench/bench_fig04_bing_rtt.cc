// Figure 4: distribution of RTTs in Bing's search cluster.
//
// The paper plots the CDF with median 330us, p90 1.1ms, p99 14ms. We
// reproduce the figure from the published log-normal fit (5.9, 1.25): the
// percentile table and CDF series below, plus the DistributionFitter run on
// the three published percentiles (the §4.2.1 offline type-fitting step).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/stats/distribution.h"
#include "src/stats/fitting.h"
#include "src/trace/calibration.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 4: Bing search-cluster RTT distribution.");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  PrintBanner(std::cout, "Figure 4: Bing search-cluster RTT distribution (microseconds)");

  LogNormalDistribution paper_fit(kBingMu, kBingSigma);
  std::cout << "paper fit: " << paper_fit.ToString() << "\n";

  {
    TablePrinter table({"percentile", "paper_reported_us", "fit_value_us"});
    table.AddRow({"p50", TablePrinter::FormatDouble(kBingMedianUs, 0),
                  TablePrinter::FormatDouble(paper_fit.Quantile(0.50), 0)});
    table.AddRow({"p90", TablePrinter::FormatDouble(kBingP90Us, 0),
                  TablePrinter::FormatDouble(paper_fit.Quantile(0.90), 0)});
    table.AddRow({"p99", TablePrinter::FormatDouble(kBingP99Us, 0),
                  TablePrinter::FormatDouble(paper_fit.Quantile(0.99), 0)});
    table.Print(std::cout);
  }

  // The offline type-fitting step on the published percentiles.
  {
    PrintBanner(std::cout, "Offline percentile fit of the published points (rriskDistributions "
                           "substitute)");
    std::vector<PercentilePoint> points = {
        {0.50, kBingMedianUs}, {0.90, kBingP90Us}, {0.99, kBingP99Us}};
    DistributionFitter fitter;
    auto fits = fitter.FitPercentiles(points);
    TablePrinter table({"family", "fit", "relative_rms_error"});
    for (const auto& fit : fits) {
      table.AddRow({DistributionFamilyName(fit.spec.family), fit.spec.ToString(),
                    TablePrinter::FormatDouble(fit.relative_rms_error, 5)});
    }
    table.Print(std::cout);
  }

  // CDF series as plotted in the figure (0-2ms body; 0-15ms tail inset).
  {
    PrintBanner(std::cout, "CDF series (body: 0-2 ms)");
    TablePrinter table({"time_us", "cdf"});
    for (double t = 100.0; t <= 2000.0; t += 100.0) {
      table.AddNumericRow({t, paper_fit.Cdf(t)}, 4);
    }
    table.Print(std::cout);

    PrintBanner(std::cout, "CDF series (tail inset: 2-15 ms)");
    TablePrinter tail({"time_us", "cdf"});
    for (double t = 2000.0; t <= 15000.0; t += 1000.0) {
      tail.AddNumericRow({t, paper_fit.Cdf(t)}, 4);
    }
    tail.Print(std::cout);
  }
  obs.Finish(std::cout);
  return 0;
}
