// Figure 15: Microsoft Cosmos analytics workload — extract phase at the
// bottom, full-aggregate on top. Only per-phase statistics were available
// (no per-job task durations), so every query shares the global
// distributions and Cedar's online learning is not in play; the gains come
// from the CalculateWait optimizer alone. The paper reports 9-79%
// improvements, close to Ideal.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 15: Cosmos extract/full-aggregate workload.");
  int64_t* queries = flags.AddInt("queries", 150, "queries per deadline");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeCosmosWorkload(50, 50);
  ProportionalSplitPolicy prop_split;
  // Online learning is inactive by construction (stationary workload), so
  // Cedar == the offline CalculateWait plan; we run both to demonstrate it.
  OfflineOptimalPolicy cedar_offline;
  CedarPolicy cedar;
  OraclePolicy ideal;

  SweepOptions options;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();

  RunDeadlineSweep(std::cout,
                   "Figure 15: Cosmos phase statistics (stationary; learning not in play)",
                   workload, {&prop_split, &cedar_offline, &cedar, &ideal},
                   {60.0, 75.0, 95.0, 120.0, 150.0}, options);
  obs.Finish(std::cout);
  return 0;
}
