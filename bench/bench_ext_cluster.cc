// Extension benches for the cluster engine (beyond the paper's evaluation):
//  * hot spots: a fraction of machines slowed by contention, with and
//    without speculative execution — Cedar coexisting with straggler
//    mitigation (§7 future work);
//  * load: concurrent queries sharing the cluster (Poisson arrivals),
//    quality vs utilization — the regime where queueing inflates the
//    bottom-stage durations that Cedar must learn online.

#include <iostream>

#include "src/cluster/experiment.h"
#include "src/cluster/loaded_runtime.h"
#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Cluster-engine extension benches: hot spots and load.");
  int64_t* queries = flags.AddInt("queries", 60, "queries per configuration");
  double* deadline = flags.AddDouble("deadline", 1000.0, "per-query deadline (seconds)");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeFacebookWorkload(20, 16);
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;

  {
    PrintBanner(std::cout,
                "Extension: hot spots (fraction of machines 4x slower), speculation on/off");
    TablePrinter table({"slow_fraction", "speculation", "q(prop-split)", "q(cedar)",
                        "clones", "clones_won"});
    for (double slow_fraction : {0.0, 0.1, 0.25, 0.5}) {
      for (bool speculation : {false, true}) {
        ClusterExperimentConfig config;
        config.cluster.machines = 100;  // 400 slots: idle capacity for clones
        config.cluster.slots_per_machine = 4;
        config.cluster.slow_machine_fraction = slow_fraction;
        config.cluster.slow_machine_factor = 4.0;
        config.deadline = *deadline;
        config.num_queries = static_cast<int>(*queries);
        config.seed = static_cast<uint64_t>(*seed);
        config.run.speculation.enabled = speculation;
        config.run.speculation.max_clones = 32;
        auto result = RunClusterExperiment(workload, {&prop_split, &cedar}, config);
        table.AddRow({TablePrinter::FormatDouble(slow_fraction, 2),
                      speculation ? "on" : "off",
                      TablePrinter::FormatDouble(result.Outcome("prop-split").MeanQuality(), 3),
                      TablePrinter::FormatDouble(result.Outcome("cedar").MeanQuality(), 3),
                      std::to_string(result.total_clones_launched),
                      std::to_string(result.total_clones_won)});
      }
    }
    table.Print(std::cout);
  }

  {
    PrintBanner(std::cout,
                "Extension: concurrent queries (Poisson arrivals) — quality vs utilization");
    TablePrinter table({"mean_interarrival_s", "utilization", "mean_queue_delay_s",
                        "q(prop-split)", "q(cedar)"});
    for (double interarrival : {2000.0, 1000.0, 500.0, 250.0, 125.0}) {
      LoadedRunConfig config;
      config.cluster.machines = 80;
      config.cluster.slots_per_machine = 4;
      config.deadline = *deadline;
      config.mean_interarrival = interarrival;
      config.num_queries = static_cast<int>(*queries);
      config.seed = static_cast<uint64_t>(*seed);
      LoadedRunResult baseline = RunLoadedCluster(workload, prop_split, config);
      LoadedRunResult treated = RunLoadedCluster(workload, cedar, config);
      table.AddRow({TablePrinter::FormatDouble(interarrival, 0),
                    TablePrinter::FormatDouble(treated.utilization, 3),
                    TablePrinter::FormatDouble(treated.mean_queue_delay, 1),
                    TablePrinter::FormatDouble(baseline.MeanQuality(), 3),
                    TablePrinter::FormatDouble(treated.MeanQuality(), 3)});
    }
    table.Print(std::cout);
  }
  obs.Finish(std::cout);
  return 0;
}
