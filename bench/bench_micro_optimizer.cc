// Microbenchmarks for the CalculateWait machinery (§5.2 claims Cedar's
// algorithm completes "within tens of milliseconds even without
// parallelization"): OptimizeWait at several scan resolutions, quality-curve
// construction, and full tree planning.

#include <benchmark/benchmark.h>

#include "src/core/quality.h"
#include "src/core/wait_optimizer.h"
#include "src/core/wait_table.h"
#include "src/trace/calibration.h"

namespace cedar {
namespace {

TreeSpec BenchTree(int levels = 2) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<LogNormalDistribution>(kFacebookMapMu, kFacebookMapSigma),
                      50);
  for (int i = 1; i < levels; ++i) {
    stages.emplace_back(std::make_shared<LogNormalDistribution>(3.25, kFacebookReduceSigma), 50);
  }
  return TreeSpec(std::move(stages));
}

void BM_OptimizeWait(benchmark::State& state) {
  TreeSpec tree = BenchTree();
  const double deadline = 1000.0;
  auto upper = TabulateCdf(*tree.stage(1).duration, deadline, 401);
  double epsilon = deadline / static_cast<double>(state.range(0));
  for (auto _ : state) {
    WaitDecision decision =
        OptimizeWait(*tree.stage(0).duration, 50, upper, deadline, epsilon);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel("scan_steps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_OptimizeWait)->Arg(100)->Arg(400)->Arg(1000)->Arg(4000);

void BM_BuildQualityCurve(benchmark::State& state) {
  TreeSpec tree = BenchTree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto curve = BuildQualityCurve(tree, 0, 1000.0);
    benchmark::DoNotOptimize(curve);
  }
  state.SetLabel("levels=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BuildQualityCurve)->Arg(2)->Arg(3)->Arg(4);

void BM_PlanTree(benchmark::State& state) {
  TreeSpec tree = BenchTree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TreePlan plan = PlanTree(tree, 1000.0);
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel("levels=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PlanTree)->Arg(2)->Arg(3);

void BM_OptimizeWaitParallel(benchmark::State& state) {
  TreeSpec tree = BenchTree();
  const double deadline = 1000.0;
  auto upper = TabulateCdf(*tree.stage(1).duration, deadline, 401);
  double epsilon = deadline / 4000.0;  // a fine scan, where threads pay off
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WaitDecision decision =
        OptimizeWaitParallel(*tree.stage(0).duration, 50, upper, deadline, epsilon, threads);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel("threads=" + std::to_string(threads) + " scan_steps=4000");
}
BENCHMARK(BM_OptimizeWaitParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WaitTableBuild(benchmark::State& state) {
  TreeSpec tree = BenchTree();
  const double deadline = 1000.0;
  auto upper = TabulateCdf(*tree.stage(1).duration, deadline, 401);
  WaitTableSpec spec;
  spec.location_min = 0.0;
  spec.location_max = 10.0;
  spec.location_points = static_cast<int>(state.range(0));
  spec.scale_min = 0.1;
  spec.scale_max = 2.5;
  spec.scale_points = 17;
  for (auto _ : state) {
    WaitTable table(spec, 50, upper, deadline, deadline / 400.0);
    benchmark::DoNotOptimize(table.Lookup(3.0, 0.8));
  }
  state.SetLabel(std::to_string(state.range(0)) + "x17 grid (offline, one-off)");
}
BENCHMARK(BM_WaitTableBuild)->Arg(17)->Arg(41);

void BM_WaitTableLookup(benchmark::State& state) {
  TreeSpec tree = BenchTree();
  const double deadline = 1000.0;
  auto upper = TabulateCdf(*tree.stage(1).duration, deadline, 401);
  WaitTableSpec spec;
  spec.location_min = 0.0;
  spec.location_max = 10.0;
  spec.location_points = 41;
  spec.scale_min = 0.1;
  spec.scale_max = 2.5;
  spec.scale_points = 17;
  WaitTable table(spec, 50, upper, deadline, deadline / 400.0);
  double mu = 2.0;
  for (auto _ : state) {
    mu = 2.0 + (mu > 6.0 ? -4.0 : 1e-4);  // vary the query point slightly
    benchmark::DoNotOptimize(table.Lookup(mu, 0.83));
  }
  state.SetLabel("the online fast path vs a full scan");
}
BENCHMARK(BM_WaitTableLookup);

}  // namespace
}  // namespace cedar

BENCHMARK_MAIN();
