// Extension bench: application-level quality (the paper's §7 future work —
// "consider the relevance of outputs ... instead of just the fraction").
//
//  * Ranked search: recall@10 of the returned ranking vs the exact top-10,
//    next to the §3 fraction metric, per policy across deadlines.
//  * Approximate analytics: mean relative error of AVG(value) GROUP BY
//    group vs the exact answer.
//
// Both run on per-query-varying latencies (log-normal scale jitter) so the
// policies differ; payloads are real (inverted index / fact table).

#include <cmath>
#include <iostream>

#include "src/apps/analytics_service.h"
#include "src/apps/search_service.h"
#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/sample_set.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/core/policy_registry.h"

namespace {

using namespace cedar;

// Per-query latency truth: bottom-stage scale jitter around the offline
// tree, upper stage stable.
QueryTruth DrawLatencyTruth(const TreeSpec& tree, Rng& rng, uint64_t sequence) {
  QueryTruth truth;
  truth.sequence = sequence;
  double mu_q = 2.5 + 0.8 * rng.NextGaussian();
  truth.stage_durations.push_back(std::make_shared<LogNormalDistribution>(mu_q, 0.8));
  truth.stage_durations.push_back(tree.stage(1).duration);
  return truth;
}

// Offline marginal of the jittered bottom stage: sigma_eff^2 = 0.8^2+0.8^2.
double EffectiveSigma() { return std::sqrt(0.8 * 0.8 + 0.8 * 0.8); }

TreeSpec LatencyTree(int k1, int k2) {
  return TreeSpec::TwoLevel(
      std::make_shared<LogNormalDistribution>(2.5, EffectiveSigma()), k1,
      std::make_shared<LogNormalDistribution>(2.0, 0.6), k2);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("Application-level quality: search recall and analytics answer error.");
  int64_t* queries = flags.AddInt("queries", 40, "queries per point");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  const int k1 = 10;
  const int k2 = 10;
  TreeSpec tree = LatencyTree(k1, k2);

  {
    PrintBanner(std::cout, "Extension: ranked search — recall@10 vs the fraction metric");
    CorpusSpec corpus;
    corpus.num_documents = 20000;
    corpus.vocabulary_size = 3000;
    corpus.seed = 3;
    SearchIndex index(corpus, k1 * k2);

    TablePrinter table({"deadline", "policy", "fraction_quality", "recall@10"});
    for (double deadline : {40.0, 80.0, 160.0, 320.0}) {
      SearchServiceConfig config;
      config.deadline = deadline;
      SearchService service(&index, tree, config);
      for (const char* name : {"prop-split", "cedar", "ideal"}) {
        auto policy = MakePolicyByName(name);
        Rng rng(static_cast<uint64_t>(*seed));
        SampleSet fraction;
        SampleSet recall;
        for (int q = 0; q < *queries; ++q) {
          QueryTruth truth = DrawLatencyTruth(tree, rng, static_cast<uint64_t>(q + 1));
          Rng realization_rng = rng.Fork();
          auto realization = SampleRealization(tree, truth, realization_rng);
          auto query = index.SampleQuery(3, rng);
          auto outcome = service.RunQuery(*policy, query, realization);
          fraction.Add(outcome.fraction_quality);
          recall.Add(outcome.recall);
        }
        table.AddRow({TablePrinter::FormatDouble(deadline, 0), name,
                      TablePrinter::FormatDouble(fraction.Mean(), 3),
                      TablePrinter::FormatDouble(recall.Mean(), 3)});
      }
    }
    table.Print(std::cout);
    std::cout << "Recall runs above the fraction metric: ranked merging keeps the globally\n"
                 "best documents even when some shards are cut off.\n";
  }

  {
    PrintBanner(std::cout,
                "Extension: approximate analytics — answer error vs the fraction metric");
    FactTableSpec spec;
    spec.rows = 200000;
    spec.num_groups = 16;
    spec.num_partitions = k1 * k2;
    spec.seed = 3;
    FactTable fact_table(spec);

    TablePrinter table(
        {"deadline", "policy", "fraction_quality", "mean_rel_error", "groups_answered"});
    for (double deadline : {40.0, 80.0, 160.0, 320.0}) {
      AnalyticsServiceConfig config;
      config.deadline = deadline;
      AnalyticsService service(&fact_table, tree, config);
      for (const char* name : {"prop-split", "cedar", "ideal"}) {
        auto policy = MakePolicyByName(name);
        Rng rng(static_cast<uint64_t>(*seed));
        SampleSet fraction;
        SampleSet error;
        SampleSet groups;
        for (int q = 0; q < *queries; ++q) {
          QueryTruth truth = DrawLatencyTruth(tree, rng, static_cast<uint64_t>(q + 1));
          Rng realization_rng = rng.Fork();
          auto realization = SampleRealization(tree, truth, realization_rng);
          auto outcome = service.RunQuery(*policy, realization);
          fraction.Add(outcome.fraction_quality);
          error.Add(outcome.mean_relative_error);
          groups.Add(outcome.groups_answered);
        }
        table.AddRow({TablePrinter::FormatDouble(deadline, 0), name,
                      TablePrinter::FormatDouble(fraction.Mean(), 3),
                      TablePrinter::FormatDouble(error.Mean(), 4),
                      TablePrinter::FormatDouble(groups.Mean(), 1)});
      }
    }
    table.Print(std::cout);
    std::cout << "A few percent of included partitions already answer every group with low\n"
                 "error — the approximate-analytics value proposition under deadlines.\n";
  }
  obs.Finish(std::cout);
  return 0;
}
