// Figure 13: Cedar with deeper aggregation trees. A 3-level tree (Facebook
// map bottom, reduce for both upper stages) is compared against the 2-level
// tree. Because the deeper tree needs larger deadlines for the same
// quality, the paper plots improvement against the *baseline's quality*
// rather than the deadline; we do the same by sweeping deadlines and
// reporting (baseline quality, improvement) pairs for both depths. The
// paper's finding: gains hold up and grow with depth, because Cedar
// near-optimally balances the deadline across more stages.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace {

void SweepDepth(const cedar::Workload& workload, const std::string& label,
                const std::vector<double>& deadlines, int queries, uint64_t seed,
                cedar::TablePrinter& table) {
  using namespace cedar;
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  for (double deadline : deadlines) {
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = queries;
    config.seed = seed;
    auto result = RunExperiment(workload, {&prop_split, &cedar}, config);
    double base = result.Outcome("prop-split").MeanQuality();
    double treat = result.Outcome("cedar").MeanQuality();
    table.AddRow({label, TablePrinter::FormatDouble(deadline, 0),
                  TablePrinter::FormatDouble(base, 3), TablePrinter::FormatDouble(treat, 3),
                  TablePrinter::FormatDouble(base > 0 ? 100.0 * (treat - base) / base : 0.0, 1)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 13: 2-level vs 3-level aggregation trees.");
  int64_t* queries = flags.AddInt("queries", 60, "queries per point");
  int64_t* fanout = flags.AddInt("fanout", 25, "fanout at every level");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  int k = static_cast<int>(*fanout);
  auto two_level = MakeFacebookWorkload(k, k);
  auto three_level = MakeFacebookThreeLevelWorkload(k, k, k);

  PrintBanner(std::cout,
              "Figure 13: improvement vs baseline quality, 2-level and 3-level trees "
              "(fanout " +
                  std::to_string(k) + " per level)");
  TablePrinter table({"levels", "deadline_s", "q(prop-split)", "q(cedar)", "impr(cedar)_%"});
  SweepDepth(two_level, "2", {500.0, 800.0, 1200.0, 1800.0, 2600.0, 3600.0},
             static_cast<int>(*queries), static_cast<uint64_t>(*seed), table);
  SweepDepth(three_level, "3", {800.0, 1200.0, 1800.0, 2600.0, 3600.0, 5000.0},
             static_cast<int>(*queries), static_cast<uint64_t>(*seed), table);
  table.Print(std::cout);
  std::cout << "\nRead rows at matched q(prop-split) to compare depths, as in the paper.\n";
  obs.Finish(std::cout);
  return 0;
}
