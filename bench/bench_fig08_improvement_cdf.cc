// Figure 8: CDF of per-query percentage improvement at deadline 1000 s,
// considering only queries with baseline quality > 5% (the paper's filter
// against unreasonably large ratios). The paper reports ~40% of queries
// improving by over 50%, and the bottom fifth seeing little gain.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/sample_set.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 8: per-query improvement CDF at D=1000s.");
  int64_t* queries = flags.AddInt("queries", 300, "number of queries");
  double* deadline = flags.AddDouble("deadline", 1000.0, "deadline (seconds)");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  int64_t* threads = flags.AddInt(
      "threads", 0, "experiment worker threads (0 = one per hardware thread)");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeFacebookWorkload(50, 50);
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;

  ExperimentConfig config;
  config.deadline = *deadline;
  config.num_queries = static_cast<int>(*queries);
  config.seed = static_cast<uint64_t>(*seed);
  config.threads = static_cast<int>(*threads);
  ExperimentResult result = RunExperiment(workload, {&prop_split, &cedar}, config);

  auto improvements = result.PerQueryImprovementPercent("prop-split", "cedar", 0.05);
  SampleSet samples(improvements);

  PrintBanner(std::cout, "Figure 8: CDF of per-query % improvement (D=" +
                             TablePrinter::FormatDouble(*deadline, 0) +
                             "s, baseline quality > 5%)");
  std::cout << "queries=" << *queries << " kept=" << samples.size() << "\n";

  TablePrinter table({"improvement_%", "cdf"});
  for (const auto& [value, fraction] : samples.CdfPoints(25)) {
    table.AddNumericRow({value, fraction}, 3);
  }
  table.Print(std::cout);

  TablePrinter summary({"statistic", "value"});
  summary.AddRow({"median_improvement_%", TablePrinter::FormatDouble(samples.Median(), 1)});
  summary.AddRow({"p90_improvement_%", TablePrinter::FormatDouble(samples.Quantile(0.9), 1)});
  summary.AddRow(
      {"fraction_improving_>50%",
       TablePrinter::FormatDouble(1.0 - samples.Ecdf(50.0), 3)});
  summary.AddRow(
      {"fraction_improving_<5%", TablePrinter::FormatDouble(samples.Ecdf(5.0), 3)});
  summary.Print(std::cout);
  obs.Finish(std::cout);
  return 0;
}
