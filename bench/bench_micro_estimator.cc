// Microbenchmarks for the learning machinery: order-statistic score tables
// (exact integration vs Blom), the pairwise estimator, and the end-to-end
// per-arrival cost of an online learner update — the inner loop of every
// aggregator in a deployment.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "src/core/online_learner.h"
#include "src/stats/estimators.h"
#include "src/stats/order_statistics.h"
#include "src/stats/rng.h"

namespace cedar {
namespace {

std::vector<double> SortedSamples(int k, uint64_t seed) {
  LogNormalDistribution dist(2.77, 0.84);
  Rng rng(seed);
  std::vector<double> samples(static_cast<size_t>(k));
  for (auto& s : samples) {
    s = dist.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  return samples;
}

void BM_ExactScoreTable(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NormalOrderScoreTable::ClearCacheForTesting();
    const auto& table = NormalOrderScoreTable::Get(k, OrderScoreMethod::kExact);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetLabel("k=" + std::to_string(k) + " (cold)");
}
BENCHMARK(BM_ExactScoreTable)->Arg(20)->Arg(50)->Arg(100);

void BM_BlomScoreTable(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NormalOrderScoreTable::ClearCacheForTesting();
    const auto& table = NormalOrderScoreTable::Get(k, OrderScoreMethod::kBlom);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetLabel("k=" + std::to_string(k) + " (cold)");
}
BENCHMARK(BM_BlomScoreTable)->Arg(20)->Arg(50)->Arg(100);

void BM_PairwiseEstimate(benchmark::State& state) {
  const int k = 50;
  int r = static_cast<int>(state.range(0));
  auto samples = SortedSamples(k, 7);
  samples.resize(static_cast<size_t>(r));
  NormalOrderScoreTable::Get(k);  // warm the cache
  for (auto _ : state) {
    auto estimate = EstimateLogNormalOrderStats(samples, k);
    benchmark::DoNotOptimize(estimate);
  }
  state.SetLabel("r=" + std::to_string(r) + " of 50");
}
BENCHMARK(BM_PairwiseEstimate)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_OnlineLearnerFullQuery(benchmark::State& state) {
  // Cost of feeding all 50 arrivals with a refit after each (Pseudocode 1's
  // per-arrival FitDistribution).
  const int k = 50;
  auto samples = SortedSamples(k, 11);
  NormalOrderScoreTable::Get(k);
  OnlineLearnerOptions options;
  options.min_samples = 2;
  for (auto _ : state) {
    OnlineLearner learner(k, options);
    for (double t : samples) {
      learner.Observe(t);
      benchmark::DoNotOptimize(learner.CurrentFit());
    }
  }
}
BENCHMARK(BM_OnlineLearnerFullQuery);

}  // namespace
}  // namespace cedar

BENCHMARK_MAIN();
