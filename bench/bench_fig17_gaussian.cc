// Figure 17: Cedar with Gaussian stage distributions — Normal(40, 80) ms at
// the bottom, Normal(40, 10) ms on top, fanout 50x50. The paper reports
// improvements of ~11.8-13.7% across deadlines with high absolute quality
// (normal distributions are not heavy-tailed). Cedar's learner fits the
// normal family here, demonstrating distribution-type agnosticism (§5.7).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 17: Gaussian stage distributions.");
  int64_t* queries = flags.AddInt("queries", 150, "queries per deadline");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  GaussianWorkload workload(50, 50);
  ProportionalSplitPolicy prop_split;
  CedarPolicyOptions options_normal;
  options_normal.learner.family = DistributionFamily::kNormal;
  CedarPolicy cedar(options_normal);
  OraclePolicy ideal;

  SweepOptions options;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();

  RunDeadlineSweep(std::cout,
                   "Figure 17: Normal(40, 80) bottom / Normal(40, 10) top, ms, fanout 50x50",
                   workload, {&prop_split, &cedar, &ideal},
                   {120.0, 150.0, 180.0, 210.0, 240.0, 280.0, 320.0, 360.0}, options);
  obs.Finish(std::cout);
  return 0;
}
