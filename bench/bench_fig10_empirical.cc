// Figure 10: Cedar's order-statistics learning vs Cedar-with-empirical
// parameter estimates, on the deployment (cluster-engine) setup. The paper
// reports Cedar's improvements 30-70% higher than the empirical variant's.
//
// Note (EXPERIMENTS.md): with per-arrival re-optimization the empirical
// estimator partially self-corrects as more outputs arrive, so our gap is
// directionally consistent but smaller than the paper's.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 10: order-statistics vs empirical estimates (deployment).");
  int64_t* queries = flags.AddInt("queries", 100, "queries per deadline");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeFacebookWorkload(20, 16);
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  CedarPolicyOptions empirical_options;
  empirical_options.learner.use_empirical_estimates = true;
  CedarPolicy cedar_empirical(empirical_options);

  ClusterSweepOptions options;
  options.cluster.machines = 80;
  options.cluster.slots_per_machine = 4;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();

  RunClusterDeadlineSweep(
      std::cout,
      "Figure 10: Cedar vs Cedar-with-empirical-estimates (320-slot engine, fanout 20x16)",
      workload, {&prop_split, &cedar_empirical, &cedar},
      {300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0}, options);
  obs.Finish(std::cout);
  return 0;
}
