// Figure 6: the case for optimizing the wait duration (§3).
//
// Ideal (a-priori per-query knowledge) vs the Proportional-split straw-man
// on the Facebook map/reduce workload, deadlines 500-3000 s, fanout 50x50.
// The paper reports ideal improving average response quality by over 100%
// at the tight end, and the baseline failing to reach 0.9 even at 3000 s.
// Also includes the other straw-men of §3 footnote 3 (equal split and
// deadline-minus-mean), which "fare much worse".

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 6: Ideal vs straw-man wait policies, Facebook workload.");
  int64_t* queries = flags.AddInt("queries", 100, "queries per deadline");
  int64_t* fanout = flags.AddInt("fanout", 50, "fanout at both levels");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload =
      MakeFacebookWorkload(static_cast<int>(*fanout), static_cast<int>(*fanout));
  ProportionalSplitPolicy prop_split;
  EqualSplitPolicy equal_split;
  MeanSubtractPolicy mean_subtract;
  OraclePolicy ideal;

  SweepOptions options;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();

  RunDeadlineSweep(std::cout,
                   "Figure 6: Ideal's improvement over straw-man wait policies "
                   "(Facebook map/reduce, fanout 50x50)",
                   workload, {&prop_split, &equal_split, &mean_subtract, &ideal},
                   {500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0}, options);
  obs.Finish(std::cout);
  return 0;
}
