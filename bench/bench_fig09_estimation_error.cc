// Figure 9: % error in the mu and sigma estimates of Facebook's
// distribution (log-normal mu=2.77, sigma=0.84) as a function of the number
// of completed processes (out of k=50), for Cedar's order-statistics
// estimator vs the plain empirical estimator. The paper reports Cedar's mu
// error dropping below 5% once ~10 processes completed, sigma error ~20%,
// and the empirical estimator staying heavily biased.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/stats/estimators.h"
#include "src/stats/rng.h"
#include "src/trace/calibration.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 9: estimation error vs number of completed processes.");
  int64_t* trials = flags.AddInt("trials", 2000, "Monte-Carlo trials");
  int64_t* fanout = flags.AddInt("fanout", 50, "total processes k");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  const double mu = kFacebookMapMu;
  const double sigma = kFacebookMapSigma;
  const int k = static_cast<int>(*fanout);
  LogNormalDistribution truth(mu, sigma);

  PrintBanner(std::cout, "Figure 9: % error in mu and sigma estimates vs #completed "
                         "(lognormal(2.77, 0.84), k=50)");
  std::cout << "trials=" << *trials << "\n";

  TablePrinter table({"completed", "cedar_mu_err_%", "empirical_mu_err_%", "cedar_sigma_err_%",
                      "empirical_sigma_err_%"});

  std::vector<int> checkpoints;
  for (int r = 2; r <= k; r += (r < 10 ? 1 : (r < 20 ? 2 : 5))) {
    checkpoints.push_back(r);
  }
  if (checkpoints.back() != k) {
    checkpoints.push_back(k);
  }

  std::vector<double> cedar_mu_err(checkpoints.size(), 0.0);
  std::vector<double> cedar_sigma_err(checkpoints.size(), 0.0);
  std::vector<double> emp_mu_err(checkpoints.size(), 0.0);
  std::vector<double> emp_sigma_err(checkpoints.size(), 0.0);

  Rng rng(static_cast<uint64_t>(*seed));
  for (int t = 0; t < *trials; ++t) {
    std::vector<double> samples(static_cast<size_t>(k));
    for (auto& s : samples) {
      s = truth.Sample(rng);
    }
    std::sort(samples.begin(), samples.end());
    for (size_t c = 0; c < checkpoints.size(); ++c) {
      std::vector<double> prefix(samples.begin(), samples.begin() + checkpoints[c]);
      auto cedar = EstimateLogNormalOrderStats(prefix, k);
      auto empirical = EstimateLogNormalEmpirical(prefix);
      if (cedar.has_value()) {
        cedar_mu_err[c] += std::fabs(cedar->location - mu) / mu;
        cedar_sigma_err[c] += std::fabs(cedar->scale - sigma) / sigma;
      }
      if (empirical.has_value()) {
        emp_mu_err[c] += std::fabs(empirical->location - mu) / mu;
        emp_sigma_err[c] += std::fabs(empirical->scale - sigma) / sigma;
      }
    }
  }

  auto n = static_cast<double>(*trials);
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    table.AddNumericRow({static_cast<double>(checkpoints[c]), 100.0 * cedar_mu_err[c] / n,
                         100.0 * emp_mu_err[c] / n, 100.0 * cedar_sigma_err[c] / n,
                         100.0 * emp_sigma_err[c] / n},
                        1);
  }
  table.Print(std::cout);
  obs.Finish(std::cout);
  return 0;
}
