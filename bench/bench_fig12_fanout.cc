// Figure 12: sensitivity of Cedar's gains to the aggregation-tree fanout,
// at deadline 1000 s on the Facebook workload.
//  (a) equal fanout k1 = k2 swept from 5 to 50 (gains shrink at small
//      fanouts — quadratically fewer processes, less variation — and
//      stabilize around 50% beyond fanout 25 in the paper);
//  (b) k2 fixed at 50, ratio k1/k2 swept from 0.1 to 1.0 (gains stabilize
//      beyond a ratio of 0.2).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace {

void SweepFanouts(std::ostream& out, const std::string& title,
                  const std::vector<std::pair<int, int>>& fanouts, double deadline, int queries,
                  uint64_t seed) {
  using namespace cedar;
  PrintBanner(out, title);
  TablePrinter table({"k1", "k2", "q(prop-split)", "q(cedar)", "impr(cedar)_%"});
  for (auto [k1, k2] : fanouts) {
    auto workload = MakeFacebookWorkload(k1, k2);
    ProportionalSplitPolicy prop_split;
    CedarPolicy cedar;
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = queries;
    config.seed = seed;
    auto result = RunExperiment(workload, {&prop_split, &cedar}, config);
    double base = result.Outcome("prop-split").MeanQuality();
    double treat = result.Outcome("cedar").MeanQuality();
    table.AddRow({TablePrinter::FormatDouble(k1, 0), TablePrinter::FormatDouble(k2, 0),
                  TablePrinter::FormatDouble(base, 3), TablePrinter::FormatDouble(treat, 3),
                  TablePrinter::FormatDouble(base > 0 ? 100.0 * (treat - base) / base : 0.0, 1)});
  }
  table.Print(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 12: effect of fanout on Cedar's gains (D=1000s).");
  int64_t* queries = flags.AddInt("queries", 100, "queries per configuration");
  double* deadline = flags.AddDouble("deadline", 1000.0, "deadline (seconds)");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  SweepFanouts(std::cout, "Figure 12a: equal fanout k1 = k2",
               {{5, 5}, {10, 10}, {15, 15}, {20, 20}, {25, 25}, {30, 30}, {40, 40}, {50, 50}},
               *deadline, static_cast<int>(*queries), static_cast<uint64_t>(*seed));

  SweepFanouts(std::cout, "Figure 12b: k2 = 50, ratio k1/k2 swept",
               {{5, 50}, {10, 50}, {15, 50}, {20, 50}, {25, 50}, {30, 50}, {40, 50}, {50, 50}},
               *deadline, static_cast<int>(*queries), static_cast<uint64_t>(*seed));
  obs.Finish(std::cout);
  return 0;
}
