// Figure 7: improvement in response quality, Facebook workload.
//
//  (a) Deployment: the paper's Spark cluster (80 machines x 4 slots = 320
//      process slots, fanout 20 x 16). Reproduced on the slot-scheduled
//      ClusterRuntime. Paper improvements: 10-197% across deadlines.
//  (b) Simulation: fanout 50 x 50 (2500 processes). Paper improvements:
//      11-100%, with Cedar closely matching Ideal.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 7: Cedar vs Proportional-split vs Ideal, Facebook workload.");
  int64_t* queries = flags.AddInt("queries", 100, "queries per deadline");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  // Engines pick the collector up through the global fallback; the sweep
  // helpers need no trace plumbing of their own.
  obs.Init();

  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  OraclePolicy ideal;
  std::vector<double> deadlines = {500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0};

  {
    // (a) Deployment analogue: 320 slots, fanout 20 x 16 = 320 processes.
    auto workload = MakeFacebookWorkload(20, 16);
    ClusterSweepOptions options;
    options.cluster.machines = 80;
    options.cluster.slots_per_machine = 4;
    options.num_queries = static_cast<int>(*queries);
    options.seed = static_cast<uint64_t>(*seed);
    options.baseline = prop_split.name();
    RunClusterDeadlineSweep(std::cout,
                            "Figure 7a (deployment): 320-slot cluster engine, fanout 20x16",
                            workload, {&prop_split, &cedar, &ideal}, deadlines, options);
  }
  {
    // (b) Simulation: fanout 50 x 50.
    auto workload = MakeFacebookWorkload(50, 50);
    SweepOptions options;
    options.num_queries = static_cast<int>(*queries);
    options.seed = static_cast<uint64_t>(*seed);
    options.baseline = prop_split.name();
    RunDeadlineSweep(std::cout, "Figure 7b (simulation): fanout 50x50 (2500 processes)",
                     workload, {&prop_split, &cedar, &ideal}, deadlines, options);
  }
  obs.Finish(std::cout);
  return 0;
}
