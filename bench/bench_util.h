// Shared plumbing for the figure-reproduction harnesses: deadline sweeps
// over a workload under several policies, printed as aligned tables with
// improvement columns, for both the analytic simulator and the cluster
// engine.

#ifndef CEDAR_BENCH_BENCH_UTIL_H_
#define CEDAR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/experiment.h"
#include "src/core/policy.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {

struct SweepOptions {
  int num_queries = 100;
  uint64_t seed = 42;
  // Worker threads per experiment (<= 0: one per hardware thread). Results
  // are thread-count independent; this only changes wall-clock time.
  int threads = 0;
  // Name of the policy used as the improvement baseline ("" = first).
  std::string baseline;
  TreeSimulationOptions sim;
};

// Runs |workload| under |policies| for every deadline and prints one row per
// deadline: avg quality per policy plus percentage improvement of each
// non-baseline policy over the baseline. Policies are borrowed, never owned
// (same rule as RunExperiment).
void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<const WaitPolicy*>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options);
void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options);
inline void RunDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             std::initializer_list<const WaitPolicy*> policies,
                             const std::vector<double>& deadlines, const SweepOptions& options) {
  RunDeadlineSweep(out, title, workload, std::vector<const WaitPolicy*>(policies), deadlines,
                   options);
}

struct ClusterSweepOptions {
  ClusterSpec cluster;
  int num_queries = 100;
  uint64_t seed = 42;
  // Same contract as SweepOptions::threads.
  int threads = 0;
  std::string baseline;
  ClusterRunOptions run;
};

// Same, on the slot-scheduled cluster engine (the deployment substitute).
void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<const WaitPolicy*>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options);
void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options);
inline void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                                    const Workload& workload,
                                    std::initializer_list<const WaitPolicy*> policies,
                                    const std::vector<double>& deadlines,
                                    const ClusterSweepOptions& options) {
  RunClusterDeadlineSweep(out, title, workload, std::vector<const WaitPolicy*>(policies),
                          deadlines, options);
}

}  // namespace cedar

#endif  // CEDAR_BENCH_BENCH_UTIL_H_
