// Shared plumbing for the figure-reproduction harnesses: deadline sweeps
// over a workload under several policies, printed as aligned tables with
// improvement columns, for both the analytic simulator and the cluster
// engine.

#ifndef CEDAR_BENCH_BENCH_UTIL_H_
#define CEDAR_BENCH_BENCH_UTIL_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/cluster/experiment.h"
#include "src/core/policy.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {

struct SweepOptions {
  int num_queries = 100;
  uint64_t seed = 42;
  // Name of the policy used as the improvement baseline ("" = first).
  std::string baseline;
  TreeSimulationOptions sim;
};

// Runs |workload| under |policies| for every deadline and prints one row per
// deadline: avg quality per policy plus percentage improvement of each
// non-baseline policy over the baseline.
void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<const WaitPolicy*>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options);

struct ClusterSweepOptions {
  ClusterSpec cluster;
  int num_queries = 100;
  uint64_t seed = 42;
  std::string baseline;
  ClusterRunOptions run;
};

// Same, on the slot-scheduled cluster engine (the deployment substitute).
void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<const WaitPolicy*>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options);

}  // namespace cedar

#endif  // CEDAR_BENCH_BENCH_UTIL_H_
