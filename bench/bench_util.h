// Shared plumbing for the figure-reproduction harnesses: deadline sweeps
// over a workload under several policies, printed as aligned tables with
// improvement columns, for both the analytic simulator and the cluster
// engine.

#ifndef CEDAR_BENCH_BENCH_UTIL_H_
#define CEDAR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/experiment.h"
#include "src/core/policy.h"
#include "src/core/wait_table_store.h"
#include "src/obs/obs_flags.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {

// One-call observability wiring for the figure harnesses: registers the
// shared --metrics/--metrics-report/--trace-out flags at construction, then
//
//   BenchObservability obs(flags);
//   flags.Parse(argc, argv);
//   obs.Init();
//   ... workload ...
//   obs.Finish(std::cout);
//
// keeping bench_util the single flag-parsing path for every bench binary.
class BenchObservability {
 public:
  explicit BenchObservability(FlagSet& flags);

  // Applies the parsed flags: metrics/profiling switches plus the global
  // trace collector when --trace-out was given. Call once, after Parse().
  void Init();

  // Writes the requested outputs (trace file, metrics report to |out|) and
  // uninstalls the collector.
  void Finish(std::ostream& out);

 private:
  ObservabilityFlags flags_;
  ObservabilityScope scope_;
};

struct SweepOptions {
  int num_queries = 100;
  uint64_t seed = 42;
  // Worker threads per experiment (<= 0: one per hardware thread). Results
  // are thread-count independent; this only changes wall-clock time.
  int threads = 0;
  // Name of the policy used as the improvement baseline ("" = first).
  std::string baseline;
  TreeSimulationOptions sim;
  // Sweep-scoped wait-table store (borrowed, may be null = policies use the
  // process Global()). When set, the engine also lends the sweep's worker
  // pool to it so single-flight builds fill their grids in parallel. Results
  // are bit-identical with any store; only the amortization scope changes.
  WaitTableStore* wait_table_store = nullptr;
};

// Runs |workload| under |policies| for every deadline and prints one row per
// deadline: avg quality per policy plus percentage improvement of each
// non-baseline policy over the baseline. Policies are borrowed, never owned
// (same rule as RunExperiment).
void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<const WaitPolicy*>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options);
void RunDeadlineSweep(std::ostream& out, const std::string& title, const Workload& workload,
                      const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                      const std::vector<double>& deadlines, const SweepOptions& options);
inline void RunDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             std::initializer_list<const WaitPolicy*> policies,
                             const std::vector<double>& deadlines, const SweepOptions& options) {
  RunDeadlineSweep(out, title, workload, std::vector<const WaitPolicy*>(policies), deadlines,
                   options);
}

struct ClusterSweepOptions {
  ClusterSpec cluster;
  int num_queries = 100;
  uint64_t seed = 42;
  // Same contract as SweepOptions::threads.
  int threads = 0;
  std::string baseline;
  ClusterRunOptions run;
  // Same contract as SweepOptions::wait_table_store.
  WaitTableStore* wait_table_store = nullptr;
};

// Same, on the slot-scheduled cluster engine (the deployment substitute).
void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<const WaitPolicy*>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options);
void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                             const Workload& workload,
                             const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                             const std::vector<double>& deadlines,
                             const ClusterSweepOptions& options);
inline void RunClusterDeadlineSweep(std::ostream& out, const std::string& title,
                                    const Workload& workload,
                                    std::initializer_list<const WaitPolicy*> policies,
                                    const std::vector<double>& deadlines,
                                    const ClusterSweepOptions& options) {
  RunClusterDeadlineSweep(out, title, workload, std::vector<const WaitPolicy*>(policies),
                          deadlines, options);
}

}  // namespace cedar

#endif  // CEDAR_BENCH_BENCH_UTIL_H_
