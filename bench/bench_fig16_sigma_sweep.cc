// Figure 16: same distribution at both stages, sweeping the sigma parameter
// of X1 (the paper's x-axes): (a) Bing (mu=5.9, sigma2=1.25, us), sigma1 in
// 2.10-2.40; (b) Google (mu=2.94, sigma2=0.55, ms), sigma1 in 1.40-1.70;
// (c) Facebook (mu=2.77, sigma2=0.84, s), sigma1 in 2.00-2.25. Gains grow
// with the variability of the bottom stage, and Cedar tracks Ideal.
//
// The paper does not state the deadlines used; we pick, per trace, a
// deadline that puts the baseline in the same mid-quality regime the
// paper's improvement magnitudes imply.

#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace {

void SweepSigma(std::ostream& out, const std::string& title,
                const std::function<cedar::MetaLogNormalWorkload(double)>& make_workload,
                const std::vector<double>& sigmas, double deadline, const std::string& unit,
                int queries, uint64_t seed) {
  using namespace cedar;
  PrintBanner(out, title + " (deadline " + TablePrinter::FormatDouble(deadline, 0) + " " +
                       unit + ")");
  TablePrinter table(
      {"sigma1", "q(prop-split)", "q(cedar)", "q(ideal)", "impr(cedar)_%", "impr(ideal)_%"});
  for (double sigma1 : sigmas) {
    auto workload = make_workload(sigma1);
    ProportionalSplitPolicy prop_split;
    CedarPolicy cedar;
    OraclePolicy ideal;
    ExperimentConfig config;
    config.deadline = deadline;
    config.num_queries = queries;
    config.seed = seed;
    auto result = RunExperiment(workload, {&prop_split, &cedar, &ideal}, config);
    double base = result.Outcome("prop-split").MeanQuality();
    double cq = result.Outcome("cedar").MeanQuality();
    double iq = result.Outcome("ideal").MeanQuality();
    table.AddRow({TablePrinter::FormatDouble(sigma1, 2), TablePrinter::FormatDouble(base, 3),
                  TablePrinter::FormatDouble(cq, 3), TablePrinter::FormatDouble(iq, 3),
                  TablePrinter::FormatDouble(base > 0 ? 100.0 * (cq - base) / base : 0.0, 1),
                  TablePrinter::FormatDouble(base > 0 ? 100.0 * (iq - base) / base : 0.0, 1)});
  }
  table.Print(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 16: gains vs sigma of X1 for Bing/Google/Facebook distributions.");
  int64_t* queries = flags.AddInt("queries", 100, "queries per point");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  int n = static_cast<int>(*queries);
  auto s = static_cast<uint64_t>(*seed);

  SweepSigma(std::cout, "Figure 16a: Bing-Bing (mu=5.9, sigma2=1.25, microseconds)",
             [](double sigma1) { return MakeBingSigmaWorkload(sigma1); },
             {2.10, 2.15, 2.20, 2.25, 2.30, 2.35, 2.40}, 4000.0, "us", n, s);

  SweepSigma(std::cout, "Figure 16b: Google-Google (mu=2.94, sigma2=0.55, milliseconds)",
             [](double sigma1) { return MakeGoogleSigmaWorkload(sigma1); },
             {1.40, 1.45, 1.50, 1.55, 1.60, 1.65, 1.70}, 150.0, "ms", n, s);

  SweepSigma(std::cout, "Figure 16c: Facebook-Facebook (mu=2.77, sigma2=0.84, seconds)",
             [](double sigma1) { return MakeFacebookSigmaWorkload(sigma1); },
             {2.00, 2.05, 2.10, 2.15, 2.20, 2.25}, 250.0, "s", n, s);
  obs.Finish(std::cout);
  return 0;
}
