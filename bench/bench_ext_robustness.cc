// Extension benches for Cedar's robustness (beyond the paper's figures):
//  * model mismatch: bimodal (body + straggler mode) within-query durations
//    while the learner fits a log-normal — the §4.2.1 claim that imperfect
//    extreme-tail fits do not hurt;
//  * weighted outputs: process outputs carry relevance weights (Appendix A
//    extension) drawn from a heavy-tailed distribution.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/sim/realization.h"
#include "src/trace/workloads.h"

namespace {

using namespace cedar;

// A weighted variant of the experiment loop: same paired-realization replay
// but with per-leaf weights (quality = weighted fraction).
void RunWeighted(std::ostream& out, const Workload& workload, double deadline, int queries,
                 uint64_t seed) {
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  OraclePolicy ideal;
  std::vector<const WaitPolicy*> policies = {&prop_split, &cedar, &ideal};

  TreeSpec offline_tree = workload.OfflineTree();
  TreeSimulation simulation(offline_tree, deadline);
  // Output relevance: heavy-tailed — a few outputs dominate the response.
  ParetoDistribution weight_dist(1.0, 1.5);

  std::vector<SampleSet> qualities(policies.size());
  Rng rng(seed);
  uint64_t sequence = (seed << 20) + 1;
  for (int q = 0; q < queries; ++q) {
    QueryTruth truth = workload.DrawQuery(rng);
    truth.sequence = sequence++;
    Rng realization_rng = rng.Fork();
    QueryRealization realization =
        SampleWeightedRealization(offline_tree, truth, weight_dist, realization_rng);
    for (size_t p = 0; p < policies.size(); ++p) {
      qualities[p].Add(simulation.RunQuery(*policies[p], realization).quality);
    }
  }

  TablePrinter table({"policy", "weighted_quality", "impr_%"});
  double base = qualities[0].Mean();
  for (size_t p = 0; p < policies.size(); ++p) {
    table.AddRow({policies[p]->name(), TablePrinter::FormatDouble(qualities[p].Mean(), 3),
                  TablePrinter::FormatDouble(100.0 * (qualities[p].Mean() - base) / base, 1)});
  }
  table.Print(out);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("Robustness extension benches: model mismatch and weighted outputs.");
  int64_t* queries = flags.AddInt("queries", 80, "queries per configuration");
  int64_t* seed = flags.AddInt("seed", 42, "rng seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  {
    PrintBanner(std::cout,
                "Extension: bimodal within-query durations (learner still fits log-normal)");
    TablePrinter table({"straggler_fraction", "deadline_s", "q(prop-split)", "q(cedar)",
                        "q(ideal)", "impr(cedar)_%"});
    for (double fraction : {0.05, 0.10, 0.20}) {
      StragglerWorkload::Options options;
      options.straggler_fraction = fraction;
      StragglerWorkload workload(options);
      for (double deadline : {300.0, 600.0}) {
        ProportionalSplitPolicy prop_split;
        CedarPolicy cedar;
        OraclePolicy ideal;
        ExperimentConfig config;
        config.deadline = deadline;
        config.num_queries = static_cast<int>(*queries);
        config.seed = static_cast<uint64_t>(*seed);
        auto result = RunExperiment(workload, {&prop_split, &cedar, &ideal}, config);
        double base = result.Outcome("prop-split").MeanQuality();
        double treat = result.Outcome("cedar").MeanQuality();
        table.AddRow(
            {TablePrinter::FormatDouble(fraction, 2), TablePrinter::FormatDouble(deadline, 0),
             TablePrinter::FormatDouble(base, 3), TablePrinter::FormatDouble(treat, 3),
             TablePrinter::FormatDouble(result.Outcome("ideal").MeanQuality(), 3),
             TablePrinter::FormatDouble(base > 0 ? 100.0 * (treat - base) / base : 0.0, 1)});
      }
    }
    table.Print(std::cout);
    std::cout << "Note: 'ideal' knows the true bimodal distribution; Cedar's log-normal fit\n"
                 "of the body tracks it closely — the §4.2.1 robustness claim.\n";
  }

  {
    PrintBanner(std::cout, "Extension: weighted process outputs (Appendix A), Facebook "
                           "workload, D=1000s, Pareto(1, 1.5) weights");
    RunWeighted(std::cout, MakeFacebookWorkload(50, 50), 1000.0, static_cast<int>(*queries),
                static_cast<uint64_t>(*seed));
  }
  obs.Finish(std::cout);
  return 0;
}
