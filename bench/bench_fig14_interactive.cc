// Figure 14: interactive workload — Facebook's map distribution expressed
// in milliseconds at the bottom, Google's distribution on top, deadlines
// 140-170 ms (quoted production search deadlines). The paper reports Cedar
// improvements of 36-72% over Proportional-split, nearly matching Ideal.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 14: interactive workload (FB map in ms + Google upper).");
  int64_t* queries = flags.AddInt("queries", 150, "queries per deadline");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto workload = MakeInteractiveWorkload(50, 50);
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  OraclePolicy ideal;

  SweepOptions options;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();

  RunDeadlineSweep(std::cout,
                   "Figure 14: interactive workload, deadlines 140-170 ms (fanout 50x50)",
                   workload, {&prop_split, &cedar, &ideal},
                   {140.0, 145.0, 150.0, 155.0, 160.0, 165.0, 170.0}, options);
  obs.Finish(std::cout);
  return 0;
}
