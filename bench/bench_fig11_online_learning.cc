// Figure 11: the importance of online learning under load fluctuation.
//
// Offline statistics are learned at low load (lognormal(2.0, 0.84) bottom
// stage); the actual load then rises (lognormal(mu_high, 0.84)). Policies:
//   * prop-split      — stale global means (degrades sharply),
//   * cedar-offline   — the stale CalculateWait plan ("Cedar without online
//                       learning"),
//   * cedar           — learns the shifted distribution online per query,
//   * ideal           — knows the shifted distribution a priori.
//
// Our EXPERIMENTS.md documents that under faithful early-send semantics the
// stale CalculateWait plan is more robust than the paper's Figure 11
// suggests (its optimal wait sits deep in the believed tail); the stale
// straw-man shows the full degradation.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/common/flags.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace cedar;
  FlagSet flags("Figure 11: online learning under a load shift.");
  int64_t* queries = flags.AddInt("queries", 100, "queries per deadline");
  double* mu_low = flags.AddDouble("mu_low", 2.0, "bottom-stage mu before the shift");
  double* mu_high = flags.AddDouble("mu_high", 4.2, "bottom-stage mu after the shift");
  int64_t* seed = flags.AddInt("seed", 42, "workload seed");
  BenchObservability obs(flags);
  flags.Parse(argc, argv);
  obs.Init();

  auto make_stationary = [&](const std::string& name, double mu) {
    return std::make_shared<StationaryWorkload>(
        name, "s",
        TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(mu, 0.84), 20,
                           std::make_shared<LogNormalDistribution>(3.25, 0.95), 16));
  };
  auto low_load = make_stationary("low-load", *mu_low);
  auto high_load = make_stationary("high-load", *mu_high);
  MismatchedOfflineWorkload shifted(high_load, low_load->OfflineTree());

  ProportionalSplitPolicy prop_split;
  OfflineOptimalPolicy cedar_offline;
  CedarPolicy cedar;
  OraclePolicy ideal;

  SweepOptions options;
  options.num_queries = static_cast<int>(*queries);
  options.seed = static_cast<uint64_t>(*seed);
  options.baseline = prop_split.name();
  std::vector<double> deadlines = {200.0, 300.0, 400.0, 600.0, 800.0};

  RunDeadlineSweep(std::cout,
                   "Figure 11 (before): all policies on the low-load distribution itself",
                   *low_load, {&prop_split, &cedar_offline, &cedar, &ideal}, deadlines, options);

  RunDeadlineSweep(std::cout,
                   "Figure 11 (after): load shifted up, offline stats stale "
                   "(mu " +
                       TablePrinter::FormatDouble(*mu_low, 1) + " -> " +
                       TablePrinter::FormatDouble(*mu_high, 1) + ")",
                   shifted, {&prop_split, &cedar_offline, &cedar, &ideal}, deadlines, options);
  obs.Finish(std::cout);
  return 0;
}
