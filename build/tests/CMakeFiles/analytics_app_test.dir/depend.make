# Empty dependencies file for analytics_app_test.
# This may be replaced when dependencies are built.
