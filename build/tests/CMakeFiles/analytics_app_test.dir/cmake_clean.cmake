file(REMOVE_RECURSE
  "CMakeFiles/analytics_app_test.dir/analytics_app_test.cc.o"
  "CMakeFiles/analytics_app_test.dir/analytics_app_test.cc.o.d"
  "analytics_app_test"
  "analytics_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
