file(REMOVE_RECURSE
  "CMakeFiles/aggregator_node_test.dir/aggregator_node_test.cc.o"
  "CMakeFiles/aggregator_node_test.dir/aggregator_node_test.cc.o.d"
  "aggregator_node_test"
  "aggregator_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
