# Empty dependencies file for aggregator_node_test.
# This may be replaced when dependencies are built.
