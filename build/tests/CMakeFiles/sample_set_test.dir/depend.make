# Empty dependencies file for sample_set_test.
# This may be replaced when dependencies are built.
