file(REMOVE_RECURSE
  "CMakeFiles/sample_set_test.dir/sample_set_test.cc.o"
  "CMakeFiles/sample_set_test.dir/sample_set_test.cc.o.d"
  "sample_set_test"
  "sample_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
