file(REMOVE_RECURSE
  "CMakeFiles/tree_simulation_test.dir/tree_simulation_test.cc.o"
  "CMakeFiles/tree_simulation_test.dir/tree_simulation_test.cc.o.d"
  "tree_simulation_test"
  "tree_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
