# Empty dependencies file for tree_simulation_test.
# This may be replaced when dependencies are built.
