# Empty dependencies file for parallel_experiment_test.
# This may be replaced when dependencies are built.
