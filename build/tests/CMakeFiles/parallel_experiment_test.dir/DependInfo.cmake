
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_experiment_test.cc" "tests/CMakeFiles/parallel_experiment_test.dir/parallel_experiment_test.cc.o" "gcc" "tests/CMakeFiles/parallel_experiment_test.dir/parallel_experiment_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cedar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cedar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cedar_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cedar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cedar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cedar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cedar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
