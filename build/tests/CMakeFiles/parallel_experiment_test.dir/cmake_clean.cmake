file(REMOVE_RECURSE
  "CMakeFiles/parallel_experiment_test.dir/parallel_experiment_test.cc.o"
  "CMakeFiles/parallel_experiment_test.dir/parallel_experiment_test.cc.o.d"
  "parallel_experiment_test"
  "parallel_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
