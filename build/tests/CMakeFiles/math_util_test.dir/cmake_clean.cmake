file(REMOVE_RECURSE
  "CMakeFiles/math_util_test.dir/math_util_test.cc.o"
  "CMakeFiles/math_util_test.dir/math_util_test.cc.o.d"
  "math_util_test"
  "math_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
