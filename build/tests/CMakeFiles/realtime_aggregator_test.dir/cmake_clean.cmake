file(REMOVE_RECURSE
  "CMakeFiles/realtime_aggregator_test.dir/realtime_aggregator_test.cc.o"
  "CMakeFiles/realtime_aggregator_test.dir/realtime_aggregator_test.cc.o.d"
  "realtime_aggregator_test"
  "realtime_aggregator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
