# Empty dependencies file for realtime_aggregator_test.
# This may be replaced when dependencies are built.
