file(REMOVE_RECURSE
  "CMakeFiles/fitting_test.dir/fitting_test.cc.o"
  "CMakeFiles/fitting_test.dir/fitting_test.cc.o.d"
  "fitting_test"
  "fitting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
