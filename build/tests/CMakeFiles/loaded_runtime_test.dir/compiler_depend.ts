# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for loaded_runtime_test.
