file(REMOVE_RECURSE
  "CMakeFiles/loaded_runtime_test.dir/loaded_runtime_test.cc.o"
  "CMakeFiles/loaded_runtime_test.dir/loaded_runtime_test.cc.o.d"
  "loaded_runtime_test"
  "loaded_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaded_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
