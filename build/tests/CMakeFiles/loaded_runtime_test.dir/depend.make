# Empty dependencies file for loaded_runtime_test.
# This may be replaced when dependencies are built.
