# Empty dependencies file for wait_optimizer_test.
# This may be replaced when dependencies are built.
