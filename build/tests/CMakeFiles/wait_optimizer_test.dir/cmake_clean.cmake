file(REMOVE_RECURSE
  "CMakeFiles/wait_optimizer_test.dir/wait_optimizer_test.cc.o"
  "CMakeFiles/wait_optimizer_test.dir/wait_optimizer_test.cc.o.d"
  "wait_optimizer_test"
  "wait_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
