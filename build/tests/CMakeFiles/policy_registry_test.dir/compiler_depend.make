# Empty compiler generated dependencies file for policy_registry_test.
# This may be replaced when dependencies are built.
