file(REMOVE_RECURSE
  "CMakeFiles/policy_registry_test.dir/policy_registry_test.cc.o"
  "CMakeFiles/policy_registry_test.dir/policy_registry_test.cc.o.d"
  "policy_registry_test"
  "policy_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
