file(REMOVE_RECURSE
  "CMakeFiles/online_learner_test.dir/online_learner_test.cc.o"
  "CMakeFiles/online_learner_test.dir/online_learner_test.cc.o.d"
  "online_learner_test"
  "online_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
