# Empty dependencies file for online_learner_test.
# This may be replaced when dependencies are built.
