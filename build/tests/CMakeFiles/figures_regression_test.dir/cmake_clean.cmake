file(REMOVE_RECURSE
  "CMakeFiles/figures_regression_test.dir/figures_regression_test.cc.o"
  "CMakeFiles/figures_regression_test.dir/figures_regression_test.cc.o.d"
  "figures_regression_test"
  "figures_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
