# Empty dependencies file for figures_regression_test.
# This may be replaced when dependencies are built.
