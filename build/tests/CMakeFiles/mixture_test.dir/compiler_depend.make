# Empty compiler generated dependencies file for mixture_test.
# This may be replaced when dependencies are built.
