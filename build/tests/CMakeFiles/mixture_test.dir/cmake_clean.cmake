file(REMOVE_RECURSE
  "CMakeFiles/mixture_test.dir/mixture_test.cc.o"
  "CMakeFiles/mixture_test.dir/mixture_test.cc.o.d"
  "mixture_test"
  "mixture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
