file(REMOVE_RECURSE
  "CMakeFiles/normal_math_test.dir/normal_math_test.cc.o"
  "CMakeFiles/normal_math_test.dir/normal_math_test.cc.o.d"
  "normal_math_test"
  "normal_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normal_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
