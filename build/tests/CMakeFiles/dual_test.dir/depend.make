# Empty dependencies file for dual_test.
# This may be replaced when dependencies are built.
