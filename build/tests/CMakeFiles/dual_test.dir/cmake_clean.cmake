file(REMOVE_RECURSE
  "CMakeFiles/dual_test.dir/dual_test.cc.o"
  "CMakeFiles/dual_test.dir/dual_test.cc.o.d"
  "dual_test"
  "dual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
