file(REMOVE_RECURSE
  "CMakeFiles/tracing_policy_test.dir/tracing_policy_test.cc.o"
  "CMakeFiles/tracing_policy_test.dir/tracing_policy_test.cc.o.d"
  "tracing_policy_test"
  "tracing_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
