# Empty compiler generated dependencies file for tracing_policy_test.
# This may be replaced when dependencies are built.
