file(REMOVE_RECURSE
  "CMakeFiles/order_statistics_test.dir/order_statistics_test.cc.o"
  "CMakeFiles/order_statistics_test.dir/order_statistics_test.cc.o.d"
  "order_statistics_test"
  "order_statistics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
