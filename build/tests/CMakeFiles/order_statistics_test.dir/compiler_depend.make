# Empty compiler generated dependencies file for order_statistics_test.
# This may be replaced when dependencies are built.
