# Empty dependencies file for wait_table_test.
# This may be replaced when dependencies are built.
