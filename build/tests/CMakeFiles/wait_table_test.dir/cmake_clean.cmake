file(REMOVE_RECURSE
  "CMakeFiles/wait_table_test.dir/wait_table_test.cc.o"
  "CMakeFiles/wait_table_test.dir/wait_table_test.cc.o.d"
  "wait_table_test"
  "wait_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
