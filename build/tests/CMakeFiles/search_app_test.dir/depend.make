# Empty dependencies file for search_app_test.
# This may be replaced when dependencies are built.
