file(REMOVE_RECURSE
  "CMakeFiles/search_app_test.dir/search_app_test.cc.o"
  "CMakeFiles/search_app_test.dir/search_app_test.cc.o.d"
  "search_app_test"
  "search_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
