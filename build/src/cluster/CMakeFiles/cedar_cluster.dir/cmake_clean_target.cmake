file(REMOVE_RECURSE
  "libcedar_cluster.a"
)
