file(REMOVE_RECURSE
  "CMakeFiles/cedar_cluster.dir/cluster_runtime.cc.o"
  "CMakeFiles/cedar_cluster.dir/cluster_runtime.cc.o.d"
  "CMakeFiles/cedar_cluster.dir/experiment.cc.o"
  "CMakeFiles/cedar_cluster.dir/experiment.cc.o.d"
  "CMakeFiles/cedar_cluster.dir/loaded_runtime.cc.o"
  "CMakeFiles/cedar_cluster.dir/loaded_runtime.cc.o.d"
  "libcedar_cluster.a"
  "libcedar_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
