# Empty compiler generated dependencies file for cedar_cluster.
# This may be replaced when dependencies are built.
