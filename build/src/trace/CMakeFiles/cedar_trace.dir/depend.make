# Empty dependencies file for cedar_trace.
# This may be replaced when dependencies are built.
