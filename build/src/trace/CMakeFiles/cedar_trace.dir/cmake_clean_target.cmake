file(REMOVE_RECURSE
  "libcedar_trace.a"
)
