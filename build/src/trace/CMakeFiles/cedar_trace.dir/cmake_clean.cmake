file(REMOVE_RECURSE
  "CMakeFiles/cedar_trace.dir/calibration.cc.o"
  "CMakeFiles/cedar_trace.dir/calibration.cc.o.d"
  "CMakeFiles/cedar_trace.dir/trace_io.cc.o"
  "CMakeFiles/cedar_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/cedar_trace.dir/workloads.cc.o"
  "CMakeFiles/cedar_trace.dir/workloads.cc.o.d"
  "libcedar_trace.a"
  "libcedar_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
