file(REMOVE_RECURSE
  "CMakeFiles/cedar_sim.dir/event_queue.cc.o"
  "CMakeFiles/cedar_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cedar_sim.dir/experiment.cc.o"
  "CMakeFiles/cedar_sim.dir/experiment.cc.o.d"
  "CMakeFiles/cedar_sim.dir/realization.cc.o"
  "CMakeFiles/cedar_sim.dir/realization.cc.o.d"
  "CMakeFiles/cedar_sim.dir/tree_simulation.cc.o"
  "CMakeFiles/cedar_sim.dir/tree_simulation.cc.o.d"
  "libcedar_sim.a"
  "libcedar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
