
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/cedar_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/cedar_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/cedar_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/cedar_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/realization.cc" "src/sim/CMakeFiles/cedar_sim.dir/realization.cc.o" "gcc" "src/sim/CMakeFiles/cedar_sim.dir/realization.cc.o.d"
  "/root/repo/src/sim/tree_simulation.cc" "src/sim/CMakeFiles/cedar_sim.dir/tree_simulation.cc.o" "gcc" "src/sim/CMakeFiles/cedar_sim.dir/tree_simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cedar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cedar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cedar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
