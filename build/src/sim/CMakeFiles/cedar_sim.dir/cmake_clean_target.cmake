file(REMOVE_RECURSE
  "libcedar_sim.a"
)
