# Empty dependencies file for cedar_sim.
# This may be replaced when dependencies are built.
