file(REMOVE_RECURSE
  "CMakeFiles/cedar_apps.dir/analytics_service.cc.o"
  "CMakeFiles/cedar_apps.dir/analytics_service.cc.o.d"
  "CMakeFiles/cedar_apps.dir/search_index.cc.o"
  "CMakeFiles/cedar_apps.dir/search_index.cc.o.d"
  "CMakeFiles/cedar_apps.dir/search_service.cc.o"
  "CMakeFiles/cedar_apps.dir/search_service.cc.o.d"
  "libcedar_apps.a"
  "libcedar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
