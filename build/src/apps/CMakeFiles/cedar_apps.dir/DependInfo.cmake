
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/analytics_service.cc" "src/apps/CMakeFiles/cedar_apps.dir/analytics_service.cc.o" "gcc" "src/apps/CMakeFiles/cedar_apps.dir/analytics_service.cc.o.d"
  "/root/repo/src/apps/search_index.cc" "src/apps/CMakeFiles/cedar_apps.dir/search_index.cc.o" "gcc" "src/apps/CMakeFiles/cedar_apps.dir/search_index.cc.o.d"
  "/root/repo/src/apps/search_service.cc" "src/apps/CMakeFiles/cedar_apps.dir/search_service.cc.o" "gcc" "src/apps/CMakeFiles/cedar_apps.dir/search_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cedar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cedar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cedar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cedar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
