# Empty dependencies file for cedar_apps.
# This may be replaced when dependencies are built.
