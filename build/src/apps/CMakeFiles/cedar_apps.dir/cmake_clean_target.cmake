file(REMOVE_RECURSE
  "libcedar_apps.a"
)
