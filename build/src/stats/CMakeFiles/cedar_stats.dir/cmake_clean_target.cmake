file(REMOVE_RECURSE
  "libcedar_stats.a"
)
