
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distribution.cc" "src/stats/CMakeFiles/cedar_stats.dir/distribution.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/distribution.cc.o.d"
  "/root/repo/src/stats/estimators.cc" "src/stats/CMakeFiles/cedar_stats.dir/estimators.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/estimators.cc.o.d"
  "/root/repo/src/stats/fitting.cc" "src/stats/CMakeFiles/cedar_stats.dir/fitting.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/fitting.cc.o.d"
  "/root/repo/src/stats/mixture.cc" "src/stats/CMakeFiles/cedar_stats.dir/mixture.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/mixture.cc.o.d"
  "/root/repo/src/stats/normal_math.cc" "src/stats/CMakeFiles/cedar_stats.dir/normal_math.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/normal_math.cc.o.d"
  "/root/repo/src/stats/order_statistics.cc" "src/stats/CMakeFiles/cedar_stats.dir/order_statistics.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/order_statistics.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/cedar_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/cedar_stats.dir/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cedar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
