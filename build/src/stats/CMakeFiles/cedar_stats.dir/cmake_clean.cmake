file(REMOVE_RECURSE
  "CMakeFiles/cedar_stats.dir/distribution.cc.o"
  "CMakeFiles/cedar_stats.dir/distribution.cc.o.d"
  "CMakeFiles/cedar_stats.dir/estimators.cc.o"
  "CMakeFiles/cedar_stats.dir/estimators.cc.o.d"
  "CMakeFiles/cedar_stats.dir/fitting.cc.o"
  "CMakeFiles/cedar_stats.dir/fitting.cc.o.d"
  "CMakeFiles/cedar_stats.dir/mixture.cc.o"
  "CMakeFiles/cedar_stats.dir/mixture.cc.o.d"
  "CMakeFiles/cedar_stats.dir/normal_math.cc.o"
  "CMakeFiles/cedar_stats.dir/normal_math.cc.o.d"
  "CMakeFiles/cedar_stats.dir/order_statistics.cc.o"
  "CMakeFiles/cedar_stats.dir/order_statistics.cc.o.d"
  "CMakeFiles/cedar_stats.dir/rng.cc.o"
  "CMakeFiles/cedar_stats.dir/rng.cc.o.d"
  "libcedar_stats.a"
  "libcedar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
