# Empty dependencies file for cedar_stats.
# This may be replaced when dependencies are built.
