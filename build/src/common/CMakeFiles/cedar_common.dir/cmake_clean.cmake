file(REMOVE_RECURSE
  "CMakeFiles/cedar_common.dir/csv.cc.o"
  "CMakeFiles/cedar_common.dir/csv.cc.o.d"
  "CMakeFiles/cedar_common.dir/flags.cc.o"
  "CMakeFiles/cedar_common.dir/flags.cc.o.d"
  "CMakeFiles/cedar_common.dir/histogram.cc.o"
  "CMakeFiles/cedar_common.dir/histogram.cc.o.d"
  "CMakeFiles/cedar_common.dir/logging.cc.o"
  "CMakeFiles/cedar_common.dir/logging.cc.o.d"
  "CMakeFiles/cedar_common.dir/math_util.cc.o"
  "CMakeFiles/cedar_common.dir/math_util.cc.o.d"
  "CMakeFiles/cedar_common.dir/sample_set.cc.o"
  "CMakeFiles/cedar_common.dir/sample_set.cc.o.d"
  "CMakeFiles/cedar_common.dir/table.cc.o"
  "CMakeFiles/cedar_common.dir/table.cc.o.d"
  "CMakeFiles/cedar_common.dir/thread_pool.cc.o"
  "CMakeFiles/cedar_common.dir/thread_pool.cc.o.d"
  "libcedar_common.a"
  "libcedar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
