file(REMOVE_RECURSE
  "libcedar_common.a"
)
