
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/cedar_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/csv.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/common/CMakeFiles/cedar_common.dir/flags.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/flags.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/common/CMakeFiles/cedar_common.dir/histogram.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/cedar_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/logging.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/common/CMakeFiles/cedar_common.dir/math_util.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/math_util.cc.o.d"
  "/root/repo/src/common/sample_set.cc" "src/common/CMakeFiles/cedar_common.dir/sample_set.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/sample_set.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/cedar_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/cedar_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/cedar_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
