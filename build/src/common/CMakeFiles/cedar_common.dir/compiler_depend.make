# Empty compiler generated dependencies file for cedar_common.
# This may be replaced when dependencies are built.
