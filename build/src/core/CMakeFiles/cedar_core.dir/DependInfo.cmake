
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dual.cc" "src/core/CMakeFiles/cedar_core.dir/dual.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/dual.cc.o.d"
  "/root/repo/src/core/online_learner.cc" "src/core/CMakeFiles/cedar_core.dir/online_learner.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/online_learner.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/cedar_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/policies.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/cedar_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/policy.cc.o.d"
  "/root/repo/src/core/policy_registry.cc" "src/core/CMakeFiles/cedar_core.dir/policy_registry.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/policy_registry.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/core/CMakeFiles/cedar_core.dir/quality.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/quality.cc.o.d"
  "/root/repo/src/core/tracing_policy.cc" "src/core/CMakeFiles/cedar_core.dir/tracing_policy.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/tracing_policy.cc.o.d"
  "/root/repo/src/core/tree.cc" "src/core/CMakeFiles/cedar_core.dir/tree.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/tree.cc.o.d"
  "/root/repo/src/core/wait_optimizer.cc" "src/core/CMakeFiles/cedar_core.dir/wait_optimizer.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/wait_optimizer.cc.o.d"
  "/root/repo/src/core/wait_table.cc" "src/core/CMakeFiles/cedar_core.dir/wait_table.cc.o" "gcc" "src/core/CMakeFiles/cedar_core.dir/wait_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/cedar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cedar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
