# Empty dependencies file for cedar_core.
# This may be replaced when dependencies are built.
