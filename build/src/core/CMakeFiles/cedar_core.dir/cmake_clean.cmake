file(REMOVE_RECURSE
  "CMakeFiles/cedar_core.dir/dual.cc.o"
  "CMakeFiles/cedar_core.dir/dual.cc.o.d"
  "CMakeFiles/cedar_core.dir/online_learner.cc.o"
  "CMakeFiles/cedar_core.dir/online_learner.cc.o.d"
  "CMakeFiles/cedar_core.dir/policies.cc.o"
  "CMakeFiles/cedar_core.dir/policies.cc.o.d"
  "CMakeFiles/cedar_core.dir/policy.cc.o"
  "CMakeFiles/cedar_core.dir/policy.cc.o.d"
  "CMakeFiles/cedar_core.dir/policy_registry.cc.o"
  "CMakeFiles/cedar_core.dir/policy_registry.cc.o.d"
  "CMakeFiles/cedar_core.dir/quality.cc.o"
  "CMakeFiles/cedar_core.dir/quality.cc.o.d"
  "CMakeFiles/cedar_core.dir/tracing_policy.cc.o"
  "CMakeFiles/cedar_core.dir/tracing_policy.cc.o.d"
  "CMakeFiles/cedar_core.dir/tree.cc.o"
  "CMakeFiles/cedar_core.dir/tree.cc.o.d"
  "CMakeFiles/cedar_core.dir/wait_optimizer.cc.o"
  "CMakeFiles/cedar_core.dir/wait_optimizer.cc.o.d"
  "CMakeFiles/cedar_core.dir/wait_table.cc.o"
  "CMakeFiles/cedar_core.dir/wait_table.cc.o.d"
  "libcedar_core.a"
  "libcedar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
