file(REMOVE_RECURSE
  "libcedar_core.a"
)
