file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_quality.dir/bench_fig07_quality.cc.o"
  "CMakeFiles/bench_fig07_quality.dir/bench_fig07_quality.cc.o.d"
  "bench_fig07_quality"
  "bench_fig07_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
