file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_empirical.dir/bench_fig10_empirical.cc.o"
  "CMakeFiles/bench_fig10_empirical.dir/bench_fig10_empirical.cc.o.d"
  "bench_fig10_empirical"
  "bench_fig10_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
