file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_estimator.dir/bench_micro_estimator.cc.o"
  "CMakeFiles/bench_micro_estimator.dir/bench_micro_estimator.cc.o.d"
  "bench_micro_estimator"
  "bench_micro_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
