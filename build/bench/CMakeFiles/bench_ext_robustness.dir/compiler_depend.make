# Empty compiler generated dependencies file for bench_ext_robustness.
# This may be replaced when dependencies are built.
