file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_robustness.dir/bench_ext_robustness.cc.o"
  "CMakeFiles/bench_ext_robustness.dir/bench_ext_robustness.cc.o.d"
  "bench_ext_robustness"
  "bench_ext_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
