# Empty compiler generated dependencies file for bench_fig08_improvement_cdf.
# This may be replaced when dependencies are built.
