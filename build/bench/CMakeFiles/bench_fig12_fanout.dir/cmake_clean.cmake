file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fanout.dir/bench_fig12_fanout.cc.o"
  "CMakeFiles/bench_fig12_fanout.dir/bench_fig12_fanout.cc.o.d"
  "bench_fig12_fanout"
  "bench_fig12_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
