file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_gaussian.dir/bench_fig17_gaussian.cc.o"
  "CMakeFiles/bench_fig17_gaussian.dir/bench_fig17_gaussian.cc.o.d"
  "bench_fig17_gaussian"
  "bench_fig17_gaussian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_gaussian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
