# Empty dependencies file for bench_fig17_gaussian.
# This may be replaced when dependencies are built.
