file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multilevel.dir/bench_fig13_multilevel.cc.o"
  "CMakeFiles/bench_fig13_multilevel.dir/bench_fig13_multilevel.cc.o.d"
  "bench_fig13_multilevel"
  "bench_fig13_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
