file(REMOVE_RECURSE
  "libcedar_bench_util.a"
)
