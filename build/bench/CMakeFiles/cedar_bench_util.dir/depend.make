# Empty dependencies file for cedar_bench_util.
# This may be replaced when dependencies are built.
