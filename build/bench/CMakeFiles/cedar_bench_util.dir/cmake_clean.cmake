file(REMOVE_RECURSE
  "CMakeFiles/cedar_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/cedar_bench_util.dir/bench_util.cc.o.d"
  "libcedar_bench_util.a"
  "libcedar_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
