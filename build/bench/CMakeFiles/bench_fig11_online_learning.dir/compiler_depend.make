# Empty compiler generated dependencies file for bench_fig11_online_learning.
# This may be replaced when dependencies are built.
