file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_online_learning.dir/bench_fig11_online_learning.cc.o"
  "CMakeFiles/bench_fig11_online_learning.dir/bench_fig11_online_learning.cc.o.d"
  "bench_fig11_online_learning"
  "bench_fig11_online_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_online_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
