file(REMOVE_RECURSE
  "CMakeFiles/bench_app_quality.dir/bench_app_quality.cc.o"
  "CMakeFiles/bench_app_quality.dir/bench_app_quality.cc.o.d"
  "bench_app_quality"
  "bench_app_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
