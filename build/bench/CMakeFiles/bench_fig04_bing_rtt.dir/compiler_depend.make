# Empty compiler generated dependencies file for bench_fig04_bing_rtt.
# This may be replaced when dependencies are built.
