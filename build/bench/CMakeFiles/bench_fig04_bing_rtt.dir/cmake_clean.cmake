file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_bing_rtt.dir/bench_fig04_bing_rtt.cc.o"
  "CMakeFiles/bench_fig04_bing_rtt.dir/bench_fig04_bing_rtt.cc.o.d"
  "bench_fig04_bing_rtt"
  "bench_fig04_bing_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_bing_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
