# Empty dependencies file for bench_fig16_sigma_sweep.
# This may be replaced when dependencies are built.
