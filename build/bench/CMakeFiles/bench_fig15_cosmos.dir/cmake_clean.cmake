file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cosmos.dir/bench_fig15_cosmos.cc.o"
  "CMakeFiles/bench_fig15_cosmos.dir/bench_fig15_cosmos.cc.o.d"
  "bench_fig15_cosmos"
  "bench_fig15_cosmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cosmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
