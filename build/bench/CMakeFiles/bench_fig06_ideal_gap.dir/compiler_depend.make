# Empty compiler generated dependencies file for bench_fig06_ideal_gap.
# This may be replaced when dependencies are built.
