file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_interactive.dir/bench_fig14_interactive.cc.o"
  "CMakeFiles/bench_fig14_interactive.dir/bench_fig14_interactive.cc.o.d"
  "bench_fig14_interactive"
  "bench_fig14_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
