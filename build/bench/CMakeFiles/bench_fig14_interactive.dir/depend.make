# Empty dependencies file for bench_fig14_interactive.
# This may be replaced when dependencies are built.
