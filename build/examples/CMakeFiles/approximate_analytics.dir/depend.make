# Empty dependencies file for approximate_analytics.
# This may be replaced when dependencies are built.
