file(REMOVE_RECURSE
  "CMakeFiles/approximate_analytics.dir/approximate_analytics.cpp.o"
  "CMakeFiles/approximate_analytics.dir/approximate_analytics.cpp.o.d"
  "approximate_analytics"
  "approximate_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
