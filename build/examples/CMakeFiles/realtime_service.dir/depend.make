# Empty dependencies file for realtime_service.
# This may be replaced when dependencies are built.
