file(REMOVE_RECURSE
  "CMakeFiles/realtime_service.dir/realtime_service.cpp.o"
  "CMakeFiles/realtime_service.dir/realtime_service.cpp.o.d"
  "realtime_service"
  "realtime_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
