file(REMOVE_RECURSE
  "CMakeFiles/adaptive_aggregator.dir/adaptive_aggregator.cpp.o"
  "CMakeFiles/adaptive_aggregator.dir/adaptive_aggregator.cpp.o.d"
  "adaptive_aggregator"
  "adaptive_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
