# Empty dependencies file for adaptive_aggregator.
# This may be replaced when dependencies are built.
