# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--queries=3" "--deadline=800")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_search_engine "/root/repo/build/examples/search_engine" "--queries=10" "--deadline_ms=150")
set_tests_properties(example_search_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_approximate_analytics "/root/repo/build/examples/approximate_analytics" "--jobs=5" "--trace=/root/repo/build/smoke_jobs.csv")
set_tests_properties(example_approximate_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_aggregator "/root/repo/build/examples/adaptive_aggregator" "--fanout=20")
set_tests_properties(example_adaptive_aggregator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_service "/root/repo/build/examples/realtime_service" "--fanout=6" "--deadline_ms=120")
set_tests_properties(example_realtime_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_cedar_plan "/root/repo/build/tools/cedar_plan" "--deadline=500" "--curve_points=4")
set_tests_properties(tool_cedar_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_cedar_sim "/root/repo/build/tools/cedar_sim" "--workload=cosmos" "--deadlines=100" "--queries=5" "--k1=5" "--k2=5")
set_tests_properties(tool_cedar_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_cedar_trace "/root/repo/build/tools/cedar_trace" "--mode=fit" "--workload=gaussian" "--samples=2000" "--k1=5" "--k2=5")
set_tests_properties(tool_cedar_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
