# Empty dependencies file for cedar_sim_tool.
# This may be replaced when dependencies are built.
