file(REMOVE_RECURSE
  "CMakeFiles/cedar_sim_tool.dir/cedar_sim.cc.o"
  "CMakeFiles/cedar_sim_tool.dir/cedar_sim.cc.o.d"
  "cedar_sim"
  "cedar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
