file(REMOVE_RECURSE
  "CMakeFiles/cedar_plan_tool.dir/cedar_plan.cc.o"
  "CMakeFiles/cedar_plan_tool.dir/cedar_plan.cc.o.d"
  "cedar_plan"
  "cedar_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_plan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
