# Empty compiler generated dependencies file for cedar_plan_tool.
# This may be replaced when dependencies are built.
