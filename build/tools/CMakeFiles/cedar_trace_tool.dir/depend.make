# Empty dependencies file for cedar_trace_tool.
# This may be replaced when dependencies are built.
