file(REMOVE_RECURSE
  "CMakeFiles/cedar_trace_tool.dir/cedar_trace.cc.o"
  "CMakeFiles/cedar_trace_tool.dir/cedar_trace.cc.o.d"
  "cedar_trace"
  "cedar_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
