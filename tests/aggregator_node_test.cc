#include "src/sim/aggregator_node.h"

#include <gtest/gtest.h>

#include "src/core/policies.h"

namespace cedar {
namespace {

// A policy whose decisions are scripted: initial wait w0, and on the r-th
// arrival the wait becomes script[r-1] (absolute, query-relative).
// Test-local and stateless across queries; default fork is detached.
class ScriptedPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  ScriptedPolicy(double initial, std::vector<double> script)
      : initial_(initial), script_(std::move(script)) {}

  std::string name() const override { return "scripted"; }
  std::unique_ptr<WaitPolicy> Clone() const override {
    return std::make_unique<ScriptedPolicy>(*this);
  }

 protected:
  double InitialWait(const AggregatorContext&) override { return initial_; }
  double OnArrival(const AggregatorContext&, double, const std::vector<double>& arrivals) override {
    size_t index = arrivals.size() - 1;
    if (index < script_.size()) {
      return script_[index];
    }
    return current_wait_;
  }

 private:
  double initial_;
  std::vector<double> script_;
};

struct NodeFixture {
  explicit NodeFixture(int fanout) {
    tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(1.0), fanout,
                              std::make_shared<ExponentialDistribution>(1.0), 2);
    ctx.tier = 0;
    ctx.deadline = 100.0;
    ctx.fanout = fanout;
    ctx.offline_tree = &tree;
    ctx.epsilon = 0.25;
  }

  TreeSpec tree;
  AggregatorContext ctx;
};

TEST(AggregatorNodeTest, FiresAtInitialWaitWithoutArrivals) {
  NodeFixture fixture(3);
  EventQueue queue;
  AggregatorNode node;
  auto policy = std::make_unique<ScriptedPolicy>(10.0, std::vector<double>{});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx);

  double sent_at = -1.0;
  double sent_weight = -1.0;
  node.Start(queue, [&](AggregatorNode&, double weight) {
    sent_at = queue.now();
    sent_weight = weight;
  });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_at, 10.0);
  EXPECT_DOUBLE_EQ(sent_weight, 0.0);
  EXPECT_TRUE(node.closed());
}

TEST(AggregatorNodeTest, SendsEarlyWhenAllChildrenReport) {
  NodeFixture fixture(2);
  EventQueue queue;
  AggregatorNode node;
  auto policy = std::make_unique<ScriptedPolicy>(50.0, std::vector<double>{});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx);

  double sent_at = -1.0;
  double sent_weight = -1.0;
  node.Start(queue, [&](AggregatorNode&, double weight) {
    sent_at = queue.now();
    sent_weight = weight;
  });
  queue.Schedule(3.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Schedule(7.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_at, 7.0) << "all children reported: SetTimer(0)";
  EXPECT_DOUBLE_EQ(sent_weight, 2.0);
}

TEST(AggregatorNodeTest, RearmExtendsAndShortensTimer) {
  NodeFixture fixture(5);
  EventQueue queue;
  AggregatorNode node;
  // After the 1st arrival extend to 40; after the 2nd shorten to 12.
  auto policy = std::make_unique<ScriptedPolicy>(20.0, std::vector<double>{40.0, 12.0});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx);

  double sent_at = -1.0;
  node.Start(queue, [&](AggregatorNode&, double) { sent_at = queue.now(); });
  queue.Schedule(5.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Schedule(10.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_at, 12.0);
}

TEST(AggregatorNodeTest, ShorteningBelowNowFiresImmediately) {
  NodeFixture fixture(5);
  EventQueue queue;
  AggregatorNode node;
  // After the arrival at t=8 the policy wants wait=2 (already past).
  auto policy = std::make_unique<ScriptedPolicy>(20.0, std::vector<double>{2.0});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx);

  double sent_at = -1.0;
  node.Start(queue, [&](AggregatorNode&, double) { sent_at = queue.now(); });
  queue.Schedule(8.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_at, 8.0);
}

TEST(AggregatorNodeTest, LateArrivalsAreDropped) {
  NodeFixture fixture(5);
  EventQueue queue;
  AggregatorNode node;
  auto policy = std::make_unique<ScriptedPolicy>(10.0, std::vector<double>{10.0, 10.0});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx);

  double sent_weight = -1.0;
  int sends = 0;
  node.Start(queue, [&](AggregatorNode&, double weight) {
    sent_weight = weight;
    ++sends;
  });
  queue.Schedule(4.0, [&] { node.OnChildOutput(queue, 1.0); });
  queue.Schedule(25.0, [&] { node.OnChildOutput(queue, 1.0); });  // after the send
  queue.Run();
  EXPECT_EQ(sends, 1);
  EXPECT_DOUBLE_EQ(sent_weight, 1.0);
  EXPECT_DOUBLE_EQ(node.included_weight(), 1.0);
}

TEST(AggregatorNodeTest, OriginShiftsTimerAndRelativeArrivals) {
  NodeFixture fixture(5);
  EventQueue queue;
  AggregatorNode node;
  auto policy = std::make_unique<ScriptedPolicy>(10.0, std::vector<double>{});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 0, std::move(policy), &fixture.ctx, /*origin=*/100.0);

  double sent_at = -1.0;
  // Advance the queue to the origin before starting the node, as the loaded
  // runtime does on job arrival.
  queue.Schedule(100.0, [&] {
    node.Start(queue, [&](AggregatorNode&, double) { sent_at = queue.now(); });
  });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_at, 110.0) << "wait 10 is relative to the origin";
}

TEST(AggregatorNodeTest, SendDeliversAccumulatedWeights) {
  NodeFixture fixture(3);
  EventQueue queue;
  AggregatorNode node;
  auto policy = std::make_unique<ScriptedPolicy>(30.0, std::vector<double>{});
  policy->BeginQuery(fixture.ctx, nullptr);
  node.Init(0, 7, std::move(policy), &fixture.ctx);
  EXPECT_EQ(node.index(), 7);

  double sent_weight = -1.0;
  node.Start(queue, [&](AggregatorNode& self, double weight) {
    sent_weight = weight;
    EXPECT_EQ(self.arrivals_count(), 2);
  });
  queue.Schedule(1.0, [&] { node.OnChildOutput(queue, 2.5); });
  queue.Schedule(2.0, [&] { node.OnChildOutput(queue, 0.5); });
  queue.Run();
  EXPECT_DOUBLE_EQ(sent_weight, 3.0);
  EXPECT_DOUBLE_EQ(node.send_time(), 30.0);
}

}  // namespace
}  // namespace cedar
