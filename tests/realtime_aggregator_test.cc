#include "src/rt/realtime_aggregator.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/policies.h"
#include "src/core/quality.h"

namespace cedar {
namespace {

// Wall-clock tests: durations are tens of milliseconds with generous
// tolerances, so they are robust to scheduler jitter while still proving
// the timer/arrival interleaving works.

constexpr double kMs = 1e-3;

struct RtFixture {
  RtFixture()
      : tree(TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(-3.5, 0.6), 4,
                                std::make_shared<LogNormalDistribution>(-3.5, 0.6), 2)),
        upper(TabulateCdf(*tree.stage(1).duration, 1.0, 201)) {
    ctx.tier = 0;
    ctx.deadline = 1.0;  // seconds
    ctx.fanout = 4;
    ctx.offline_tree = &tree;
    ctx.upper_quality = &upper;
    ctx.epsilon = 0.0025;
  }

  TreeSpec tree;
  PiecewiseLinear upper;
  AggregatorContext ctx;
};

void SleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double>(ms * kMs));
}

TEST(RealtimeAggregatorTest, FiresAtFixedWait) {
  RtFixture fixture;
  std::atomic<bool> fired{false};
  RealtimeAggregator<int>::Result result;
  RealtimeAggregator<int> aggregator(
      std::make_unique<FixedWaitPolicy>(0.05), fixture.ctx, [&](auto r) {
        result = std::move(r);
        fired = true;
      });
  aggregator.Start();
  aggregator.Offer(1);
  aggregator.Join();
  EXPECT_TRUE(fired);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_FALSE(result.sent_early);
  EXPECT_GE(result.send_time, 0.045);
  EXPECT_LT(result.send_time, 0.5);  // generous upper bound vs 50ms target
}

TEST(RealtimeAggregatorTest, SendsEarlyWhenAllArrive) {
  RtFixture fixture;
  RealtimeAggregator<int>::Result result;
  RealtimeAggregator<int> aggregator(std::make_unique<FixedWaitPolicy>(10.0), fixture.ctx,
                                     [&](auto r) { result = std::move(r); });
  aggregator.Start();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(aggregator.Offer(i));
  }
  aggregator.Join();
  EXPECT_TRUE(result.sent_early);
  EXPECT_EQ(result.outputs.size(), 4u);
  EXPECT_LT(result.send_time, 1.0) << "must not wait out the 10s timer";
}

TEST(RealtimeAggregatorTest, LateOffersRejected) {
  RtFixture fixture;
  RealtimeAggregator<int> aggregator(std::make_unique<FixedWaitPolicy>(0.02), fixture.ctx,
                                     [](auto) {});
  aggregator.Start();
  aggregator.Join();
  EXPECT_TRUE(aggregator.sent());
  EXPECT_FALSE(aggregator.Offer(99)) << "offers after the send are dropped";
}

TEST(RealtimeAggregatorTest, FlushSendsImmediately) {
  RtFixture fixture;
  RealtimeAggregator<int>::Result result;
  RealtimeAggregator<int> aggregator(std::make_unique<FixedWaitPolicy>(10.0), fixture.ctx,
                                     [&](auto r) { result = std::move(r); });
  aggregator.Start();
  aggregator.Offer(7);
  aggregator.Flush();
  aggregator.Join();
  EXPECT_EQ(result.outputs.size(), 1u);
  EXPECT_LT(result.send_time, 1.0);
}

TEST(RealtimeAggregatorTest, ConcurrentOffersAllCounted) {
  RtFixture fixture;
  fixture.ctx.fanout = 16;
  RealtimeAggregator<int>::Result result;
  RealtimeAggregator<int> aggregator(std::make_unique<FixedWaitPolicy>(5.0), fixture.ctx,
                                     [&](auto r) { result = std::move(r); });
  aggregator.Start();
  std::vector<std::thread> workers;
  for (int i = 0; i < 16; ++i) {
    workers.emplace_back([&aggregator, i] {
      SleepMs(1.0 + (i % 5));
      aggregator.Offer(i);
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  aggregator.Join();
  EXPECT_TRUE(result.sent_early);
  EXPECT_EQ(result.outputs.size(), 16u);
  // Arrival times must be recorded in nondecreasing order.
  for (size_t i = 1; i < result.arrival_times.size(); ++i) {
    EXPECT_GE(result.arrival_times[i], result.arrival_times[i - 1]);
  }
}

TEST(RealtimeAggregatorTest, CedarPolicyDrivesRealClockWaits) {
  // End to end with the real policy: 4 workers, lognormal(-3.5, 0.6) ~ 30ms
  // durations, deadline 1s. Cedar should collect all four comfortably.
  RtFixture fixture;
  RealtimeAggregator<int>::Result result;
  RealtimeAggregator<int> aggregator(std::make_unique<CedarPolicy>(), fixture.ctx,
                                     [&](auto r) { result = std::move(r); });
  aggregator.Start();
  std::vector<std::thread> workers;
  Rng rng(3);
  LogNormalDistribution duration(-3.5, 0.6);
  for (int i = 0; i < 4; ++i) {
    double sleep_s = duration.Sample(rng);
    workers.emplace_back([&aggregator, i, sleep_s] {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      aggregator.Offer(i);
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  aggregator.Join();
  EXPECT_EQ(result.outputs.size(), 4u);
  EXPECT_LT(result.send_time, 1.0);
}

TEST(RealtimeAggregatorDeathTest, OfferBeforeStartDies) {
  RtFixture fixture;
  RealtimeAggregator<int> aggregator(std::make_unique<FixedWaitPolicy>(0.01), fixture.ctx,
                                     [](auto) {});
  EXPECT_DEATH(aggregator.Offer(1), "before Start");
  aggregator.Start();
  aggregator.Join();
}

}  // namespace
}  // namespace cedar
