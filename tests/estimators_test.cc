#include "src/stats/estimators.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/rng.h"

namespace cedar {
namespace {

// Draws |k| samples from LogNormal(mu, sigma), sorts, returns the first r.
std::vector<double> FirstArrivals(double mu, double sigma, int k, int r, Rng& rng) {
  LogNormalDistribution dist(mu, sigma);
  std::vector<double> samples(static_cast<size_t>(k));
  for (auto& s : samples) {
    s = dist.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  samples.resize(static_cast<size_t>(r));
  return samples;
}

// Property sweep: (mu, sigma, k, r) — the order-statistics estimator should
// recover mu with small bias from only the earliest r of k samples.
class LogNormalRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double, int, int>> {};

TEST_P(LogNormalRecoveryTest, MuRecoveredWithLowBias) {
  auto [mu, sigma, k, r] = GetParam();
  Rng rng(1234);
  const int kTrials = 300;
  double mu_sum = 0.0;
  double sigma_sum = 0.0;
  int ok = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto arrivals = FirstArrivals(mu, sigma, k, r, rng);
    auto est = EstimateLogNormalOrderStats(arrivals, k);
    if (est.has_value()) {
      mu_sum += est->location;
      sigma_sum += est->scale;
      ++ok;
    }
  }
  ASSERT_GT(ok, kTrials * 9 / 10);
  double mu_bias = std::fabs(mu_sum / ok - mu) / std::fabs(mu);
  double sigma_bias = std::fabs(sigma_sum / ok - sigma) / sigma;
  // The paper reports < 5% error in mu once ~10 samples arrived and ~20%
  // error in sigma (Figure 9).
  EXPECT_LT(mu_bias, 0.06) << "mu=" << mu << " sigma=" << sigma << " k=" << k << " r=" << r;
  EXPECT_LT(sigma_bias, 0.25) << "mu=" << mu << " sigma=" << sigma << " k=" << k << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LogNormalRecoveryTest,
    ::testing::Values(std::make_tuple(2.77, 0.84, 50, 10),   // the paper's Facebook fit
                      std::make_tuple(2.77, 0.84, 50, 25),
                      std::make_tuple(2.77, 0.84, 50, 50),
                      std::make_tuple(2.94, 0.55, 50, 15),   // Google
                      std::make_tuple(5.90, 1.25, 50, 20),   // Bing
                      std::make_tuple(0.50, 1.50, 100, 20),
                      std::make_tuple(-1.0, 0.30, 20, 10)));

TEST(OrderStatsVsEmpiricalTest, OrderStatsRemovesEarlyArrivalBias) {
  // With only the earliest 10 of 50 samples, the plain empirical mean of
  // logs is biased far below mu; the order-statistics estimator is not.
  const double mu = 2.77;
  const double sigma = 0.84;
  Rng rng(77);
  const int kTrials = 400;
  double os_err = 0.0;
  double emp_err = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    auto arrivals = FirstArrivals(mu, sigma, 50, 10, rng);
    auto os = EstimateLogNormalOrderStats(arrivals, 50);
    auto emp = EstimateLogNormalEmpirical(arrivals);
    ASSERT_TRUE(os.has_value());
    ASSERT_TRUE(emp.has_value());
    os_err += std::fabs(os->location - mu);
    emp_err += std::fabs(emp->location - mu);
  }
  os_err /= kTrials;
  emp_err /= kTrials;
  EXPECT_LT(os_err, 0.3 * emp_err) << "order statistics should be far less biased";
  EXPECT_LT(os_err, 0.3) << "absolute order-statistics error should be small";
  // Empirical estimate is biased LOW (sees only fast finishers): the paper's
  // Figure 9 shows ~30-80% error for it.
  EXPECT_GT(emp_err / mu, 0.25);
}

TEST(NormalOrderStatsTest, RecoversParameters) {
  NormalDistribution dist(40.0, 10.0);
  Rng rng(11);
  const int kTrials = 300;
  double mean_sum = 0.0;
  double sd_sum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> samples(50);
    for (auto& s : samples) {
      s = dist.Sample(rng);
    }
    std::sort(samples.begin(), samples.end());
    samples.resize(15);
    auto est = EstimateNormalOrderStats(samples, 50);
    ASSERT_TRUE(est.has_value());
    mean_sum += est->location;
    sd_sum += est->scale;
  }
  EXPECT_NEAR(mean_sum / kTrials, 40.0, 1.5);
  EXPECT_NEAR(sd_sum / kTrials, 10.0, 1.5);
}

TEST(ExponentialOrderStatsTest, SpacingEstimatorIsUnbiased) {
  ExponentialDistribution dist(0.5);
  Rng rng(13);
  const int kTrials = 500;
  double mean_sum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> samples(40);
    for (auto& s : samples) {
      s = dist.Sample(rng);
    }
    std::sort(samples.begin(), samples.end());
    samples.resize(10);
    auto est = EstimateExponentialOrderStats(samples, 40);
    ASSERT_TRUE(est.has_value());
    mean_sum += est->location;
  }
  EXPECT_NEAR(mean_sum / kTrials, 2.0, 0.15);  // 1/lambda = 2
}

TEST(EstimatorEdgeCasesTest, TooFewSamples) {
  EXPECT_FALSE(EstimateLogNormalOrderStats({1.0}, 50).has_value());
  EXPECT_FALSE(EstimateNormalOrderStats({}, 50).has_value());
  EXPECT_FALSE(EstimateLogNormalEmpirical({1.0}).has_value());
  EXPECT_FALSE(EstimateExponentialOrderStats({}, 50).has_value());
}

TEST(EstimatorEdgeCasesTest, MoreSamplesThanFanoutRejected) {
  std::vector<double> five = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_FALSE(EstimateLogNormalOrderStats(five, 3).has_value());
}

TEST(EstimatorEdgeCasesTest, NonPositiveTimesRejectedForLogNormal) {
  EXPECT_FALSE(EstimateLogNormalOrderStats({0.0, 1.0}, 10).has_value());
  EXPECT_FALSE(EstimateLogNormalOrderStats({-1.0, 1.0}, 10).has_value());
}

TEST(EstimatorEdgeCasesTest, IdenticalTimesGiveZeroScale) {
  auto est = EstimateLogNormalOrderStats({2.0, 2.0, 2.0}, 10);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->scale, 0.0);
  EXPECT_NEAR(est->location, std::log(2.0), 0.5);
}

TEST(EstimatorDeathTest, UnsortedArrivalsDie) {
  std::vector<double> bad = {3.0, 1.0};
  EXPECT_DEATH(EstimateLogNormalOrderStats(bad, 10), "ascending");
}

TEST(FitSpecTest, DispatchesByFamily) {
  Rng rng(5);
  auto arrivals = FirstArrivals(1.0, 0.5, 30, 15, rng);
  auto log_spec = FitSpecFromOrderStats(DistributionFamily::kLogNormal, arrivals, 30);
  ASSERT_TRUE(log_spec.has_value());
  EXPECT_EQ(log_spec->family, DistributionFamily::kLogNormal);

  auto norm_spec = FitSpecFromOrderStats(DistributionFamily::kNormal, arrivals, 30);
  ASSERT_TRUE(norm_spec.has_value());
  EXPECT_EQ(norm_spec->family, DistributionFamily::kNormal);

  auto exp_spec = FitSpecFromOrderStats(DistributionFamily::kExponential, arrivals, 30);
  ASSERT_TRUE(exp_spec.has_value());
  EXPECT_EQ(exp_spec->family, DistributionFamily::kExponential);
  EXPECT_GT(exp_spec->p1, 0.0);

  // Unknown family falls back to log-normal.
  auto fallback = FitSpecFromOrderStats(DistributionFamily::kPareto, arrivals, 30);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->family, DistributionFamily::kLogNormal);
}

TEST(FitSpecTest, ScaleFloorPreventsPointMass) {
  auto spec = FitSpecEmpirical(DistributionFamily::kLogNormal, {3.0, 3.0, 3.0});
  ASSERT_TRUE(spec.has_value());
  EXPECT_GT(spec->p2, 0.0);
}

}  // namespace
}  // namespace cedar
