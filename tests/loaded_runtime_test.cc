#include "src/cluster/loaded_runtime.h"

#include <gtest/gtest.h>

#include "src/core/policies.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

LoadedRunConfig BaseConfig() {
  LoadedRunConfig config;
  config.cluster.machines = 20;
  config.cluster.slots_per_machine = 4;  // 80 slots
  config.deadline = 1000.0;
  config.mean_interarrival = 500.0;
  config.num_queries = 20;
  config.seed = 7;
  return config;
}

TEST(LoadedRuntimeTest, ProducesOneQualityPerQuery) {
  auto workload = MakeFacebookWorkload(10, 8);  // 80 tasks per query
  CedarPolicy cedar;
  LoadedRunResult result = RunLoadedCluster(workload, cedar, BaseConfig());
  EXPECT_EQ(result.per_query_quality.size(), 20u);
  for (double quality : result.per_query_quality.values()) {
    EXPECT_GE(quality, 0.0);
    EXPECT_LE(quality, 1.0);
  }
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

TEST(LoadedRuntimeTest, Deterministic) {
  auto workload = MakeFacebookWorkload(10, 8);
  CedarPolicy cedar;
  LoadedRunResult a = RunLoadedCluster(workload, cedar, BaseConfig());
  LoadedRunResult b = RunLoadedCluster(workload, cedar, BaseConfig());
  ASSERT_EQ(a.per_query_quality.size(), b.per_query_quality.size());
  for (size_t i = 0; i < a.per_query_quality.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_query_quality.values()[i], b.per_query_quality.values()[i]);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(LoadedRuntimeTest, HeavierLoadIncreasesQueueDelayAndHurtsQuality) {
  auto workload = MakeFacebookWorkload(10, 8);
  ProportionalSplitPolicy policy;

  LoadedRunConfig light = BaseConfig();
  light.mean_interarrival = 2000.0;
  LoadedRunConfig heavy = BaseConfig();
  heavy.mean_interarrival = 50.0;

  LoadedRunResult light_result = RunLoadedCluster(workload, policy, light);
  LoadedRunResult heavy_result = RunLoadedCluster(workload, policy, heavy);
  EXPECT_GT(heavy_result.mean_queue_delay, light_result.mean_queue_delay);
  EXPECT_GT(heavy_result.utilization, light_result.utilization);
  EXPECT_LT(heavy_result.MeanQuality(), light_result.MeanQuality());
}

TEST(LoadedRuntimeTest, VeryLightLoadMatchesIsolatedQuality) {
  // With inter-arrival times far exceeding the deadline, queries never
  // overlap; queue delay within a query should be 0 (80 slots, 80 tasks)
  // and quality should be healthy.
  auto workload = MakeFacebookWorkload(10, 8);
  CedarPolicy cedar;
  LoadedRunConfig config = BaseConfig();
  config.mean_interarrival = 1e7;
  LoadedRunResult result = RunLoadedCluster(workload, cedar, config);
  EXPECT_DOUBLE_EQ(result.mean_queue_delay, 0.0);
  EXPECT_GT(result.MeanQuality(), 0.4);
}

TEST(LoadedRuntimeTest, ThreeLevelTreeSupported) {
  std::vector<MetaLogNormalStage> stages;
  for (int i = 0; i < 3; ++i) {
    MetaLogNormalStage stage;
    stage.mu = 2.0;
    stage.sigma = 0.6;
    stage.fanout = 4;
    stages.push_back(stage);
  }
  MetaLogNormalWorkload workload("deep", "s", std::move(stages));
  CedarPolicy cedar;
  LoadedRunConfig config = BaseConfig();
  config.cluster.machines = 16;
  config.cluster.slots_per_machine = 4;  // 64 slots for 64 tasks
  config.deadline = 200.0;
  LoadedRunResult result = RunLoadedCluster(workload, cedar, config);
  EXPECT_EQ(result.per_query_quality.size(), 20u);
  EXPECT_GT(result.MeanQuality(), 0.0);
}

TEST(LoadedRuntimeDeathTest, RejectsBadConfig) {
  auto workload = MakeFacebookWorkload(4, 4);
  CedarPolicy cedar;
  LoadedRunConfig config = BaseConfig();
  config.mean_interarrival = 0.0;
  EXPECT_DEATH(RunLoadedCluster(workload, cedar, config), "interarrival");
}

}  // namespace
}  // namespace cedar
