// End-to-end integration tests: the paper's headline claims, at reduced
// scale so they run in seconds.

#include <gtest/gtest.h>

#include "src/cluster/experiment.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

ExperimentConfig Config(double deadline, int queries = 30, uint64_t seed = 21) {
  ExperimentConfig config;
  config.deadline = deadline;
  config.num_queries = queries;
  config.seed = seed;
  return config;
}

TEST(IntegrationTest, CedarBeatsBaselineOnFacebookReplay) {
  auto workload = MakeFacebookWorkload(20, 20);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(1000.0));
  // §5.2: significant improvement at this deadline (we assert a
  // conservative floor, the bench reports the full number).
  EXPECT_GT(result.ImprovementPercent("prop-split", "cedar"), 20.0);
}

TEST(IntegrationTest, CedarTracksIdealClosely) {
  auto workload = MakeFacebookWorkload(20, 20);
  CedarPolicy cedar;
  OraclePolicy ideal;
  auto result = RunExperiment(workload, {&cedar, &ideal}, Config(1000.0));
  double cedar_q = result.Outcome("cedar").MeanQuality();
  double ideal_q = result.Outcome("ideal").MeanQuality();
  // Figure 7b: Cedar's performance closely matches the ideal scheme.
  EXPECT_GT(cedar_q, 0.92 * ideal_q);
}

TEST(IntegrationTest, OrderStatisticsBeatEmpiricalEstimates) {
  // Figure 10: the order-statistics learner outperforms the biased empirical
  // estimator. The gap is widest at tight deadlines, where a mis-set wait
  // cannot be repaired by later re-optimizations.
  auto workload = MakeFacebookWorkload(50, 20);
  CedarPolicy cedar;
  CedarPolicyOptions empirical_options;
  empirical_options.learner.use_empirical_estimates = true;
  CedarPolicy cedar_empirical(empirical_options);
  auto result = RunExperiment(workload, {&cedar, &cedar_empirical}, Config(400.0));
  EXPECT_GT(result.Outcome("cedar").MeanQuality(),
            result.Outcome("cedar-empirical").MeanQuality() + 0.005);
}

TEST(IntegrationTest, OnlineLearningHandlesLoadShift) {
  // Figure 11: offline knowledge trained at low load, actual load higher.
  // Cedar's online learning keeps it at the quality it would have with
  // fresh statistics, while the stale Proportional-split wait (computed
  // from low-load means) cuts off a large share of the now-slower
  // processes. (The stale CalculateWait plan is more robust than the paper
  // suggests under early-send semantics — see EXPERIMENTS.md — so the
  // baseline here is the stale straw-man, the sharper contrast.)
  auto low_load = std::make_shared<StationaryWorkload>(
      "low", "s",
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.84), 20,
                         std::make_shared<LogNormalDistribution>(3.25, 0.95), 20));
  auto high_load = std::make_shared<StationaryWorkload>(
      "high", "s",
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(4.2, 0.84), 20,
                         std::make_shared<LogNormalDistribution>(3.25, 0.95), 20));
  MismatchedOfflineWorkload shifted(high_load, low_load->OfflineTree());

  CedarPolicy cedar;                   // learns online, adapts
  ProportionalSplitPolicy stale_prop;  // stuck with low-load means
  OfflineOptimalPolicy stale_plan;     // stale CalculateWait plan
  auto result = RunExperiment(shifted, {&cedar, &stale_prop, &stale_plan}, Config(400.0));
  EXPECT_GT(result.Outcome("cedar").MeanQuality(),
            result.Outcome("prop-split").MeanQuality() + 0.10);
  // Online learning never does worse than the stale plan.
  EXPECT_GT(result.Outcome("cedar").MeanQuality(),
            result.Outcome("cedar-offline").MeanQuality() - 0.02);
}

TEST(IntegrationTest, GaussianWorkloadHighAbsoluteQuality) {
  // Figure 17: normal distributions aren't heavy-tailed; absolute quality is
  // high and Cedar still (mildly) improves on the baseline.
  GaussianWorkload workload(20, 20);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(250.0));
  EXPECT_GT(result.Outcome("cedar").MeanQuality(), 0.85);
  EXPECT_GE(result.ImprovementPercent("prop-split", "cedar"), -2.0);
}

TEST(IntegrationTest, MoreLevelsBenefitMore) {
  // Figure 13's trend at matched baseline quality: gains persist (and grow)
  // with tree depth. We check the weaker invariant that 3-level gains are
  // positive and substantial.
  auto three = MakeFacebookThreeLevelWorkload(10, 10, 10);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(three, {&baseline, &cedar}, Config(1500.0, 20));
  EXPECT_GT(result.ImprovementPercent("prop-split", "cedar"), 10.0);
}

TEST(IntegrationTest, ClusterEngineAgreesWithSimulatorOnSingleWave) {
  auto workload = MakeFacebookWorkload(10, 8);  // 80 tasks
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;

  ExperimentConfig sim_config = Config(1000.0, 15);
  auto sim_result = RunExperiment(workload, {&baseline, &cedar}, sim_config);

  ClusterExperimentConfig cluster_config;
  cluster_config.cluster.machines = 20;
  cluster_config.cluster.slots_per_machine = 4;  // 80 slots: single wave
  cluster_config.deadline = 1000.0;
  cluster_config.num_queries = 15;
  cluster_config.seed = sim_config.seed;
  auto cluster_result = RunClusterExperiment(workload, {&baseline, &cedar}, cluster_config);

  // Identical seeds and single-wave scheduling: identical qualities.
  for (const char* name : {"prop-split", "cedar"}) {
    EXPECT_DOUBLE_EQ(cluster_result.Outcome(name).MeanQuality(),
                     sim_result.Outcome(name).MeanQuality())
        << name;
  }
}

TEST(IntegrationTest, SpeculationCoexistsWithCedar) {
  // §7 future work: Cedar alongside straggler mitigation. Speculation must
  // not hurt Cedar's quality (it can only accelerate stragglers).
  auto workload = MakeFacebookWorkload(10, 8);
  CedarPolicy cedar;
  ClusterExperimentConfig config;
  config.cluster.machines = 20;
  config.cluster.slots_per_machine = 5;  // 100 slots > 80 tasks: idle slots exist
  config.deadline = 1000.0;
  config.num_queries = 15;
  config.seed = 4;
  auto plain = RunClusterExperiment(workload, {&cedar}, config);
  config.run.speculation.enabled = true;
  auto speculative = RunClusterExperiment(workload, {&cedar}, config);
  EXPECT_GE(speculative.Outcome("cedar").MeanQuality(),
            plain.Outcome("cedar").MeanQuality() - 0.02);
  EXPECT_GT(speculative.total_clones_launched, 0);
}

TEST(IntegrationTest, ExponentialFamilyEndToEnd) {
  // Distribution-type agnosticism (§5.7) for a third family: exponential
  // stage durations, with the learner configured to fit the exponential
  // family (spacings estimator). Cedar must at least match the baseline.
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(0.05), 20,
                                     std::make_shared<ExponentialDistribution>(0.1), 20);
  StationaryWorkload workload("exp", "s", std::move(tree));
  ProportionalSplitPolicy baseline;
  CedarPolicyOptions options;
  options.learner.family = DistributionFamily::kExponential;
  CedarPolicy cedar(options);
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(60.0));
  EXPECT_GE(result.Outcome("cedar").MeanQuality(),
            result.Outcome("prop-split").MeanQuality() - 0.02);
  EXPECT_GT(result.Outcome("cedar").MeanQuality(), 0.3);
}

TEST(IntegrationTest, OracleDominatesFixedWaitGrid) {
  // Model-correctness end to end: on a stationary workload the oracle's
  // mean quality must (statistically) dominate every fixed wait on a grid.
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.4, 1.0), 15,
                                     std::make_shared<LogNormalDistribution>(2.0, 0.7), 15);
  StationaryWorkload workload("stationary", "s", std::move(tree));
  OraclePolicy oracle;
  auto oracle_result = RunExperiment(workload, {&oracle}, Config(60.0, 60));
  double oracle_quality = oracle_result.Outcome("ideal").MeanQuality();
  for (double wait : {5.0, 15.0, 25.0, 35.0, 45.0, 55.0}) {
    FixedWaitPolicy fixed(wait);
    auto fixed_result = RunExperiment(workload, {&fixed}, Config(60.0, 60));
    EXPECT_GE(oracle_quality, fixed_result.Outcome("fixed").MeanQuality() - 0.02)
        << "fixed wait " << wait;
  }
}

TEST(IntegrationTest, FourLevelTreeWorksEndToEnd) {
  std::vector<MetaLogNormalStage> stages;
  for (int i = 0; i < 4; ++i) {
    MetaLogNormalStage stage;
    stage.mu = 2.0 + 0.2 * i;
    stage.sigma = 0.7;
    stage.mu_spread = 0.3;
    stage.fanout = 5;
    stages.push_back(stage);
  }
  MetaLogNormalWorkload workload("deep", "s", std::move(stages));
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(150.0, 20));
  EXPECT_GT(result.Outcome("cedar").MeanQuality(), 0.0);
  EXPECT_LE(result.Outcome("cedar").MeanQuality(), 1.0);
  EXPECT_GE(result.Outcome("cedar").MeanQuality(),
            result.Outcome("prop-split").MeanQuality() - 0.05);
}

}  // namespace
}  // namespace cedar
