// Drives every cedar_lint rule over the seeded fixtures in
// tests/lint_fixtures/: each rule must fire on its violation lines (marked
// "fires" in the fixture) and stay quiet on the allowlisted duplicates.
// CEDAR_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.

#include "tools/lint/lint.h"

#include <algorithm>

#include "tools/lint/lockgraph.h"
#include "tools/lint/stripped_source.h"
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(CEDAR_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

// Lines whose code or comment contains the word "fires" mark expected
// violations, so the expectations live next to the seeded code.
std::set<int> MarkedLines(const std::string& content) {
  std::set<int> lines;
  std::istringstream in(content);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find("fires") != std::string::npos) {
      lines.insert(number);
    }
  }
  return lines;
}

// Runs |rule| alone over the fixture registered under |virtual_path| and
// checks the diagnostics land exactly on the marked lines.
void CheckRule(const std::string& fixture, const std::string& virtual_path,
               const std::string& rule) {
  SCOPED_TRACE(fixture + " as " + virtual_path + " rule=" + rule);
  const std::string content = ReadFixture(fixture);
  const std::set<int> expected = MarkedLines(content);
  ASSERT_FALSE(expected.empty()) << "fixture has no 'fires' markers";

  LintRun run;
  run.SetRuleFilter(rule);
  run.AddFile(virtual_path, content);
  std::vector<Diagnostic> diagnostics = run.Run();

  std::set<int> reported;
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, rule);
    EXPECT_EQ(diagnostic.file, virtual_path);
    reported.insert(diagnostic.line);
  }
  EXPECT_EQ(reported, expected);
}

// The allowlisted twin must produce nothing at all.
void CheckQuiet(const std::string& fixture, const std::string& virtual_path,
                const std::string& rule) {
  SCOPED_TRACE(fixture + " as " + virtual_path + " rule=" + rule);
  LintRun run;
  run.SetRuleFilter(rule);
  run.AddFile(virtual_path, ReadFixture(fixture));
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, WallclockFiresAndSuppresses) {
  CheckRule("wallclock.cc", "src/core/wallclock_fixture.cc", "wallclock");
}

TEST(LintRules, WallclockExemptInObsAndRt) {
  LintRun run;
  run.SetRuleFilter("wallclock");
  const std::string content = ReadFixture("wallclock.cc");
  run.AddFile("src/obs/wallclock_fixture.cc", content);
  run.AddFile("src/rt/wallclock_fixture.cc", content);
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, RngFiresAndSuppresses) {
  // Note the virtual basename must not start with "rng" (that spelling is
  // the seeded-helper exemption tested below).
  CheckRule("rng.cc", "src/core/randomness_fixture.cc", "rng");
}

TEST(LintRules, RngExemptInSeededHelpers) {
  LintRun run;
  run.SetRuleFilter("rng");
  run.AddFile("src/stats/rng.cc", ReadFixture("rng.cc"));
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, PtrHashFiresAndSuppresses) {
  CheckRule("ptr_hash.cc", "src/core/ptr_hash_fixture.cc", "ptr-hash");
}

TEST(LintRules, UnorderedIterFiresAndSuppresses) {
  CheckRule("unordered_iter.cc", "src/common/unordered_fixture.cc", "unordered-iter");
}

TEST(LintRules, RawNewFiresAndSuppresses) {
  CheckRule("raw_new.cc", "src/core/raw_new_fixture.cc", "raw-new");
}

TEST(LintRules, RawNewOnlyAppliesToEngineCode) {
  LintRun run;
  run.SetRuleFilter("raw-new");
  run.AddFile("tools/raw_new_fixture.cc", ReadFixture("raw_new.cc"));
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, StdoutFiresAndSuppresses) {
  CheckRule("stdout.cc", "src/core/stdout_fixture.cc", "stdout");
}

TEST(LintRules, StdoutOnlyAppliesToEngineCode) {
  LintRun run;
  run.SetRuleFilter("stdout");
  run.AddFile("bench/stdout_fixture.cc", ReadFixture("stdout.cc"));
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, ForkOverrideFiresAndSuppresses) {
  CheckRule("fork_override.cc", "src/core/fork_fixture.cc", "fork-override");
}

TEST(LintRules, IncludeGuardFiresOnWrongGuard) {
  CheckRule("include_guard.h", "src/core/guard_fixture.h", "include-guard");
}

TEST(LintRules, IncludeGuardAcceptsCanonicalGuardAndPragmaOnce) {
  LintRun run;
  run.SetRuleFilter("include-guard");
  run.AddFile("src/core/good.h",
              "#ifndef CEDAR_SRC_CORE_GOOD_H_\n#define CEDAR_SRC_CORE_GOOD_H_\n"
              "int V();\n#endif\n");
  run.AddFile("src/core/pragma.h", "#pragma once\nint V();\n");
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, IncludeGuardSuppressedFileWide) {
  CheckQuiet("include_guard_allowed.h", "src/core/guard_allowed_fixture.h", "include-guard");
}

TEST(LintRules, SelfContainedFiresOnMissingDirectInclude) {
  CheckRule("self_contained.h", "src/core/self_contained_fixture.h", "self-contained");
}

TEST(LintRules, SelfContainedSuppressedFileWide) {
  CheckQuiet("self_contained_allowed.h", "src/core/self_contained_allowed_fixture.h",
             "self-contained");
}

// The escape hatch accepts several rules in one marker.
TEST(LintRules, AllowListsMultipleRules) {
  LintRun run;
  run.AddFile("src/core/multi.cc",
              "#include <iostream>\n"
              "void F() {\n"
              "  // cedar-lint: allow(stdout, raw-new)\n"
              "  std::cout << *new int(3);\n"
              "}\n");
  EXPECT_TRUE(run.Run().empty());
}

// Rule tokens inside comments and string literals never fire.
TEST(LintRules, StrippingIgnoresCommentsAndStrings) {
  LintRun run;
  run.AddFile("src/core/strings.cc",
              "// calls rand() and system_clock::now() in prose\n"
              "const char* kText = \"rand() std::cout reinterpret_cast<uintptr_t>\";\n"
              "/* new int(3); delete p; for (auto& x : unordered) */\n");
  EXPECT_TRUE(run.Run().empty());
}

TEST(LintRules, AllRulesHaveKnownSlugs) {
  const std::vector<std::string>& rules = AllRules();
  EXPECT_EQ(rules.size(), 9u);
  for (const char* rule : {"wallclock", "rng", "ptr-hash", "unordered-iter", "raw-new",
                           "stdout", "fork-override", "include-guard", "self-contained"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end()) << rule;
  }
}

// ---- lockgraph pass --------------------------------------------------------

// Runs |rule| of the lockgraph pass alone over one fixture and checks the
// diagnostics land exactly on the marked lines (same contract as CheckRule).
void CheckLockgraphRule(const std::string& fixture, const std::string& virtual_path,
                        const std::string& rule) {
  SCOPED_TRACE(fixture + " as " + virtual_path + " rule=" + rule);
  const std::string content = ReadFixture(fixture);
  const std::set<int> expected = MarkedLines(content);
  ASSERT_FALSE(expected.empty()) << "fixture has no 'fires' markers";

  LockgraphRun run;
  run.SetRuleFilter(rule);
  run.AddFile(virtual_path, content);
  std::vector<Diagnostic> diagnostics = run.Run();

  std::set<int> reported;
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, rule);
    EXPECT_EQ(diagnostic.file, virtual_path);
    reported.insert(diagnostic.line);
  }
  EXPECT_EQ(reported, expected);
}

void CheckLockgraphQuiet(const std::string& fixture, const std::string& virtual_path,
                         const std::string& rule) {
  SCOPED_TRACE(fixture + " as " + virtual_path + " rule=" + rule);
  LockgraphRun run;
  run.SetRuleFilter(rule);
  run.AddFile(virtual_path, ReadFixture(fixture));
  for (const Diagnostic& diagnostic : run.Run()) {
    ADD_FAILURE() << diagnostic.ToString();
  }
}

TEST(LockgraphRules, CycleFiresOnBothWitnesses) {
  CheckLockgraphRule("lockgraph/cycle.cc", "src/core/cycle_fixture.cc", "lockgraph-cycle");
}

TEST(LockgraphRules, CycleSuppressedPerLine) {
  CheckLockgraphQuiet("lockgraph/cycle_allowed.cc", "src/core/cycle_allowed_fixture.cc",
                      "lockgraph-cycle");
}

TEST(LockgraphRules, CvWaitFiresWhileHoldingUnrelatedLock) {
  CheckLockgraphRule("lockgraph/cv_wait.cc", "src/core/cv_wait_fixture.cc",
                     "lockgraph-cv-wait");
}

TEST(LockgraphRules, CvWaitSuppressedPerLine) {
  CheckLockgraphQuiet("lockgraph/cv_wait_allowed.cc", "src/core/cv_wait_allowed_fixture.cc",
                      "lockgraph-cv-wait");
}

TEST(LockgraphRules, UnguardedFieldFiresOnBareWrite) {
  CheckLockgraphRule("lockgraph/unguarded_field.cc", "src/core/unguarded_fixture.cc",
                     "lockgraph-unguarded-field");
}

TEST(LockgraphRules, UnguardedFieldSuppressedPerLine) {
  CheckLockgraphQuiet("lockgraph/unguarded_field_allowed.cc",
                      "src/core/unguarded_allowed_fixture.cc", "lockgraph-unguarded-field");
}

TEST(LockgraphRules, RuleSlugsAreStable) {
  const std::vector<std::string>& rules = LockgraphRules();
  EXPECT_EQ(rules.size(), 3u);
  for (const char* rule :
       {"lockgraph-cycle", "lockgraph-cv-wait", "lockgraph-unguarded-field"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end()) << rule;
  }
}

// A CEDAR_REQUIRES clause on an out-of-line definition seeds the held-lock
// set, so a helper that writes guarded fields on behalf of a locked caller
// is not misread as a bare write (the wait-table store's EnforceCapacity
// shape).
TEST(LockgraphRules, RequiresClauseSeedsHeldLocks) {
  LockgraphRun run;
  run.AddFile("src/core/requires_fixture.cc",
              "#include <mutex>\n"
              "class Store {\n"
              " public:\n"
              "  void Locked() {\n"
              "    std::lock_guard<std::mutex> lock(mutex_);\n"
              "    ++entries_;\n"
              "  }\n"
              " private:\n"
              "  void Compact() CEDAR_REQUIRES(mutex_);\n"
              "  std::mutex mutex_;\n"
              "  long long entries_ = 0;\n"
              "};\n"
              "void Store::Compact() CEDAR_REQUIRES(mutex_) {\n"
              "  entries_ -= 1;\n"
              "}\n");
  for (const Diagnostic& diagnostic : run.Run()) {
    ADD_FAILURE() << diagnostic.ToString();
  }
}

// Regression: encoding-prefixed raw string literals (u8R"(...)") must not
// desync the lexer. The literal body holds an unbalanced '{' and a bare '"';
// if either leaked into the stripped text, scope tracking would derail and
// the bare write below the literal would be misattributed or lost.
TEST(LockgraphRules, PrefixedRawStringDoesNotDesyncScopes) {
  LockgraphRun run;
  run.SetRuleFilter("lockgraph-unguarded-field");
  run.AddFile("src/core/raw_string_fixture.cc",
              "#include <mutex>\n"
              "class Raw {\n"
              " public:\n"
              "  void Log() {\n"
              "    const char* query = u8R\"sql(SELECT \"x\" { FROM t)sql\";\n"
              "    (void)query;\n"
              "    ++count_;\n"
              "  }\n"
              "  void Bump() {\n"
              "    std::lock_guard<std::mutex> lock(mutex_);\n"
              "    ++count_;\n"
              "  }\n"
              " private:\n"
              "  std::mutex mutex_;\n"
              "  long long count_ = 0;\n"
              "};\n");
  std::vector<Diagnostic> diagnostics = run.Run();
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "lockgraph-unguarded-field");
  EXPECT_EQ(diagnostics[0].line, 7);
}

// The same lexer property, checked at the stripping layer: the raw body is
// blanked, surrounding code survives.
TEST(StripSource, PrefixedRawStringBodyIsBlanked) {
  StrippedSource stripped = StripSource(
      "int before = 1;\n"
      "const char* s = u8R\"(unbalanced { \" brace)\";\n"
      "int after = 2;\n");
  ASSERT_EQ(stripped.lines.size(), 3u);
  EXPECT_EQ(stripped.lines[0], "int before = 1;");
  EXPECT_EQ(stripped.lines[1].find('{'), std::string::npos);
  EXPECT_NE(stripped.lines[1].find("u8R"), std::string::npos);
  EXPECT_EQ(stripped.lines[2], "int after = 2;");
}

TEST(LockgraphTree, RepositoryIsCleanWhenSourcesPresent) {
  const std::string root = std::string(CEDAR_LINT_FIXTURE_DIR) + "/../..";
  int files_scanned = 0;
  std::vector<Diagnostic> diagnostics =
      LockgraphTree(root, {"src", "bench", "tools", "tests"}, "", &files_scanned);
  ASSERT_GT(files_scanned, 0);
  for (const Diagnostic& diagnostic : diagnostics) {
    ADD_FAILURE() << diagnostic.ToString();
  }
}

// The real tree must stay clean: the ctest-registered cedar_lint binary run
// enforces this too, but catching it here gives a friendlier failure inside
// the unit suite.
TEST(LintTree, RepositoryIsCleanWhenSourcesPresent) {
  const std::string root = std::string(CEDAR_LINT_FIXTURE_DIR) + "/../..";
  int files_scanned = 0;
  std::vector<Diagnostic> diagnostics =
      LintTree(root, {"src", "bench", "tools", "tests"}, "", &files_scanned);
  ASSERT_GT(files_scanned, 0);
  for (const Diagnostic& diagnostic : diagnostics) {
    ADD_FAILURE() << diagnostic.ToString();
  }
}

}  // namespace
}  // namespace lint
}  // namespace cedar
