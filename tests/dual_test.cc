#include "src/core/dual.h"

#include <gtest/gtest.h>

namespace cedar {
namespace {

TreeSpec MakeTree() {
  return TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.94, 0.55), 30,
                            std::make_shared<LogNormalDistribution>(2.94, 0.55), 30);
}

TEST(DualTest, SolutionAchievesTarget) {
  TreeSpec tree = MakeTree();
  DualSolution sol = SolveDeadlineForQuality(tree, 0.9, 2000.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.achieved_quality, 0.9 - 1e-3);
  EXPECT_LE(sol.deadline, 2000.0);
  EXPECT_GT(sol.deadline, 0.0);
}

TEST(DualTest, TighterTargetNeedsLongerDeadline) {
  TreeSpec tree = MakeTree();
  DualSolution lo = SolveDeadlineForQuality(tree, 0.5, 2000.0);
  DualSolution hi = SolveDeadlineForQuality(tree, 0.95, 2000.0);
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_LT(lo.deadline, hi.deadline);
}

TEST(DualTest, SolutionIsMinimal) {
  TreeSpec tree = MakeTree();
  DualSolution sol = SolveDeadlineForQuality(tree, 0.8, 2000.0, 1e-4);
  ASSERT_TRUE(sol.feasible);
  // Slightly below the returned deadline the target must not be met.
  double below = sol.deadline * 0.95;
  EXPECT_LT(MaxExpectedQuality(tree, below), 0.8 + 2e-2);
}

TEST(DualTest, InfeasibleTargetReported) {
  TreeSpec tree = MakeTree();
  // With a 5-unit cap (durations have median ~19) nothing close to 0.9 is
  // reachable.
  DualSolution sol = SolveDeadlineForQuality(tree, 0.9, 5.0);
  EXPECT_FALSE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.deadline, 5.0);
  EXPECT_LT(sol.achieved_quality, 0.9);
}

TEST(DualTest, DualityWithPrimal) {
  // q_n(SolveDeadline(x)) ~ x: the dual solution plugged back into the
  // primal recovers the target (the §6 dual-problem claim).
  TreeSpec tree = MakeTree();
  for (double target : {0.3, 0.6, 0.9}) {
    DualSolution sol = SolveDeadlineForQuality(tree, target, 3000.0, 1e-4);
    ASSERT_TRUE(sol.feasible) << "target=" << target;
    EXPECT_NEAR(MaxExpectedQuality(tree, sol.deadline), target, 0.02) << "target=" << target;
  }
}

TEST(DualDeathTest, RejectsBadTargets) {
  TreeSpec tree = MakeTree();
  EXPECT_DEATH(SolveDeadlineForQuality(tree, 0.0, 100.0), "target quality");
  EXPECT_DEATH(SolveDeadlineForQuality(tree, 1.0, 100.0), "target quality");
  EXPECT_DEATH(SolveDeadlineForQuality(tree, 0.5, 0.0), "max_deadline");
}

}  // namespace
}  // namespace cedar
