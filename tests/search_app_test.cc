#include "src/apps/search_service.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/policies.h"

namespace cedar {
namespace {

CorpusSpec SmallCorpus() {
  CorpusSpec spec;
  spec.num_documents = 2000;
  spec.vocabulary_size = 300;
  spec.terms_per_document = 25;
  spec.seed = 7;
  return spec;
}

TEST(SearchIndexTest, DocumentsPartitionedAcrossShards) {
  SearchIndex index(SmallCorpus(), 8);
  int64_t total = 0;
  for (int s = 0; s < index.num_shards(); ++s) {
    total += index.shard(s).num_documents();
  }
  EXPECT_EQ(total, 2000);
}

TEST(SearchIndexTest, ShardTopKScoresAreDescending) {
  SearchIndex index(SmallCorpus(), 8);
  Rng rng(1);
  auto query = index.SampleQuery(3, rng);
  auto hits = index.shard(0).TopK(query, 10, index);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(SearchIndexTest, ExactTopKEqualsMergedShardTopKs) {
  // Merging per-shard top-K lists is lossless for the global top-K when
  // every shard contributes at least K candidates (standard distributed
  // search invariant).
  SearchIndex index(SmallCorpus(), 4);
  Rng rng(2);
  for (int q = 0; q < 5; ++q) {
    auto query = index.SampleQuery(2 + q % 3, rng);
    auto exact = index.ExactTopK(query, 10);
    // Rebuild via a single-shard index over the same corpus: identical
    // document scores, so identical top-K doc sets.
    SearchIndex single(SmallCorpus(), 1);
    auto reference = single.ExactTopK(query, 10);
    ASSERT_EQ(exact.size(), reference.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact[i].doc_id, reference[i].doc_id) << "query " << q << " rank " << i;
      EXPECT_NEAR(exact[i].score, reference[i].score, 1e-9);
    }
  }
}

TEST(SearchIndexTest, IdfDecreasesWithFrequency) {
  SearchIndex index(SmallCorpus(), 4);
  // Term 0 is the most frequent under Zipf; a high-rank term is rarer.
  EXPECT_LT(index.Idf(0), index.Idf(250));
}

TEST(MergeTopKTest, DeduplicatesAndRanks) {
  std::vector<std::vector<SearchHit>> lists = {
      {{1, 5.0}, {2, 3.0}},
      {{2, 4.0}, {3, 2.0}},
  };
  auto merged = MergeTopK(lists, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].doc_id, 1);
  EXPECT_EQ(merged[1].doc_id, 2);
  EXPECT_DOUBLE_EQ(merged[1].score, 4.0);  // max over duplicates
}

TEST(RecallTest, Bounds) {
  std::vector<SearchHit> exact = {{1, 3.0}, {2, 2.0}, {3, 1.0}};
  EXPECT_DOUBLE_EQ(RecallAtK(exact, exact), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(exact, {}), 0.0);
  EXPECT_NEAR(RecallAtK(exact, {{2, 9.0}}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {}), 1.0);
}

class SearchServiceTest : public ::testing::Test {
 protected:
  SearchServiceTest()
      : index_(SmallCorpus(), 24),
        tree_(TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.5, 0.8), 6,
                                 std::make_shared<LogNormalDistribution>(2.0, 0.6), 4)) {}

  QueryRealization MakeRealization(uint64_t seed, uint64_t sequence = 1) {
    QueryTruth truth;
    truth.sequence = sequence;
    truth.stage_durations.push_back(tree_.stage(0).duration);
    truth.stage_durations.push_back(tree_.stage(1).duration);
    Rng rng(seed);
    return SampleRealization(tree_, truth, rng);
  }

  SearchIndex index_;
  TreeSpec tree_;
};

TEST_F(SearchServiceTest, GenerousDeadlinePerfectRecall) {
  SearchServiceConfig config;
  config.deadline = 1e5;
  SearchService service(&index_, tree_, config);
  Rng rng(3);
  auto query = index_.SampleQuery(3, rng);
  CedarPolicy cedar;
  auto outcome = service.RunQuery(cedar, query, MakeRealization(11));
  EXPECT_DOUBLE_EQ(outcome.recall, 1.0);
  EXPECT_DOUBLE_EQ(outcome.fraction_quality, 1.0);
  EXPECT_EQ(outcome.shards_included, 24);
}

TEST_F(SearchServiceTest, TightDeadlineLosesRecall) {
  SearchServiceConfig config;
  config.deadline = 15.0;  // stage latencies are ~12-25 units
  SearchService service(&index_, tree_, config);
  Rng rng(3);
  auto query = index_.SampleQuery(3, rng);
  FixedWaitPolicy fixed(5.0);
  auto outcome = service.RunQuery(fixed, query, MakeRealization(11));
  EXPECT_LT(outcome.fraction_quality, 1.0);
  EXPECT_LE(outcome.recall, 1.0);
}

TEST_F(SearchServiceTest, RecallTracksFractionQuality) {
  // Across a deadline sweep, recall and fraction quality should both be
  // non-decreasing (statistically) with the deadline on a fixed
  // realization.
  SearchServiceConfig config;
  config.deadline = 200.0;
  Rng rng(5);
  auto query = index_.SampleQuery(3, rng);
  double prev_recall = -1.0;
  for (double deadline : {30.0, 60.0, 120.0, 200.0}) {
    SearchServiceConfig sweep_config;
    sweep_config.deadline = deadline;
    SearchService service(&index_, tree_, sweep_config);
    CedarPolicy cedar;
    auto outcome = service.RunQuery(cedar, query, MakeRealization(13));
    EXPECT_GE(outcome.recall, prev_recall - 0.21) << "deadline " << deadline;
    prev_recall = std::max(prev_recall, outcome.recall);
  }
}

TEST_F(SearchServiceTest, CedarBeatsBaselineRecallOnAverage) {
  // Per-query latency variation: Cedar's adaptation should buy recall.
  SearchServiceConfig config;
  config.deadline = 60.0;
  SearchService service(&index_, tree_, config);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  Rng rng(21);
  double base_recall = 0.0;
  double cedar_recall = 0.0;
  const int kQueries = 15;
  for (int q = 0; q < kQueries; ++q) {
    // Per-query scale variation in the bottom stage.
    QueryTruth truth;
    truth.sequence = static_cast<uint64_t>(q + 1);
    double mu_q = 2.5 + 0.8 * rng.NextGaussian();
    truth.stage_durations.push_back(std::make_shared<LogNormalDistribution>(mu_q, 0.8));
    truth.stage_durations.push_back(tree_.stage(1).duration);
    Rng realization_rng = rng.Fork();
    auto realization = SampleRealization(tree_, truth, realization_rng);
    auto query = index_.SampleQuery(3, rng);
    base_recall += service.RunQuery(baseline, query, realization).recall;
    cedar_recall += service.RunQuery(cedar, query, realization).recall;
  }
  EXPECT_GE(cedar_recall, base_recall - 0.5) << "cedar should not lose recall on average";
}

TEST_F(SearchServiceTest, DeterministicReplay) {
  SearchServiceConfig config;
  config.deadline = 60.0;
  SearchService service(&index_, tree_, config);
  Rng rng(9);
  auto query = index_.SampleQuery(2, rng);
  CedarPolicy cedar;
  auto realization = MakeRealization(17);
  auto a = service.RunQuery(cedar, query, realization);
  auto b = service.RunQuery(cedar, query, realization);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_EQ(a.shards_included, b.shards_included);
}

TEST(SearchServiceDeathTest, FanoutMismatchDies) {
  SearchIndex index(SmallCorpus(), 10);
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(1.0), 3,
                                     std::make_shared<ExponentialDistribution>(1.0), 4);
  SearchServiceConfig config;
  config.deadline = 10.0;
  EXPECT_DEATH(SearchService(&index, tree, config), "cover every index shard");
}

}  // namespace
}  // namespace cedar
