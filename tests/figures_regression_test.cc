// Figure-regression suite: scaled-down versions of every figure experiment,
// asserting the qualitative invariants EXPERIMENTS.md reports. These guard
// the reproduction itself: a change that silently flips "who wins" or kills
// a trend fails here before anyone re-reads bench output.

#include <gtest/gtest.h>

#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/stats/fitting.h"
#include "src/trace/calibration.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

ExperimentConfig Config(double deadline, int queries = 40, uint64_t seed = 42) {
  ExperimentConfig config;
  config.deadline = deadline;
  config.num_queries = queries;
  config.seed = seed;
  return config;
}

TEST(FigureRegressionTest, Fig06_IdealGapShrinksWithDeadline) {
  auto workload = MakeFacebookWorkload(20, 20);
  ProportionalSplitPolicy baseline;
  OraclePolicy ideal;
  double prev_improvement = 1e9;
  for (double deadline : {500.0, 1500.0, 3000.0}) {
    auto result = RunExperiment(workload, {&baseline, &ideal}, Config(deadline));
    double improvement = result.ImprovementPercent("prop-split", "ideal");
    EXPECT_LT(improvement, prev_improvement) << "D=" << deadline;
    prev_improvement = improvement;
  }
  // The headline: >100% at the tight end (500s).
  auto tight = RunExperiment(workload, {&baseline, &ideal}, Config(500.0));
  EXPECT_GT(tight.ImprovementPercent("prop-split", "ideal"), 100.0);
}

TEST(FigureRegressionTest, Fig07_BaselineStuckBelowPointNineAtHugeDeadline) {
  auto workload = MakeFacebookWorkload(20, 20);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(3000.0));
  EXPECT_LT(result.Outcome("prop-split").MeanQuality(), 0.93);
  EXPECT_GT(result.Outcome("cedar").MeanQuality(),
            result.Outcome("prop-split").MeanQuality());
}

TEST(FigureRegressionTest, Fig08_MostQueriesImproveSubstantially) {
  auto workload = MakeFacebookWorkload(20, 20);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(1000.0, 60));
  auto improvements = result.PerQueryImprovementPercent("prop-split", "cedar", 0.05);
  ASSERT_FALSE(improvements.empty());
  int above_50 = 0;
  for (double improvement : improvements) {
    if (improvement > 50.0) {
      ++above_50;
    }
  }
  EXPECT_GT(static_cast<double>(above_50) / static_cast<double>(improvements.size()), 0.3);
}

TEST(FigureRegressionTest, Fig12_GainsGrowWithFanout) {
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto small = MakeFacebookWorkload(5, 5);
  auto large = MakeFacebookWorkload(30, 30);
  double small_improvement =
      RunExperiment(small, {&baseline, &cedar}, Config(1000.0))
          .ImprovementPercent("prop-split", "cedar");
  double large_improvement =
      RunExperiment(large, {&baseline, &cedar}, Config(1000.0))
          .ImprovementPercent("prop-split", "cedar");
  EXPECT_GT(large_improvement, small_improvement + 5.0);
}

TEST(FigureRegressionTest, Fig15_CosmosOptimizerAloneBeatsBaseline) {
  auto workload = MakeCosmosWorkload(20, 20);
  ProportionalSplitPolicy baseline;
  OfflineOptimalPolicy cedar_offline;
  CedarPolicy cedar;
  auto result =
      RunExperiment(workload, {&baseline, &cedar_offline, &cedar}, Config(75.0, 60));
  EXPECT_GT(result.ImprovementPercent("prop-split", "cedar-offline"), 20.0);
  // Stationary workload: learning is not in play, cedar == cedar-offline.
  EXPECT_NEAR(result.Outcome("cedar").MeanQuality(),
              result.Outcome("cedar-offline").MeanQuality(), 0.02);
}

TEST(FigureRegressionTest, Fig16_GainsGrowWithSigma) {
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto low = MakeGoogleSigmaWorkload(1.40, 30, 30);
  auto high = MakeGoogleSigmaWorkload(1.70, 30, 30);
  double low_improvement = RunExperiment(low, {&baseline, &cedar}, Config(150.0))
                               .ImprovementPercent("prop-split", "cedar");
  double high_improvement = RunExperiment(high, {&baseline, &cedar}, Config(150.0))
                                .ImprovementPercent("prop-split", "cedar");
  EXPECT_GT(high_improvement, low_improvement);
}

TEST(FigureRegressionTest, Fig17_GaussianHighAbsoluteQualityModestGains) {
  GaussianWorkload workload(30, 30);
  ProportionalSplitPolicy baseline;
  CedarPolicyOptions options;
  options.learner.family = DistributionFamily::kNormal;
  CedarPolicy cedar(options);
  auto result = RunExperiment(workload, {&baseline, &cedar}, Config(240.0, 60));
  double improvement = result.ImprovementPercent("prop-split", "cedar");
  EXPECT_GT(improvement, 3.0);
  EXPECT_LT(improvement, 40.0) << "normal tails are light: gains stay modest";
  EXPECT_GT(result.Outcome("cedar").MeanQuality(), 0.9);
}

TEST(FigureRegressionTest, Fig04_BingFitKolmogorovSmirnov) {
  // The published Bing fit should be consistent with samples drawn from
  // itself (sanity of the KS utility + the calibration constants).
  LogNormalDistribution bing(kBingMu, kBingSigma);
  Rng rng(3);
  std::vector<double> samples(5000);
  for (auto& s : samples) {
    s = bing.Sample(rng);
  }
  EXPECT_LT(KolmogorovSmirnovStatistic(samples, bing), 0.025);
  // And clearly inconsistent with a different fit.
  LogNormalDistribution other(kBingMu + 1.0, kBingSigma);
  EXPECT_GT(KolmogorovSmirnovStatistic(samples, other), 0.2);
}

TEST(FigureRegressionTest, SyntheticWorkloadMarginalMatchesOfflineFit) {
  // The offline tree's marginal fit must describe the across-query pooled
  // samples: the property that justifies handing it to Proportional-split
  // as "learned statistics". For normal mu-mixing (no exponential tail)
  // the marginal is exactly log-normal, so KS should be tiny.
  auto workload = MakeGoogleSigmaWorkload(1.5, 10, 10);
  TreeSpec offline = workload.OfflineTree();
  Rng rng(5);
  std::vector<double> pooled;
  for (int q = 0; q < 200; ++q) {
    auto truth = workload.DrawQuery(rng);
    for (int i = 0; i < 25; ++i) {
      pooled.push_back(truth.stage_durations[0]->Sample(rng));
    }
  }
  EXPECT_LT(KolmogorovSmirnovStatistic(pooled, *offline.stage(0).duration), 0.03);

  // With the heavy job tail (the Facebook-style mix) the mean/median-
  // matched fit deliberately distorts the body to capture the tail's mean
  // (DESIGN.md §6.5); the KS distance is visible but bounded.
  auto tailed = MakeInteractiveWorkload(10, 10);
  TreeSpec tailed_offline = tailed.OfflineTree();
  std::vector<double> tailed_pooled;
  for (int q = 0; q < 200; ++q) {
    auto truth = tailed.DrawQuery(rng);
    for (int i = 0; i < 25; ++i) {
      tailed_pooled.push_back(truth.stage_durations[0]->Sample(rng));
    }
  }
  EXPECT_LT(KolmogorovSmirnovStatistic(tailed_pooled, *tailed_offline.stage(0).duration), 0.25);
}

}  // namespace
}  // namespace cedar
