#include "src/cluster/cluster_runtime.h"

#include <gtest/gtest.h>

#include "src/cluster/experiment.h"
#include "src/core/policies.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

TreeSpec SmallTree(int k1 = 4, int k2 = 3) {
  return TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), k1,
                            std::make_shared<LogNormalDistribution>(2.0, 0.5), k2);
}

QueryTruth TruthOf(const TreeSpec& tree, uint64_t sequence = 1) {
  QueryTruth truth;
  truth.sequence = sequence;
  for (const auto& stage : tree.stages()) {
    truth.stage_durations.push_back(stage.duration);
  }
  return truth;
}

ClusterSpec TinyCluster(int machines, int slots) {
  ClusterSpec cluster;
  cluster.machines = machines;
  cluster.slots_per_machine = slots;
  return cluster;
}

TEST(ClusterRuntimeTest, SingleWaveMatchesTreeSimulation) {
  // With at least as many slots as tasks there is no queueing, so the
  // cluster engine must agree exactly with the analytic simulator.
  TreeSpec tree = SmallTree();
  Rng rng(3);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);

  TreeSimulation sim(tree, 60.0);
  ClusterRuntime cluster(TinyCluster(4, 3), tree, 60.0);  // 12 slots for 12 tasks

  for (const WaitPolicy* policy : std::initializer_list<const WaitPolicy*>{
           new FixedWaitPolicy(20.0), new ProportionalSplitPolicy(), new CedarPolicy()}) {
    QueryResult expected = sim.RunQuery(*policy, realization);
    ClusterQueryResult actual = cluster.RunQuery(*policy, realization);
    EXPECT_DOUBLE_EQ(actual.quality, expected.quality) << policy->name();
    EXPECT_EQ(actual.root_arrivals_in_time, expected.root_arrivals_in_time) << policy->name();
    delete policy;
  }
}

TEST(ClusterRuntimeTest, WaveCountReported) {
  TreeSpec tree = SmallTree(10, 4);  // 40 tasks
  ClusterRuntime cluster(TinyCluster(2, 5), tree, 200.0);  // 10 slots
  Rng rng(5);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  FixedWaitPolicy policy(150.0);
  ClusterQueryResult result = cluster.RunQuery(policy, realization);
  EXPECT_EQ(result.waves, 4);
  EXPECT_EQ(result.tasks_launched, 40);
}

TEST(ClusterRuntimeTest, QueueingDelaysArrivals) {
  // Same realization on an ample vs a tiny cluster: the tiny cluster's
  // makespan must be strictly larger (tasks wait for slots).
  TreeSpec tree = SmallTree(10, 4);
  Rng rng(7);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  FixedWaitPolicy policy(1e5);
  ClusterRuntime ample(TinyCluster(40, 1), tree, 2e5);
  ClusterRuntime tiny(TinyCluster(2, 2), tree, 2e5);
  ClusterQueryResult fast = ample.RunQuery(policy, realization);
  ClusterQueryResult slow = tiny.RunQuery(policy, realization);
  EXPECT_GT(slow.makespan, fast.makespan);
  // Both eventually deliver everything under the huge deadline.
  EXPECT_DOUBLE_EQ(fast.quality, 1.0);
  EXPECT_DOUBLE_EQ(slow.quality, 1.0);
}

TEST(ClusterRuntimeTest, DeterministicReplay) {
  TreeSpec tree = SmallTree(8, 3);
  ClusterRuntime cluster(TinyCluster(3, 3), tree, 80.0);
  Rng rng(11);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  CedarPolicy cedar;
  ClusterQueryResult a = cluster.RunQuery(cedar, realization);
  ClusterQueryResult b = cluster.RunQuery(cedar, realization);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_launched, b.tasks_launched);
}

TEST(ClusterRuntimeTest, SpeculationLaunchesAndAccountsClones) {
  // One monster task; speculation should clone it once slots idle.
  TreeSpec tree = SmallTree(6, 1);
  QueryRealization realization;
  realization.truth = TruthOf(tree);
  realization.stage_durations = {{1.0, 1.0, 1.0, 1.0, 1.0, 500.0}, {1.0}};

  ClusterRunOptions options;
  options.speculation.enabled = true;
  options.speculation.slowdown_threshold = 2.0;
  ClusterRuntime cluster(TinyCluster(6, 1), tree, 1000.0, options);
  FixedWaitPolicy policy(900.0);
  ClusterQueryResult result = cluster.RunQuery(policy, realization);
  EXPECT_GE(result.clones_launched, 1);
  // The clone redraws from lognormal(2.0, 0.8) (median ~7.4), so it should
  // beat the 500-unit straggler and the job completes early.
  EXPECT_EQ(result.clones_won, 1);
  EXPECT_LT(result.makespan, 500.0);
  EXPECT_DOUBLE_EQ(result.quality, 1.0);
}

TEST(ClusterRuntimeTest, SpeculationDisabledLaunchesNoClones) {
  TreeSpec tree = SmallTree(6, 1);
  QueryRealization realization;
  realization.truth = TruthOf(tree);
  realization.stage_durations = {{1.0, 1.0, 1.0, 1.0, 1.0, 500.0}, {1.0}};
  ClusterRuntime cluster(TinyCluster(6, 1), tree, 1000.0);
  FixedWaitPolicy policy(900.0);
  ClusterQueryResult result = cluster.RunQuery(policy, realization);
  EXPECT_EQ(result.clones_launched, 0);
  EXPECT_GE(result.makespan, 500.0);
}

TEST(ClusterRuntimeTest, SlowMachinesStretchTasks) {
  // All machines slow by 3x: with a fixed wait shorter than the stretched
  // durations, fewer outputs are collected than on a healthy cluster.
  TreeSpec tree = SmallTree(10, 4);
  Rng rng(21);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  FixedWaitPolicy policy(30.0);

  ClusterSpec healthy = TinyCluster(10, 4);
  ClusterSpec degraded = TinyCluster(10, 4);
  degraded.slow_machine_fraction = 1.0;
  degraded.slow_machine_factor = 3.0;

  ClusterRuntime fast(healthy, tree, 500.0);
  ClusterRuntime slow(degraded, tree, 500.0);
  ClusterQueryResult fast_result = fast.RunQuery(policy, realization);
  ClusterQueryResult slow_result = slow.RunQuery(policy, realization);
  EXPECT_LT(slow_result.quality, fast_result.quality);
  EXPECT_GT(slow_result.makespan, fast_result.makespan);
}

TEST(ClusterSpecTest, SlotSpeedFactorMapsMachines) {
  ClusterSpec spec;
  spec.machines = 10;
  spec.slots_per_machine = 2;
  spec.slow_machine_fraction = 0.3;  // machines 0,1,2 slow
  spec.slow_machine_factor = 5.0;
  EXPECT_EQ(spec.SlowMachines(), 3);
  EXPECT_DOUBLE_EQ(spec.SlotSpeedFactor(0), 5.0);   // machine 0
  EXPECT_DOUBLE_EQ(spec.SlotSpeedFactor(5), 5.0);   // machine 2
  EXPECT_DOUBLE_EQ(spec.SlotSpeedFactor(6), 1.0);   // machine 3
  EXPECT_DOUBLE_EQ(spec.SlotSpeedFactor(19), 1.0);  // machine 9
}

TEST(ClusterRuntimeTest, SpeculationEscapesSlowMachines) {
  // A hot spot slows 25% of machines by 8x; speculation re-runs stragglers
  // and clones can land on healthy slots, improving quality.
  TreeSpec tree = SmallTree(10, 8);  // 80 tasks
  Rng rng(31);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);

  ClusterSpec spotty = TinyCluster(25, 4);  // 100 slots: some idle for clones
  spotty.slow_machine_fraction = 0.25;
  spotty.slow_machine_factor = 8.0;

  FixedWaitPolicy policy(400.0);
  ClusterRuntime plain(spotty, tree, 500.0);
  ClusterRunOptions with_spec;
  with_spec.speculation.enabled = true;
  with_spec.speculation.max_clones = 64;
  ClusterRuntime speculative(spotty, tree, 500.0, with_spec);

  ClusterQueryResult plain_result = plain.RunQuery(policy, realization);
  ClusterQueryResult spec_result = speculative.RunQuery(policy, realization);
  EXPECT_GT(spec_result.clones_launched, 0);
  EXPECT_GE(spec_result.quality, plain_result.quality);
  EXPECT_LE(spec_result.makespan, plain_result.makespan + 1e-9);
}

TEST(ClusterExperimentTest, RunsPairedPolicies) {
  auto workload = MakeFacebookWorkload(5, 4);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  ClusterExperimentConfig config;
  config.cluster = TinyCluster(5, 4);
  config.deadline = 500.0;
  config.num_queries = 10;
  config.seed = 3;
  auto result = RunClusterExperiment(workload, {&baseline, &cedar}, config);
  EXPECT_EQ(result.Outcome("cedar").quality.size(), 10u);
  EXPECT_EQ(result.Outcome("prop-split").quality.size(), 10u);
  EXPECT_EQ(result.waves, 1);
}

TEST(ClusterExperimentDeathTest, DuplicateNamesDie) {
  auto workload = MakeFacebookWorkload(4, 4);
  CedarPolicy a;
  CedarPolicy b;
  ClusterExperimentConfig config;
  config.deadline = 100.0;
  config.num_queries = 1;
  EXPECT_DEATH(RunClusterExperiment(workload, {&a, &b}, config), "duplicate");
}

}  // namespace
}  // namespace cedar
