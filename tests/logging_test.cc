#include "src/common/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Restores the global threshold so tests cannot leak severity changes.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetMinLogSeverity(); }
  void TearDown() override { SetMinLogSeverity(saved_); }

 private:
  LogSeverity saved_ = LogSeverity::kInfo;
};

TEST_F(LoggingTest, ParseAcceptsNames) {
  EXPECT_EQ(ParseLogSeverity("debug", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("info", LogSeverity::kFatal), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("warning", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("error", LogSeverity::kFatal), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("fatal", LogSeverity::kInfo), LogSeverity::kFatal);
}

TEST_F(LoggingTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseLogSeverity("DEBUG", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("Warning", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("ERROR", LogSeverity::kFatal), LogSeverity::kError);
}

TEST_F(LoggingTest, ParseAcceptsNumericLevels) {
  EXPECT_EQ(ParseLogSeverity("0", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("1", LogSeverity::kFatal), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("2", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("3", LogSeverity::kFatal), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("4", LogSeverity::kInfo), LogSeverity::kFatal);
}

TEST_F(LoggingTest, ParseFallsBackOnBadInput) {
  EXPECT_EQ(ParseLogSeverity(nullptr, LogSeverity::kWarning), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("", LogSeverity::kWarning), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("verbose", LogSeverity::kError), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("5", LogSeverity::kInfo), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("-1", LogSeverity::kInfo), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("debugger", LogSeverity::kInfo), LogSeverity::kInfo);
}

TEST_F(LoggingTest, ThresholdGatesLogStatements) {
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);
  // A suppressed statement must not evaluate its streamed expressions.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  CEDAR_LOG(DEBUG) << count();
  CEDAR_LOG(INFO) << count();
  EXPECT_EQ(evaluations, 0);

  SetMinLogSeverity(LogSeverity::kDebug);
  CEDAR_LOG(DEBUG) << "visible at debug threshold: " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ThresholdIsSafeToFlipConcurrently) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) {
        if (t % 2 == 0) {
          SetMinLogSeverity(i % 2 == 0 ? LogSeverity::kInfo : LogSeverity::kWarning);
        } else {
          int severity = static_cast<int>(GetMinLogSeverity());
          EXPECT_GE(severity, static_cast<int>(LogSeverity::kDebug));
          EXPECT_LE(severity, static_cast<int>(LogSeverity::kFatal));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace
}  // namespace cedar
