#include "src/common/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Restores the global threshold so tests cannot leak severity changes.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetMinLogSeverity(); }
  void TearDown() override { SetMinLogSeverity(saved_); }

 private:
  LogSeverity saved_ = LogSeverity::kInfo;
};

TEST_F(LoggingTest, ParseAcceptsNames) {
  EXPECT_EQ(ParseLogSeverity("debug", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("info", LogSeverity::kFatal), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("warning", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("error", LogSeverity::kFatal), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("fatal", LogSeverity::kInfo), LogSeverity::kFatal);
}

TEST_F(LoggingTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseLogSeverity("DEBUG", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("Warning", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("ERROR", LogSeverity::kFatal), LogSeverity::kError);
}

TEST_F(LoggingTest, ParseAcceptsNumericLevels) {
  EXPECT_EQ(ParseLogSeverity("0", LogSeverity::kFatal), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("1", LogSeverity::kFatal), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("2", LogSeverity::kFatal), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("3", LogSeverity::kFatal), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("4", LogSeverity::kInfo), LogSeverity::kFatal);
}

TEST_F(LoggingTest, ParseFallsBackOnBadInput) {
  EXPECT_EQ(ParseLogSeverity(nullptr, LogSeverity::kWarning), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("", LogSeverity::kWarning), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("verbose", LogSeverity::kError), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("5", LogSeverity::kInfo), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("-1", LogSeverity::kInfo), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("debugger", LogSeverity::kInfo), LogSeverity::kInfo);
}

TEST_F(LoggingTest, ThresholdGatesLogStatements) {
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);
  // A suppressed statement must not evaluate its streamed expressions.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  CEDAR_LOG(DEBUG) << count();
  CEDAR_LOG(INFO) << count();
  EXPECT_EQ(evaluations, 0);

  SetMinLogSeverity(LogSeverity::kDebug);
  CEDAR_LOG(DEBUG) << "visible at debug threshold: " << count();
  EXPECT_EQ(evaluations, 1);
}

// CEDAR_CHECK* failure paths: the process must abort and the fatal message
// must carry both the stringified condition and the streamed operands, or
// postmortems lose the one clue they get. "threadsafe" style re-execs the
// death-test child so the fork is safe despite this binary's threaded tests.
class LoggingDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LoggingDeathTest, CheckAbortsWithConditionAndStreamedMessage) {
  int connections = -3;
  EXPECT_DEATH(CEDAR_CHECK(connections >= 0) << "connections=" << connections,
               "Check failed: connections >= 0 .*connections=-3");
}

TEST_F(LoggingDeathTest, CheckEqAbortsWithBothOperands) {
  int want = 4;
  int got = 9;
  EXPECT_DEATH(CEDAR_CHECK_EQ(want, got) << "while merging shards",
               "Check failed: .*\\(4 vs 9\\) while merging shards");
}

TEST_F(LoggingDeathTest, CheckComparisonsAbortWithOperands) {
  EXPECT_DEATH(CEDAR_CHECK_NE(5, 5), "\\(5 vs 5\\)");
  EXPECT_DEATH(CEDAR_CHECK_LT(2.5, 1.5), "\\(2.5 vs 1.5\\)");
  EXPECT_DEATH(CEDAR_CHECK_LE(3, 2), "\\(3 vs 2\\)");
  EXPECT_DEATH(CEDAR_CHECK_GT(1, 2), "\\(1 vs 2\\)");
  EXPECT_DEATH(CEDAR_CHECK_GE(-1, 0), "\\(-1 vs 0\\)");
}

TEST_F(LoggingDeathTest, CheckNearAbortsWithOperands) {
  EXPECT_DEATH(CEDAR_CHECK_NEAR(1.0, 2.0, 0.25), "\\(1 vs 2\\)");
}

TEST_F(LoggingDeathTest, LogFatalAborts) {
  EXPECT_DEATH(CEDAR_LOG(FATAL) << "unreachable state " << 17, "unreachable state 17");
}

TEST_F(LoggingDeathTest, FatalIgnoresSeverityThreshold) {
  // Even a threshold above every level cannot swallow FATAL: the severity
  // enum tops out at kFatal, so FATAL statements always flush and abort.
  SetMinLogSeverity(LogSeverity::kFatal);
  EXPECT_DEATH(CEDAR_LOG(FATAL) << "still fatal", "still fatal");
  SetMinLogSeverity(LogSeverity::kInfo);
}

TEST_F(LoggingDeathTest, PassingChecksDoNotAbortAndSkipStreaming) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  CEDAR_CHECK(true) << "never evaluated: " << count();
  CEDAR_CHECK_EQ(2, 2) << count();
  CEDAR_CHECK_NEAR(1.0, 1.0, 1e-12) << count();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, ThresholdIsSafeToFlipConcurrently) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) {
        if (t % 2 == 0) {
          SetMinLogSeverity(i % 2 == 0 ? LogSeverity::kInfo : LogSeverity::kWarning);
        } else {
          int severity = static_cast<int>(GetMinLogSeverity());
          EXPECT_GE(severity, static_cast<int>(LogSeverity::kDebug));
          EXPECT_LE(severity, static_cast<int>(LogSeverity::kFatal));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace
}  // namespace cedar
