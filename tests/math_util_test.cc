#include "src/common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(LerpTest, Endpoints) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.5), 6.0);
}

TEST(LerpTest, ExtrapolatesBeyondUnitInterval) {
  EXPECT_DOUBLE_EQ(Lerp(0.0, 1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(0.0, 1.0, -1.0), -1.0);
}

TEST(ClampTest, Basic) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(LogBinomialTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(50, 25)), 1.2641060643775244e14, 1e6);
}

TEST(LogBinomialTest, Symmetry) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogBinomial(n, k), LogBinomial(n, n - k), 1e-9);
    }
  }
}

TEST(IntegrateTest, Polynomial) {
  // Integral of x^2 over [0, 3] = 9.
  double v = IntegrateAdaptiveSimpson([](double x) { return x * x; }, 0.0, 3.0);
  EXPECT_NEAR(v, 9.0, 1e-9);
}

TEST(IntegrateTest, ReversedIntervalIsNegative) {
  double fwd = IntegrateAdaptiveSimpson([](double x) { return x; }, 0.0, 2.0);
  double rev = IntegrateAdaptiveSimpson([](double x) { return x; }, 2.0, 0.0);
  EXPECT_NEAR(fwd, 2.0, 1e-10);
  EXPECT_NEAR(rev, -2.0, 1e-10);
}

TEST(IntegrateTest, EmptyInterval) {
  EXPECT_DOUBLE_EQ(IntegrateAdaptiveSimpson([](double x) { return x; }, 1.0, 1.0), 0.0);
}

TEST(IntegrateTest, SmoothGaussianBody) {
  // Integral of e^{-x^2} over [-6, 6] = sqrt(pi) (tails negligible).
  double v = IntegrateAdaptiveSimpson([](double x) { return std::exp(-x * x); }, -6.0, 6.0);
  EXPECT_NEAR(v, std::sqrt(M_PI), 1e-8);
}

TEST(FindRootTest, FindsSqrtTwo) {
  double root = FindRootBisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(FindRootTest, RootAtEndpoint) {
  EXPECT_DOUBLE_EQ(FindRootBisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(FindRootBisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(PiecewiseLinearTest, UniformInterpolation) {
  auto f = PiecewiseLinear::FromUniform(0.0, 1.0, {0.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.0), 10.0);
  EXPECT_DOUBLE_EQ(f(1.75), 17.5);
  EXPECT_DOUBLE_EQ(f(2.0), 20.0);
}

TEST(PiecewiseLinearTest, FlatExtrapolation) {
  auto f = PiecewiseLinear::FromUniform(1.0, 1.0, {3.0, 7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(-100.0), 3.0);
  EXPECT_DOUBLE_EQ(f(2.5), 7.0);
  EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinearTest, NonUniformGrid) {
  PiecewiseLinear f({0.0, 1.0, 10.0}, {0.0, 1.0, 10.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f(5.5), 5.5);
  EXPECT_DOUBLE_EQ(f.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(f.max_x(), 10.0);
}

TEST(PiecewiseLinearTest, UniformMatchesNonUniform) {
  std::vector<double> ys = {1.0, 4.0, 9.0, 16.0, 25.0};
  auto uniform = PiecewiseLinear::FromUniform(2.0, 0.5, ys);
  PiecewiseLinear general({2.0, 2.5, 3.0, 3.5, 4.0}, ys);
  for (double x = 1.5; x <= 4.5; x += 0.05) {
    EXPECT_NEAR(uniform(x), general(x), 1e-12) << "x=" << x;
  }
}

TEST(QuantileOfSortedTest, Endpoints) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 0.5), 2.5);
}

TEST(QuantileOfSortedTest, SingleElement) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 0.3), 7.0);
}

TEST(QuantileOfSortedTest, InterpolatesType7) {
  // numpy.percentile([10, 20, 30], 25) == 15.
  std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 0.25), 15.0);
  EXPECT_DOUBLE_EQ(QuantileOfSorted(v, 0.75), 25.0);
}

}  // namespace
}  // namespace cedar
