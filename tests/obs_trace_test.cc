// Tests for the query-lifecycle tracing layer: collector semantics,
// QueryTraceBuilder batching, engine integration, and — the acceptance bar —
// strict validation that the exported Chrome trace_event JSON parses and
// carries one top-level span per (query, policy) run with the hold/fold
// outcome and inclusion fraction as span args. The JSON check uses a small
// strict recursive-descent parser defined below, not substring matching.

#include "src/obs/trace.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/experiment.h"
#include "src/common/csv.h"
#include "src/core/policies.h"
#include "src/obs/query_trace.h"
#include "src/sim/experiment.h"
#include "src/sim/experiment_engine.h"
#include "src/sim/workload.h"

namespace cedar {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (objects, arrays, strings, numbers, literals).
// Rejects trailing garbage, unterminated structures, and bad escapes, so a
// malformed writer cannot sneak past the tests.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing JSON key: " << key;
    static const JsonValue kNullValue;
    return it != object.end() ? it->second : kNullValue;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the full input; sets ok() false on any syntax error.
  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
    }
    return value;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + expected + "'");
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    if (!ok_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return {};
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return ParseNumber();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return {};
    }
    Fail("unexpected character");
    return {};
  }

  JsonValue ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (ok_) {
      JsonValue key = ParseString();
      Consume(':');
      value.object[key.string] = ParseValue();
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipWhitespace();
        continue;
      }
      Consume('}');
      break;
    }
    return value;
  }

  JsonValue ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (ok_) {
      value.array.push_back(ParseValue());
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      break;
    }
    return value;
  }

  JsonValue ParseString() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return value;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          Fail("unterminated escape");
          return value;
        }
        char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"': value.string += '"'; break;
          case '\\': value.string += '\\'; break;
          case '/': value.string += '/'; break;
          case 'n': value.string += '\n'; break;
          case 't': value.string += '\t'; break;
          case 'r': value.string += '\r'; break;
          case 'b': value.string += '\b'; break;
          case 'f': value.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              Fail("bad \\u escape");
              return value;
            }
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else { Fail("bad \\u escape digit"); return value; }
            }
            pos_ += 4;
            // The writer only emits \u00xx for control bytes.
            value.string += static_cast<char>(code & 0xff);
            break;
          }
          default:
            Fail("unknown escape");
            return value;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return value;
      } else {
        value.string += c;
        ++pos_;
      }
    }
    if (!Consume('"')) {
      Fail("unterminated string");
    }
    return value;
  }

  JsonValue ParseNumber() {
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      Fail("bad number");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

JsonValue ParseJsonOrFail(const std::string& text) {
  JsonParser parser(text);
  JsonValue value = parser.Parse();
  EXPECT_TRUE(parser.ok()) << parser.error();
  return value;
}

std::string ChromeJsonString(const TraceCollector& collector) {
  std::ostringstream out;
  collector.WriteChromeJson(out);
  return out.str();
}

// Validates the envelope and per-event schema; returns the traceEvents array.
JsonValue ValidatedTraceEvents(const TraceCollector& collector) {
  JsonValue root = ParseJsonOrFail(ChromeJsonString(collector));
  EXPECT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(root.At("displayTimeUnit").string, "ms");
  const JsonValue events = root.At("traceEvents");
  EXPECT_EQ(events.kind, JsonValue::Kind::kArray);
  for (const JsonValue& event : events.array) {
    EXPECT_EQ(event.kind, JsonValue::Kind::kObject);
    EXPECT_EQ(event.At("name").kind, JsonValue::Kind::kString);
    EXPECT_EQ(event.At("cat").kind, JsonValue::Kind::kString);
    EXPECT_EQ(event.At("ts").kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(event.At("pid").number, 1.0);
    EXPECT_EQ(event.At("tid").kind, JsonValue::Kind::kNumber);
    const std::string& phase = event.At("ph").string;
    EXPECT_TRUE(phase == "X" || phase == "i") << "unexpected phase " << phase;
    if (phase == "X") {
      EXPECT_TRUE(event.Has("dur"));
      EXPECT_GE(event.At("dur").number, 0.0);
    } else {
      EXPECT_EQ(event.At("s").string, "t");
    }
  }
  return events;
}

StationaryWorkload SmallWorkload() {
  return StationaryWorkload(
      "obs-test", "s",
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 5,
                         std::make_shared<LogNormalDistribution>(2.0, 0.6), 4));
}

// ---------------------------------------------------------------------------
// Collector semantics.

TEST(TraceCollectorTest, SnapshotSortsByTrackThenTime) {
  TraceCollector collector;
  TraceEvent a;
  a.name = "late";
  a.track = 2;
  a.ts = 5.0;
  TraceEvent b;
  b.name = "early";
  b.track = 2;
  b.ts = 1.0;
  TraceEvent c;
  c.name = "first_track";
  c.track = 1;
  c.ts = 9.0;
  collector.Emit(a);
  collector.Emit(b);
  collector.Emit(c);

  auto events = collector.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "first_track");
  EXPECT_EQ(events[1].name, "early");
  EXPECT_EQ(events[2].name, "late");

  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceCollectorTest, ChromeJsonValidatesStrictly) {
  TraceCollector collector;
  TraceEvent span;
  span.name = "query";
  span.category = "lifecycle";
  span.phase = 'X';
  span.ts = 0.0;
  span.dur = 42.5;
  span.track = 7;
  span.args = {TraceArg::Str("outcome", "hold"), TraceArg::Num("inclusion_fraction", 0.95)};
  TraceEvent instant;
  instant.name = "arrival";
  instant.category = "lifecycle";
  instant.phase = 'i';
  instant.ts = 3.25;
  instant.track = 7;
  collector.Emit(span);
  collector.Emit(instant);

  JsonValue events = ValidatedTraceEvents(collector);
  ASSERT_EQ(events.array.size(), 2u);
  const JsonValue& json_span = events.array[0];
  EXPECT_EQ(json_span.At("name").string, "query");
  EXPECT_EQ(json_span.At("ph").string, "X");
  EXPECT_DOUBLE_EQ(json_span.At("dur").number, 42.5);
  EXPECT_EQ(json_span.At("args").At("outcome").string, "hold");
  EXPECT_DOUBLE_EQ(json_span.At("args").At("inclusion_fraction").number, 0.95);
}

TEST(TraceCollectorTest, JsonEscapingRoundTrips) {
  TraceCollector collector;
  TraceEvent event;
  event.name = "weird \"name\"\twith\nnewline\\backslash";
  event.category = std::string("ctl\x01", 4);
  event.phase = 'i';
  event.track = 1;
  event.args = {TraceArg::Str("key \"quoted\"", "value\\with\tescapes")};
  collector.Emit(event);

  JsonValue events = ValidatedTraceEvents(collector);
  ASSERT_EQ(events.array.size(), 1u);
  EXPECT_EQ(events.array[0].At("name").string, event.name);
  EXPECT_EQ(events.array[0].At("cat").string, event.category);
  EXPECT_EQ(events.array[0].At("args").At("key \"quoted\"").string, "value\\with\tescapes");
}

TEST(TraceCollectorTest, CsvExportListsEveryEvent) {
  TraceCollector collector;
  TraceEvent span;
  span.name = "query";
  span.category = "lifecycle";
  span.phase = 'X';
  span.dur = 10.0;
  span.track = 3;
  span.args = {TraceArg::Num("inclusion_fraction", 1.0)};
  TraceEvent instant;
  instant.name = "arrival";
  instant.category = "lifecycle";
  instant.ts = 2.0;
  instant.track = 3;
  collector.Emit(instant);
  collector.Emit(span);

  std::string path = ::testing::TempDir() + "/cedar_trace.csv";
  collector.WriteCsv(path);
  CsvDocument doc = ReadCsvFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(doc.rows.size(), 2u);
  int name_col = doc.ColumnIndex("name");
  int phase_col = doc.ColumnIndex("phase");
  ASSERT_GE(name_col, 0);
  ASSERT_GE(phase_col, 0);
  // Snapshot sorts by (track, ts): the span (ts 0) precedes the instant.
  EXPECT_EQ(doc.rows[0][static_cast<size_t>(name_col)], "query");
  EXPECT_EQ(doc.rows[0][static_cast<size_t>(phase_col)], "X");
  EXPECT_EQ(doc.rows[1][static_cast<size_t>(name_col)], "arrival");
}

// ---------------------------------------------------------------------------
// QueryTraceBuilder.

TEST(QueryTraceBuilderTest, NullCollectorIsInert) {
  QueryTraceBuilder builder(nullptr, 42, "cedar", "sim");
  EXPECT_FALSE(builder.active());
  builder.RecordInitialWait(0, 0, 5.0);
  builder.RecordSend(0, 0, 5.0, 3, 5, 0.6);
  builder.Finish(10.0, 0.6);  // must not crash
}

TEST(QueryTraceBuilderTest, FoldOutcomeAndOriginShift) {
  TraceCollector collector;
  QueryTraceBuilder builder(&collector, 11, "cedar", "loaded", /*origin=*/100.0);
  ASSERT_TRUE(builder.active());
  builder.RecordInitialWait(0, 0, 4.0);
  builder.RecordArrival(0, 0, 1.5, 1);
  // Timer-driven send with 1 of 5 children: a fold.
  builder.RecordSend(0, 0, 4.0, 1, 5, 0.2);
  builder.RecordRootArrival(6.0, false);
  EXPECT_EQ(builder.folds(), 1);
  EXPECT_EQ(builder.deadline_misses(), 1);
  builder.Finish(8.0, 0.2, {TraceArg::Num("arrival", 100.0)});

  auto events = collector.Snapshot();
  ASSERT_GE(events.size(), 4u);
  // The span leads its track and carries the outcome; all times are shifted
  // by the origin onto the shared timeline.
  const TraceEvent& span = events[0];
  EXPECT_EQ(span.name, "query");
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.track, 11u);
  EXPECT_DOUBLE_EQ(span.ts, 100.0);
  EXPECT_DOUBLE_EQ(span.dur, 8.0);
  std::map<std::string, std::string> args;
  for (const TraceArg& arg : span.args) {
    args[arg.key] = arg.value;
  }
  EXPECT_EQ(args["outcome"], "fold");
  EXPECT_EQ(args["engine"], "loaded");
  EXPECT_EQ(args["policy"], "cedar");
  EXPECT_EQ(args["deadline_misses"], "1");
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.ts, 100.0);
  }
  bool saw_fold_send = false;
  for (const TraceEvent& event : events) {
    if (event.name == "fold_send") {
      saw_fold_send = true;
      EXPECT_DOUBLE_EQ(event.ts, 104.0);
    }
  }
  EXPECT_TRUE(saw_fold_send);
}

TEST(QueryTraceBuilderTest, CompleteAggregationIsAHold) {
  TraceCollector collector;
  QueryTraceBuilder builder(&collector, 1, "ideal", "sim");
  builder.RecordSend(0, 0, 2.0, 5, 5, 1.0);
  EXPECT_EQ(builder.holds(), 1);
  EXPECT_EQ(builder.folds(), 0);
  builder.Finish(5.0, 1.0);
  auto events = collector.Snapshot();
  std::map<std::string, std::string> args;
  for (const TraceArg& arg : events[0].args) {
    args[arg.key] = arg.value;
  }
  EXPECT_EQ(args["outcome"], "hold");
  bool saw_hold_send = false;
  for (const TraceEvent& event : events) {
    saw_hold_send = saw_hold_send || event.name == "hold_send";
  }
  EXPECT_TRUE(saw_hold_send);
}

// ---------------------------------------------------------------------------
// Engine integration: the acceptance-criterion checks.

TEST(ObsTraceIntegrationTest, SimExperimentEmitsOneSpanPerQueryRun) {
  TraceCollector collector;
  StationaryWorkload workload = SmallWorkload();
  ProportionalSplitPolicy prop_split;
  CedarPolicy cedar;
  ExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 4;
  config.seed = 13;
  config.threads = 1;
  config.sim.trace = &collector;
  RunExperiment(workload, {&prop_split, &cedar}, config);

  JsonValue events = ValidatedTraceEvents(collector);
  ASSERT_FALSE(events.array.empty());

  int spans = 0;
  std::set<uint64_t> tracks;
  std::set<std::string> policies;
  for (const JsonValue& event : events.array) {
    tracks.insert(static_cast<uint64_t>(event.At("tid").number));
    if (event.At("name").string != "query") {
      continue;
    }
    ++spans;
    EXPECT_EQ(event.At("ph").string, "X");
    const JsonValue& args = event.At("args");
    EXPECT_EQ(args.At("engine").string, "sim");
    policies.insert(args.At("policy").string);
    double quality = args.At("inclusion_fraction").number;
    EXPECT_GE(quality, 0.0);
    EXPECT_LE(quality, 1.0);
    const std::string& outcome = args.At("outcome").string;
    EXPECT_TRUE(outcome == "hold" || outcome == "fold") << outcome;
  }
  // One top-level span per (query, policy) run; one track per query.
  EXPECT_EQ(spans, 4 * 2);
  EXPECT_EQ(tracks.size(), 4u);
  EXPECT_EQ(policies, (std::set<std::string>{"prop-split", "cedar"}));
  for (int q = 0; q < 4; ++q) {
    EXPECT_TRUE(tracks.count(DriverQuerySequence(config.seed, q)))
        << "missing track for query " << q;
  }
}

TEST(ObsTraceIntegrationTest, LifecycleEventsAccompanyEachSpan) {
  TraceCollector collector;
  StationaryWorkload workload = SmallWorkload();
  CedarPolicy cedar;
  ExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 2;
  config.seed = 3;
  config.threads = 1;
  config.sim.trace = &collector;
  RunExperiment(workload, {&cedar}, config);

  std::map<uint64_t, std::set<std::string>> names_by_track;
  for (const TraceEvent& event : collector.Snapshot()) {
    names_by_track[event.track].insert(event.name);
  }
  ASSERT_EQ(names_by_track.size(), 2u);
  for (const auto& [track, names] : names_by_track) {
    EXPECT_TRUE(names.count("query")) << "track " << track;
    EXPECT_TRUE(names.count("tier_plan")) << "track " << track;
    EXPECT_TRUE(names.count("initial_wait")) << "track " << track;
    EXPECT_TRUE(names.count("arrival")) << "track " << track;
    EXPECT_TRUE(names.count("hold_send") || names.count("fold_send")) << "track " << track;
    EXPECT_TRUE(names.count("root_arrival") || names.count("deadline_miss"))
        << "track " << track;
  }
}

TEST(ObsTraceIntegrationTest, GlobalCollectorFallback) {
  TraceCollector collector;
  SetActiveTraceCollector(&collector);
  StationaryWorkload workload = SmallWorkload();
  CedarPolicy cedar;
  ExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 2;
  config.seed = 21;
  config.threads = 1;
  RunExperiment(workload, {&cedar}, config);
  SetActiveTraceCollector(nullptr);

  EXPECT_GT(collector.size(), 0u);
  size_t after = collector.size();
  // With the global uninstalled, runs no longer trace.
  RunExperiment(workload, {&cedar}, config);
  EXPECT_EQ(collector.size(), after);
}

TEST(ObsTraceIntegrationTest, ThreadedRunProducesIdenticalCanonicalTrace) {
  StationaryWorkload workload = SmallWorkload();
  CedarPolicy cedar;
  auto run = [&](int threads) {
    TraceCollector collector;
    ExperimentConfig config;
    config.deadline = 60.0;
    config.num_queries = 8;
    config.seed = 29;
    config.threads = threads;
    config.sim.trace = &collector;
    RunExperiment(workload, {&cedar}, config);
    return ChromeJsonString(collector);
  };
  std::string serial = run(1);
  std::string parallel = run(4);
  // Snapshot() canonicalizes by (track, ts), so the exported JSON is
  // byte-identical regardless of worker interleaving.
  EXPECT_EQ(serial, parallel);
  ParseJsonOrFail(serial);
}

TEST(ObsTraceIntegrationTest, ClusterEngineEmitsSpans) {
  TraceCollector collector;
  StationaryWorkload workload = SmallWorkload();
  CedarPolicy cedar;
  ClusterExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 2;
  config.seed = 17;
  config.threads = 1;
  config.cluster.machines = 4;
  config.cluster.slots_per_machine = 2;
  config.run.trace = &collector;
  RunClusterExperiment(workload, {&cedar}, config);

  JsonValue events = ValidatedTraceEvents(collector);
  int spans = 0;
  for (const JsonValue& event : events.array) {
    if (event.At("name").string != "query") {
      continue;
    }
    ++spans;
    const JsonValue& args = event.At("args");
    EXPECT_EQ(args.At("engine").string, "cluster");
    EXPECT_GE(args.At("inclusion_fraction").number, 0.0);
    EXPECT_LE(args.At("inclusion_fraction").number, 1.0);
    EXPECT_TRUE(args.Has("waves"));
  }
  EXPECT_EQ(spans, 2);
}

}  // namespace
}  // namespace cedar
