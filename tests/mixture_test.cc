#include "src/stats/mixture.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cedar {
namespace {

MixtureDistribution Bimodal() {
  return MixtureDistribution::WithStragglerMode(
      std::make_shared<LogNormalDistribution>(2.0, 0.4),
      std::make_shared<LogNormalDistribution>(4.0, 0.6), 0.1);
}

TEST(MixtureTest, WeightsNormalized) {
  std::vector<MixtureDistribution::Component> components;
  components.push_back({2.0, std::make_shared<ExponentialDistribution>(1.0)});
  components.push_back({6.0, std::make_shared<ExponentialDistribution>(2.0)});
  MixtureDistribution mixture(std::move(components));
  EXPECT_DOUBLE_EQ(mixture.components()[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(mixture.components()[1].weight, 0.75);
}

TEST(MixtureTest, CdfIsWeightedSum) {
  MixtureDistribution mixture = Bimodal();
  LogNormalDistribution body(2.0, 0.4);
  LogNormalDistribution straggler(4.0, 0.6);
  for (double x : {1.0, 7.4, 20.0, 54.0, 200.0}) {
    EXPECT_NEAR(mixture.Cdf(x), 0.9 * body.Cdf(x) + 0.1 * straggler.Cdf(x), 1e-12) << x;
  }
}

TEST(MixtureTest, MeanIsWeightedSum) {
  MixtureDistribution mixture = Bimodal();
  LogNormalDistribution body(2.0, 0.4);
  LogNormalDistribution straggler(4.0, 0.6);
  EXPECT_NEAR(mixture.Mean(), 0.9 * body.Mean() + 0.1 * straggler.Mean(), 1e-9);
}

TEST(MixtureTest, QuantileRoundTrips) {
  MixtureDistribution mixture = Bimodal();
  for (double p = 0.02; p < 1.0; p += 0.02) {
    double x = mixture.Quantile(p);
    EXPECT_NEAR(mixture.Cdf(x), p, 1e-7) << "p=" << p;
  }
}

TEST(MixtureTest, SamplesHitBothModes) {
  MixtureDistribution mixture = Bimodal();
  Rng rng(5);
  int straggler_like = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (mixture.Sample(rng) > 25.0) {  // body p99.9 ~ 25
      ++straggler_like;
    }
  }
  double fraction = static_cast<double>(straggler_like) / kSamples;
  EXPECT_NEAR(fraction, 0.1, 0.015);
}

TEST(MixtureTest, StdDevMatchesSampling) {
  MixtureDistribution mixture = Bimodal();
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    double x = mixture.Sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kSamples;
  double sd = std::sqrt(sum_sq / kSamples - mean * mean);
  EXPECT_NEAR(mean, mixture.Mean(), 0.03 * mixture.Mean());
  EXPECT_NEAR(sd, mixture.StdDev(), 0.05 * mixture.StdDev());
}

TEST(MixtureTest, PdfIntegratesLocally) {
  MixtureDistribution mixture = Bimodal();
  for (double x : {5.0, 20.0, 60.0}) {
    double h = 1e-5 * x;
    double numeric = (mixture.Cdf(x + h) - mixture.Cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(mixture.Pdf(x), numeric, 1e-3 * (numeric + 1.0));
  }
}

TEST(MixtureTest, CloneIndependent) {
  MixtureDistribution mixture = Bimodal();
  auto clone = mixture.Clone();
  EXPECT_DOUBLE_EQ(clone->Cdf(10.0), mixture.Cdf(10.0));
  EXPECT_NE(clone->ToString().find("mixture"), std::string::npos);
}

TEST(MixtureDeathTest, RejectsBadInputs) {
  std::vector<MixtureDistribution::Component> empty;
  EXPECT_DEATH(MixtureDistribution{std::move(empty)}, "at least one");
  EXPECT_DEATH(MixtureDistribution::WithStragglerMode(
                   std::make_shared<ExponentialDistribution>(1.0),
                   std::make_shared<ExponentialDistribution>(1.0), 1.5),
               "fraction");
}

}  // namespace
}  // namespace cedar
