#include "src/core/wait_table.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/policies.h"
#include "src/core/quality.h"
#include "src/sim/experiment.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

struct TableFixture {
  TableFixture()
      : upper(TabulateCdf(LogNormalDistribution(3.25, 0.95), 1000.0, 401)),
        epsilon(1000.0 / 400.0) {}

  WaitTableSpec DefaultSpec() const {
    WaitTableSpec spec;
    spec.location_min = 1.0;
    spec.location_max = 7.0;
    spec.location_points = 49;
    spec.scale_min = 0.2;
    spec.scale_max = 2.0;
    spec.scale_points = 19;
    return spec;
  }

  PiecewiseLinear upper;
  double epsilon;
};

TEST(WaitTableTest, GridPointsMatchDirectOptimization) {
  TableFixture fixture;
  WaitTable table(fixture.DefaultSpec(), 50, fixture.upper, 1000.0, fixture.epsilon);
  // Exact grid points must reproduce the direct scan exactly.
  for (double mu : {1.0, 2.5, 4.0, 7.0}) {       // on the location grid (step 0.125)
    for (double sigma : {0.2, 0.6, 1.0, 2.0}) {  // on the scale grid (step 0.1)
      LogNormalDistribution dist(mu, sigma);
      double direct = OptimizeWait(dist, 50, fixture.upper, 1000.0, fixture.epsilon).wait;
      EXPECT_NEAR(table.Lookup(mu, sigma), direct, 1e-9) << "mu=" << mu << " sigma=" << sigma;
    }
  }
}

TEST(WaitTableTest, InterpolationCloseToDirect) {
  TableFixture fixture;
  WaitTable table(fixture.DefaultSpec(), 50, fixture.upper, 1000.0, fixture.epsilon);
  // Off-grid parameters: the optimal-wait surface is piecewise smooth with
  // plateau jumps (the argmax of a nearly flat objective), so interpolated
  // waits can differ by a few percent of the deadline; the *quality* cost
  // of that is negligible (see CedarWithTableMatchesScanQuality).
  for (double mu : {2.17, 3.33, 5.91}) {
    for (double sigma : {0.47, 0.83, 1.46}) {
      LogNormalDistribution dist(mu, sigma);
      double direct = OptimizeWait(dist, 50, fixture.upper, 1000.0, fixture.epsilon).wait;
      EXPECT_NEAR(table.Lookup(mu, sigma), direct, 60.0) << "mu=" << mu << " sigma=" << sigma;
    }
  }
  EXPECT_EQ(table.clamped_lookups(), 0);
}

TEST(WaitTableTest, OutOfGridClampsAndCounts) {
  TableFixture fixture;
  WaitTable table(fixture.DefaultSpec(), 50, fixture.upper, 1000.0, fixture.epsilon);
  double edge = table.Lookup(7.0, 2.0);
  EXPECT_DOUBLE_EQ(table.Lookup(9.0, 3.0), edge);
  EXPECT_GE(table.clamped_lookups(), 1);
}

TEST(WaitTableTest, LookupSpecChecksFamily) {
  TableFixture fixture;
  WaitTable table(fixture.DefaultSpec(), 50, fixture.upper, 1000.0, fixture.epsilon);
  DistributionSpec fit;
  fit.family = DistributionFamily::kLogNormal;
  fit.p1 = 3.0;
  fit.p2 = 0.8;
  EXPECT_GT(table.LookupSpec(fit), 0.0);
  fit.family = DistributionFamily::kNormal;
  EXPECT_DEATH(table.LookupSpec(fit), "family mismatch");
}

TEST(WaitTableTest, CedarWithTableMatchesScanQuality) {
  // End to end: the table-driven Cedar should land within a whisker of the
  // scan-driven Cedar on the Facebook replay.
  auto workload = MakeFacebookWorkload(20, 20);
  CedarPolicy scan_cedar;

  CedarPolicyOptions table_options;
  table_options.use_wait_table = true;
  table_options.table_spec.location_min = 0.0;
  table_options.table_spec.location_max = 10.0;
  table_options.table_spec.location_points = 81;
  table_options.table_spec.scale_min = 0.1;
  table_options.table_spec.scale_max = 2.5;
  table_options.table_spec.scale_points = 25;
  CedarPolicy table_cedar(table_options);

  ExperimentConfig config;
  config.deadline = 1000.0;
  config.num_queries = 15;
  config.seed = 77;
  // Use offline upper knowledge so the table is built once, as deployed.
  config.sim.per_query_upper_knowledge = false;

  // Policies share the name "cedar", so run them separately on the same
  // seed (realizations are drawn independently of the policy set).
  auto scan_result = RunExperiment(workload, {&scan_cedar}, config);
  auto table_result = RunExperiment(workload, {&table_cedar}, config);
  EXPECT_NEAR(table_result.Outcome("cedar").MeanQuality(),
              scan_result.Outcome("cedar").MeanQuality(), 0.02);
}

TEST(WaitTableDeathTest, RejectsBadSpecs) {
  TableFixture fixture;
  WaitTableSpec spec = fixture.DefaultSpec();
  spec.scale_min = 0.0;
  EXPECT_DEATH(WaitTable(spec, 50, fixture.upper, 1000.0, fixture.epsilon), "");
  spec = fixture.DefaultSpec();
  spec.family = DistributionFamily::kPareto;
  EXPECT_DEATH(WaitTable(spec, 50, fixture.upper, 1000.0, fixture.epsilon), "location-scale");
}

}  // namespace
}  // namespace cedar
