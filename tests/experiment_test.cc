#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include "src/core/policies.h"
#include "src/sim/workload.h"

namespace cedar {
namespace {

StationaryWorkload SmallWorkload() {
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.9), 8,
                                     std::make_shared<LogNormalDistribution>(2.0, 0.6), 6);
  return StationaryWorkload("test", "s", std::move(tree));
}

ExperimentConfig SmallConfig(double deadline = 40.0, int queries = 20) {
  ExperimentConfig config;
  config.deadline = deadline;
  config.num_queries = queries;
  config.seed = 99;
  return config;
}

TEST(ExperimentTest, IdenticalPoliciesGetIdenticalResults) {
  // Two FixedWait policies with the same wait but different identities would
  // collide on name, so compare a policy against itself across two runs.
  StationaryWorkload workload = SmallWorkload();
  FixedWaitPolicy fixed(15.0);
  auto r1 = RunExperiment(workload, {&fixed}, SmallConfig());
  auto r2 = RunExperiment(workload, {&fixed}, SmallConfig());
  ASSERT_EQ(r1.outcomes[0].quality.size(), r2.outcomes[0].quality.size());
  for (size_t i = 0; i < r1.outcomes[0].quality.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.outcomes[0].quality.values()[i], r2.outcomes[0].quality.values()[i]);
  }
}

TEST(ExperimentTest, PoliciesSeeIdenticalRealizations) {
  // The fixed policy's per-query qualities must be identical whether it
  // runs alone or alongside other policies: realizations are drawn once per
  // query, independent of the policy set.
  StationaryWorkload workload = SmallWorkload();
  FixedWaitPolicy fixed(20.0);
  CedarPolicy cedar;
  auto together = RunExperiment(workload, {&fixed, &cedar}, SmallConfig());
  auto alone = RunExperiment(workload, {&fixed}, SmallConfig());
  const auto& a = together.Outcome("fixed").quality.values();
  const auto& b = alone.Outcome("fixed").quality.values();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "query " << i;
  }
}

TEST(ExperimentDeathTest, DuplicatePolicyNamesDie) {
  StationaryWorkload workload = SmallWorkload();
  FixedWaitPolicy a(1.0);
  FixedWaitPolicy b(2.0);
  EXPECT_DEATH(RunExperiment(workload, {&a, &b}, SmallConfig()), "duplicate policy name");
}

TEST(ExperimentTest, OutcomeLookupAndImprovement) {
  StationaryWorkload workload = SmallWorkload();
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&baseline, &cedar}, SmallConfig());
  EXPECT_EQ(result.Outcome("cedar").policy_name, "cedar");
  EXPECT_EQ(result.Outcome("prop-split").quality.size(), 20u);
  double imp = result.ImprovementPercent("prop-split", "cedar");
  EXPECT_GT(imp, -100.0);
}

TEST(ExperimentTest, PerQueryImprovementFiltersLowBaseline) {
  StationaryWorkload workload = SmallWorkload();
  ProportionalSplitPolicy baseline;
  OraclePolicy ideal;
  // Absurdly tight deadline: most baseline qualities ~0 get filtered.
  auto result = RunExperiment(workload, {&baseline, &ideal}, SmallConfig(2.0));
  auto improvements = result.PerQueryImprovementPercent("prop-split", "ideal", 0.05);
  EXPECT_LE(improvements.size(), result.Outcome("ideal").quality.size());
}

TEST(ExperimentTest, SameSeedSameTruths) {
  StationaryWorkload workload = SmallWorkload();
  OraclePolicy ideal;
  auto r1 = RunExperiment(workload, {&ideal}, SmallConfig());
  auto r2 = RunExperiment(workload, {&ideal}, SmallConfig());
  EXPECT_DOUBLE_EQ(r1.Outcome("ideal").MeanQuality(), r2.Outcome("ideal").MeanQuality());
}

TEST(ExperimentDeathTest, UnknownOutcomeDies) {
  StationaryWorkload workload = SmallWorkload();
  CedarPolicy cedar;
  auto result = RunExperiment(workload, {&cedar}, SmallConfig(40.0, 2));
  EXPECT_DEATH(result.Outcome("nope"), "no outcome");
}

TEST(PercentImprovementTest, Math) {
  EXPECT_DOUBLE_EQ(PercentImprovement(0.5, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(PercentImprovement(0.8, 0.6), -25.0);
  EXPECT_DEATH(PercentImprovement(0.0, 0.5), "positive");
}

}  // namespace
}  // namespace cedar
