#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace cedar {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ResolveThreadCount(-3), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, WaitThenReuse) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, TasksMaySubmitFollowUpWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, StealingBalancesSkewedTasks) {
  // One long task plus many short ones: with stealing, the short tasks all
  // finish while the long one runs, regardless of which deque they landed in.
  ThreadPool pool(4);
  std::atomic<int> short_done{0};
  pool.Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&short_done] { short_done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(short_done.load(), 64);
}

TEST(ParallelForChunksTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr long long kTotal = 1000;
  std::vector<std::atomic<int>> hits(kTotal);
  ParallelForChunks(pool, kTotal, 16, [&hits](long long begin, long long end, int /*chunk*/) {
    for (long long i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (long long i = 0; i < kTotal; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForChunksTest, MoreChunksThanItems) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ParallelForChunks(pool, 3, 16, [&count](long long begin, long long end, int /*chunk*/) {
    count.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForChunksTest, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  ParallelForChunks(pool, 0, 4, [](long long, long long, int) { FAIL() << "no chunks expected"; });
}

TEST(ParallelForChunksTest, ChunkRangesTileTheIndexSpace) {
  ThreadPool pool(1);  // single worker: no data race on |ranges|
  std::vector<std::pair<long long, long long>> ranges;
  ParallelForChunks(pool, 10, 3, [&ranges](long long begin, long long end, int /*chunk*/) {
    ranges.emplace_back(begin, end);
  });
  ASSERT_EQ(ranges.size(), 3u);
  // Execution order is a scheduling detail (own-deque pops are LIFO); the
  // contract is that the ranges tile [0, total) without gaps or overlaps.
  std::sort(ranges.begin(), ranges.end());
  EXPECT_EQ(ranges[0].first, 0);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second);
  }
  EXPECT_EQ(ranges.back().second, 10);
}

}  // namespace
}  // namespace cedar
