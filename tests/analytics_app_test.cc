#include "src/apps/analytics_service.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/policies.h"

namespace cedar {
namespace {

FactTableSpec SmallTable() {
  FactTableSpec spec;
  spec.rows = 40000;
  spec.num_groups = 8;
  spec.num_partitions = 80;
  spec.seed = 5;
  return spec;
}

TEST(FactTableTest, PartialsSumToExact) {
  FactTable table(SmallTable());
  GroupPartial total;
  total.sums.assign(8, 0.0);
  total.counts.assign(8, 0);
  for (int p = 0; p < table.num_partitions(); ++p) {
    total.Accumulate(table.PartitionPartial(p));
  }
  int64_t rows = 0;
  for (size_t g = 0; g < 8; ++g) {
    ASSERT_GT(total.counts[g], 0);
    EXPECT_NEAR(total.sums[g] / static_cast<double>(total.counts[g]),
                table.ExactGroupMeans()[g], 1e-9)
        << "group " << g;
    rows += total.counts[g];
  }
  EXPECT_EQ(rows, 40000);
}

TEST(FactTableTest, GroupMeansSpreadAsSpecified) {
  FactTable table(SmallTable());
  for (double mean : table.ExactGroupMeans()) {
    EXPECT_GT(mean, 5.0);
    EXPECT_LT(mean, 3000.0);
  }
}

class AnalyticsServiceTest : public ::testing::Test {
 protected:
  AnalyticsServiceTest()
      : table_(SmallTable()),
        tree_(TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.5, 0.8), 10,
                                 std::make_shared<LogNormalDistribution>(2.0, 0.6), 8)) {}

  QueryRealization MakeRealization(uint64_t seed, uint64_t sequence = 1) {
    QueryTruth truth;
    truth.sequence = sequence;
    truth.stage_durations.push_back(tree_.stage(0).duration);
    truth.stage_durations.push_back(tree_.stage(1).duration);
    Rng rng(seed);
    return SampleRealization(tree_, truth, rng);
  }

  FactTable table_;
  TreeSpec tree_;
};

TEST_F(AnalyticsServiceTest, GenerousDeadlineExactAnswer) {
  AnalyticsServiceConfig config;
  config.deadline = 1e5;
  AnalyticsService service(&table_, tree_, config);
  CedarPolicy cedar;
  auto outcome = service.RunQuery(cedar, MakeRealization(3));
  EXPECT_DOUBLE_EQ(outcome.fraction_quality, 1.0);
  EXPECT_NEAR(outcome.mean_relative_error, 0.0, 1e-12);
  EXPECT_EQ(outcome.groups_answered, 8);
}

TEST_F(AnalyticsServiceTest, ErrorShrinksWithDeadline) {
  CedarPolicy cedar;
  double prev_error = 2.0;
  for (double deadline : {20.0, 40.0, 80.0, 160.0}) {
    AnalyticsServiceConfig config;
    config.deadline = deadline;
    AnalyticsService service(&table_, tree_, config);
    auto outcome = service.RunQuery(cedar, MakeRealization(7));
    EXPECT_LE(outcome.mean_relative_error, prev_error + 0.05) << "deadline " << deadline;
    prev_error = outcome.mean_relative_error;
  }
  EXPECT_LT(prev_error, 0.05) << "at 160 units the answer should be nearly exact";
}

TEST_F(AnalyticsServiceTest, PartialInclusionStillAnswersMostGroups) {
  // Even at a tight deadline, included partitions carry all groups (rows
  // are group-uniform), so the error comes from sampling, not from missing
  // groups entirely.
  AnalyticsServiceConfig config;
  config.deadline = 30.0;
  AnalyticsService service(&table_, tree_, config);
  CedarPolicy cedar;
  auto outcome = service.RunQuery(cedar, MakeRealization(9));
  if (outcome.partitions_included > 0) {
    EXPECT_EQ(outcome.groups_answered, 8);
    EXPECT_LT(outcome.mean_relative_error, 0.2);
  }
}

TEST_F(AnalyticsServiceTest, ZeroInclusionGivesErrorOne) {
  AnalyticsServiceConfig config;
  config.deadline = 1.0;  // below any latency sample
  AnalyticsService service(&table_, tree_, config);
  FixedWaitPolicy fixed(0.5);
  auto outcome = service.RunQuery(fixed, MakeRealization(11));
  EXPECT_EQ(outcome.partitions_included, 0);
  EXPECT_DOUBLE_EQ(outcome.mean_relative_error, 1.0);
  EXPECT_EQ(outcome.groups_answered, 0);
}

TEST_F(AnalyticsServiceTest, DeterministicReplay) {
  AnalyticsServiceConfig config;
  config.deadline = 50.0;
  AnalyticsService service(&table_, tree_, config);
  CedarPolicy cedar;
  auto realization = MakeRealization(13);
  auto a = service.RunQuery(cedar, realization);
  auto b = service.RunQuery(cedar, realization);
  EXPECT_DOUBLE_EQ(a.mean_relative_error, b.mean_relative_error);
  EXPECT_EQ(a.partitions_included, b.partitions_included);
}

TEST(AnalyticsServiceDeathTest, PartitionMismatchDies) {
  FactTable table(SmallTable());
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(1.0), 7,
                                     std::make_shared<ExponentialDistribution>(1.0), 7);
  AnalyticsServiceConfig config;
  config.deadline = 10.0;
  EXPECT_DEATH(AnalyticsService(&table, tree, config), "cover every partition");
}

}  // namespace
}  // namespace cedar
