#include "src/core/wait_optimizer.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Two-level helper: the upper-quality curve is just the CDF of X2.
struct TwoLevelFixture {
  TwoLevelFixture(double mu1, double sigma1, double mu2, double sigma2, int k1, int k2,
                  double deadline)
      : tree(TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(mu1, sigma1), k1,
                                std::make_shared<LogNormalDistribution>(mu2, sigma2), k2)),
        deadline(deadline),
        upper(TabulateCdf(*tree.stage(1).duration, deadline, 401)),
        epsilon(deadline / 400.0) {}

  TreeSpec tree;
  double deadline;
  PiecewiseLinear upper;
  double epsilon;
};

TEST(OptimizeWaitTest, WaitWithinBudget) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  WaitDecision d = OptimizeWait(*f.tree.stage(0).duration, 30, f.upper, f.deadline, f.epsilon);
  EXPECT_GE(d.wait, 0.0);
  EXPECT_LE(d.wait, f.deadline);
  EXPECT_GT(d.expected_quality, 0.0);
  EXPECT_LE(d.expected_quality, 1.0);
}

TEST(OptimizeWaitTest, ZeroOrNegativeDeadline) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  WaitDecision d = OptimizeWait(*f.tree.stage(0).duration, 30, f.upper, 0.0, f.epsilon);
  EXPECT_DOUBLE_EQ(d.wait, 0.0);
  EXPECT_DOUBLE_EQ(d.expected_quality, 0.0);
  d = OptimizeWait(*f.tree.stage(0).duration, 30, f.upper, -5.0, f.epsilon);
  EXPECT_DOUBLE_EQ(d.wait, 0.0);
}

TEST(OptimizeWaitTest, DominatesEveryScanPoint) {
  // The scan's running max by construction dominates every candidate c; the
  // property worth checking is that the returned expected quality equals
  // the partial-sum max, i.e. re-running with a different starting epsilon
  // never finds a better value at the same resolution.
  TwoLevelFixture f(3.0, 1.2, 2.5, 0.8, 40, 40, 100.0);
  WaitDecision fine =
      OptimizeWait(*f.tree.stage(0).duration, 40, f.upper, f.deadline, f.deadline / 1000.0);
  WaitDecision coarse =
      OptimizeWait(*f.tree.stage(0).duration, 40, f.upper, f.deadline, f.deadline / 100.0);
  // Finer scan can only help (discretization error shrinks).
  EXPECT_GE(fine.expected_quality, coarse.expected_quality - 5e-3);
  EXPECT_NEAR(fine.expected_quality, coarse.expected_quality, 0.03);
}

TEST(OptimizeWaitTest, SlackDeadlineWaitsGenerously) {
  // With a huge deadline relative to both stages, waiting long enough to
  // collect everything costs nothing: expected quality ~ 1.
  TwoLevelFixture f(2.0, 0.5, 2.0, 0.5, 20, 20, 1000.0);
  WaitDecision d = OptimizeWait(*f.tree.stage(0).duration, 20, f.upper, f.deadline, f.epsilon);
  EXPECT_GT(d.expected_quality, 0.99);
  // The chosen wait covers virtually the whole X1 distribution.
  EXPECT_GT(f.tree.stage(0).duration->Cdf(d.wait), 0.99);
}

TEST(OptimizeWaitTest, TightDeadlineLeavesRoomForUpperStage) {
  // X2 is comparable to the deadline: the optimizer must reserve room.
  TwoLevelFixture f(2.0, 0.5, 3.0, 0.5, 20, 20, 30.0);
  WaitDecision d = OptimizeWait(*f.tree.stage(0).duration, 20, f.upper, f.deadline, f.epsilon);
  EXPECT_LT(d.wait, 20.0) << "must leave budget for X2 (mean ~23)";
}

TEST(OptimizeWaitTest, HigherUpperVarianceShortensWait) {
  TwoLevelFixture low(3.0, 0.8, 2.5, 0.4, 30, 30, 60.0);
  TwoLevelFixture high(3.0, 0.8, 2.5, 1.2, 30, 30, 60.0);
  WaitDecision wl =
      OptimizeWait(*low.tree.stage(0).duration, 30, low.upper, low.deadline, low.epsilon);
  WaitDecision wh =
      OptimizeWait(*high.tree.stage(0).duration, 30, high.upper, high.deadline, high.epsilon);
  // Heavier upper tail raises the risk of missing the deadline; the optimal
  // wait should not increase.
  EXPECT_LE(wh.wait, wl.wait + low.epsilon);
}

TEST(PlanTreeTest, TwoLevelPlanMatchesDirectOptimization) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  TreePlan plan = PlanTree(f.tree, f.deadline);
  ASSERT_EQ(plan.absolute_waits.size(), 1u);
  WaitDecision direct =
      OptimizeWait(*f.tree.stage(0).duration, 30, f.upper, f.deadline, f.epsilon);
  EXPECT_NEAR(plan.absolute_waits[0], direct.wait, f.epsilon + 1e-9);
  EXPECT_NEAR(plan.expected_quality, direct.expected_quality, 0.02);
}

TEST(PlanTreeTest, ThreeLevelWaitsAscend) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.0, 0.8), 20);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.2, 0.6), 10);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.1, 0.5), 5);
  TreeSpec tree(std::move(stages));
  TreePlan plan = PlanTree(tree, 150.0);
  ASSERT_EQ(plan.absolute_waits.size(), 2u);
  EXPECT_GE(plan.absolute_waits[0], 0.0);
  EXPECT_GE(plan.absolute_waits[1], plan.absolute_waits[0]);
  EXPECT_LE(plan.absolute_waits[1], 150.0);
  EXPECT_GT(plan.expected_quality, 0.0);
}

TEST(PlanTreeTest, ExpectedQualityMonotoneInDeadline) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  double prev = 0.0;
  for (double deadline : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    TreePlan plan = PlanTree(f.tree, deadline);
    EXPECT_GE(plan.expected_quality, prev - 1e-6) << "deadline=" << deadline;
    prev = plan.expected_quality;
  }
}

class ParallelOptimizerTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelOptimizerTest, MatchesSerialScan) {
  int threads = GetParam();
  TwoLevelFixture f(3.0, 1.2, 2.5, 0.8, 40, 40, 100.0);
  WaitDecision serial =
      OptimizeWait(*f.tree.stage(0).duration, 40, f.upper, f.deadline, f.epsilon);
  WaitDecision parallel = OptimizeWaitParallel(*f.tree.stage(0).duration, 40, f.upper,
                                               f.deadline, f.epsilon, threads);
  EXPECT_NEAR(parallel.wait, serial.wait, 1e-9) << "threads=" << threads;
  EXPECT_NEAR(parallel.expected_quality, serial.expected_quality, 1e-9)
      << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelOptimizerTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 1000));

TEST(ParallelOptimizerTest, ZeroDeadlineFallsBack) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  WaitDecision d =
      OptimizeWaitParallel(*f.tree.stage(0).duration, 30, f.upper, 0.0, f.epsilon, 4);
  EXPECT_DOUBLE_EQ(d.wait, 0.0);
}

TEST(OptimizeWaitDeathTest, RejectsBadArguments) {
  TwoLevelFixture f(2.0, 0.9, 2.0, 0.6, 30, 30, 40.0);
  EXPECT_DEATH(OptimizeWait(*f.tree.stage(0).duration, 0, f.upper, 10.0, 0.1), "fanout");
  EXPECT_DEATH(OptimizeWait(*f.tree.stage(0).duration, 30, f.upper, 10.0, 0.0), "epsilon");
}

}  // namespace
}  // namespace cedar
