// Numerical-robustness property tests: the quality/optimizer machinery must
// stay finite and sane at extreme parameter corners (tiny and huge
// deadlines, near-degenerate sigmas, single-child fanouts).

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/online_learner.h"
#include "src/core/wait_optimizer.h"
#include "src/stats/normal_math.h"

namespace cedar {
namespace {

struct Corner {
  double mu1;
  double sigma1;
  double mu2;
  double sigma2;
  int k1;
  double deadline;
};

class CornerCaseTest : public ::testing::TestWithParam<Corner> {};

TEST_P(CornerCaseTest, OptimizerStaysFiniteAndBounded) {
  const Corner& corner = GetParam();
  LogNormalDistribution x1(corner.mu1, corner.sigma1);
  LogNormalDistribution x2(corner.mu2, corner.sigma2);
  auto upper = TabulateCdf(x2, corner.deadline, 201);
  WaitDecision decision =
      OptimizeWait(x1, corner.k1, upper, corner.deadline, corner.deadline / 200.0);
  EXPECT_TRUE(std::isfinite(decision.wait));
  EXPECT_GE(decision.wait, 0.0);
  EXPECT_LE(decision.wait, corner.deadline);
  EXPECT_TRUE(std::isfinite(decision.expected_quality));
  EXPECT_GE(decision.expected_quality, 0.0);
  EXPECT_LE(decision.expected_quality, 1.0);
}

TEST_P(CornerCaseTest, QualityCurveBounded) {
  const Corner& corner = GetParam();
  TreeSpec tree =
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(corner.mu1, corner.sigma1),
                         corner.k1,
                         std::make_shared<LogNormalDistribution>(corner.mu2, corner.sigma2), 8);
  auto curve = BuildQualityCurve(tree, 0, corner.deadline);
  for (double f : {0.1, 0.5, 1.0}) {
    double q = curve(f * corner.deadline);
    EXPECT_TRUE(std::isfinite(q));
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, CornerCaseTest,
    ::testing::Values(Corner{0.0, 0.01, 0.0, 0.01, 2, 10.0},      // near-deterministic stages
                      Corner{0.0, 4.0, 0.0, 4.0, 50, 100.0},      // enormous variance
                      Corner{-8.0, 0.5, 8.0, 0.5, 10, 5000.0},    // scales 7 decades apart
                      Corner{10.0, 1.0, -5.0, 0.3, 100, 1e6},     // huge deadline
                      Corner{2.0, 0.8, 2.0, 0.8, 1, 50.0},        // fanout 1
                      Corner{5.0, 1.5, 1.0, 0.2, 2000, 1000.0},   // huge fanout
                      Corner{2.0, 0.8, 2.0, 0.8, 10, 1e-3}));     // hopeless deadline

TEST(NumericsTest, LearnerWithMicrosecondScaleArrivals) {
  // Bing-scale values (1e2..1e4 microseconds) must not lose precision.
  OnlineLearnerOptions options;
  options.min_samples = 2;
  OnlineLearner learner(50, options);
  LogNormalDistribution bing(5.9, 1.25);
  Rng rng(3);
  std::vector<double> samples(50);
  for (auto& s : samples) {
    s = bing.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  for (int i = 0; i < 20; ++i) {
    learner.Observe(samples[static_cast<size_t>(i)]);
  }
  auto fit = learner.CurrentFit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->p1, 5.9, 1.0);
  EXPECT_GT(fit->p2, 0.3);
}

TEST(NumericsTest, LearnerWithSubUnitScaleArrivals) {
  // Second-scale real-time values (3e-2 s medians) as in the rt runtime.
  OnlineLearnerOptions options;
  options.min_samples = 2;
  OnlineLearner learner(30, options);
  LogNormalDistribution tiny(-3.5, 0.6);
  Rng rng(5);
  std::vector<double> samples(30);
  for (auto& s : samples) {
    s = tiny.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  for (int i = 0; i < 15; ++i) {
    learner.Observe(samples[static_cast<size_t>(i)]);
  }
  auto fit = learner.CurrentFit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->p1, -3.5, 0.6);
}

TEST(NumericsTest, NormalQuantileExtremeTails) {
  for (double p : {1e-15, 1e-12, 1e-6, 1.0 - 1e-6, 1.0 - 1e-12}) {
    double z = NormalQuantile(p);
    EXPECT_TRUE(std::isfinite(z)) << p;
    EXPECT_NEAR(NormalCdf(z), p, std::max(1e-12, 0.05 * p)) << p;
  }
}

}  // namespace
}  // namespace cedar
