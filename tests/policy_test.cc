#include "src/core/policies.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/quality.h"

namespace cedar {
namespace {

// A reusable two-level context with deadline 100.
class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : tree_(TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 20,
                                 std::make_shared<LogNormalDistribution>(2.5, 0.6), 10)),
        upper_(TabulateCdf(*tree_.stage(1).duration, 100.0, 401)) {
    ctx_.tier = 0;
    ctx_.deadline = 100.0;
    ctx_.start_offset = 0.0;
    ctx_.fanout = 20;
    ctx_.offline_tree = &tree_;
    ctx_.upper_quality = &upper_;
    ctx_.epsilon = 0.25;
  }

  TreeSpec tree_;
  PiecewiseLinear upper_;
  AggregatorContext ctx_;
};

TEST_F(PolicyTest, FixedWaitReturnsConstant) {
  FixedWaitPolicy policy(33.0);
  policy.BeginQuery(ctx_, nullptr);
  EXPECT_DOUBLE_EQ(policy.DecideInitialWait(ctx_), 33.0);
  // Arrivals do not change the decision.
  EXPECT_DOUBLE_EQ(policy.DecideOnArrival(ctx_, 5.0, {5.0}), 33.0);
}

TEST_F(PolicyTest, EqualSplitHalvesTwoLevelDeadline) {
  EqualSplitPolicy policy;
  policy.BeginQuery(ctx_, nullptr);
  EXPECT_DOUBLE_EQ(policy.DecideInitialWait(ctx_), 50.0);
}

TEST_F(PolicyTest, ProportionalSplitUsesOfflineMeans) {
  ProportionalSplitPolicy policy;
  policy.BeginQuery(ctx_, nullptr);
  double mu1 = tree_.stage(0).duration->Mean();
  double mu2 = tree_.stage(1).duration->Mean();
  EXPECT_NEAR(policy.DecideInitialWait(ctx_), 100.0 * mu1 / (mu1 + mu2), 1e-9);
}

TEST_F(PolicyTest, MeanSubtractReservesUpperMean) {
  MeanSubtractPolicy policy;
  policy.BeginQuery(ctx_, nullptr);
  double mu2 = tree_.stage(1).duration->Mean();
  EXPECT_NEAR(policy.DecideInitialWait(ctx_), 100.0 - mu2, 1e-9);
}

TEST_F(PolicyTest, MeanSubtractClampsAtZero) {
  AggregatorContext tight = ctx_;
  tight.deadline = 5.0;  // upper mean ~14.6 exceeds the deadline
  MeanSubtractPolicy policy;
  policy.BeginQuery(tight, nullptr);
  EXPECT_DOUBLE_EQ(policy.DecideInitialWait(tight), 0.0);
}

TEST_F(PolicyTest, OfflineOptimalWithinBudgetAndStable) {
  OfflineOptimalPolicy policy;
  policy.BeginQuery(ctx_, nullptr);
  double wait = policy.DecideInitialWait(ctx_);
  EXPECT_GT(wait, 0.0);
  EXPECT_LT(wait, 100.0);
  // Does not react to arrivals (no online learning).
  EXPECT_DOUBLE_EQ(policy.DecideOnArrival(ctx_, 3.0, {3.0}), wait);
}

TEST_F(PolicyTest, CedarStartsAtOfflineOptimal) {
  OfflineOptimalPolicy offline;
  CedarPolicy cedar;
  offline.BeginQuery(ctx_, nullptr);
  cedar.BeginQuery(ctx_, nullptr);
  EXPECT_DOUBLE_EQ(cedar.DecideInitialWait(ctx_), offline.DecideInitialWait(ctx_));
}

TEST_F(PolicyTest, CedarAdaptsToSlowArrivals) {
  // Feed arrivals drawn from a much slower distribution than the offline
  // fit; once min_samples arrive, the wait should move up.
  CedarPolicyOptions options;
  options.learner.min_samples = 4;
  CedarPolicy cedar(options);
  cedar.BeginQuery(ctx_, nullptr);
  double initial = cedar.DecideInitialWait(ctx_);

  LogNormalDistribution slow(3.3, 0.8);  // offline is lognormal(2.0, 0.8)
  Rng rng(5);
  std::vector<double> samples(20);
  for (auto& s : samples) {
    s = slow.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  std::vector<double> so_far;
  double wait = initial;
  for (int i = 0; i < 12; ++i) {
    so_far.push_back(samples[static_cast<size_t>(i)]);
    wait = cedar.DecideOnArrival(ctx_, so_far.back(), so_far);
  }
  EXPECT_GT(wait, initial) << "slower-than-offline arrivals should lengthen the wait";
}

TEST_F(PolicyTest, CedarReoptimizeEveryNThrottlesUpdates) {
  CedarPolicyOptions options;
  options.learner.min_samples = 2;
  options.reoptimize_every = 4;
  CedarPolicy cedar(options);
  cedar.BeginQuery(ctx_, nullptr);
  double initial = cedar.DecideInitialWait(ctx_);
  std::vector<double> so_far;
  int changes = 0;
  double wait = initial;
  for (int i = 1; i <= 8; ++i) {
    so_far.push_back(static_cast<double>(i));
    double next = cedar.DecideOnArrival(ctx_, so_far.back(), so_far);
    if (next != wait) {
      ++changes;
      wait = next;
    }
  }
  EXPECT_LE(changes, 2) << "at most every 4th arrival may change the wait";
}

TEST_F(PolicyTest, CedarUpperTierDoesNotLearn) {
  CedarPolicy cedar;  // learning_tier = 0
  AggregatorContext upper_ctx = ctx_;
  upper_ctx.tier = 1;
  upper_ctx.fanout = 10;
  cedar.BeginQuery(upper_ctx, nullptr);
  double wait = cedar.DecideInitialWait(upper_ctx);
  EXPECT_DOUBLE_EQ(cedar.DecideOnArrival(upper_ctx, 2.0, {2.0}), wait);
  EXPECT_EQ(cedar.learner(), nullptr);
}

TEST_F(PolicyTest, CedarEmpiricalNameDiffers) {
  CedarPolicyOptions options;
  options.learner.use_empirical_estimates = true;
  CedarPolicy empirical(options);
  CedarPolicy normal;
  EXPECT_EQ(empirical.name(), "cedar-empirical");
  EXPECT_EQ(normal.name(), "cedar");
}

TEST_F(PolicyTest, CloneIsIndependent) {
  CedarPolicy cedar;
  auto clone = cedar.Clone();
  clone->BeginQuery(ctx_, nullptr);
  clone->DecideInitialWait(ctx_);
  // Prototype was never started; cloning must not share learner state.
  EXPECT_EQ(cedar.learner(), nullptr);
}

TEST_F(PolicyTest, OracleUsesTruthAndCachesBySequence) {
  OraclePolicy prototype;
  auto a = prototype.Clone();
  auto b = prototype.Clone();

  QueryTruth slow;
  slow.sequence = 1;
  slow.stage_durations.push_back(std::make_shared<LogNormalDistribution>(3.2, 0.8));
  slow.stage_durations.push_back(tree_.stage(1).duration);

  QueryTruth fast;
  fast.sequence = 2;
  fast.stage_durations.push_back(std::make_shared<LogNormalDistribution>(1.0, 0.8));
  fast.stage_durations.push_back(tree_.stage(1).duration);

  a->BeginQuery(ctx_, &slow);
  double slow_wait = a->DecideInitialWait(ctx_);
  b->BeginQuery(ctx_, &fast);
  double fast_wait = b->DecideInitialWait(ctx_);
  EXPECT_GT(slow_wait, fast_wait) << "oracle must adapt its wait to the query's truth";

  // Same sequence again: cached plan must give the identical wait.
  auto c = prototype.Clone();
  c->BeginQuery(ctx_, &fast);
  EXPECT_DOUBLE_EQ(c->DecideInitialWait(ctx_), fast_wait);
}

TEST_F(PolicyTest, OracleWithoutTruthFallsBackToOffline) {
  OraclePolicy oracle;
  OfflineOptimalPolicy offline;
  oracle.BeginQuery(ctx_, nullptr);
  offline.BeginQuery(ctx_, nullptr);
  EXPECT_NEAR(oracle.DecideInitialWait(ctx_), offline.DecideInitialWait(ctx_),
              ctx_.epsilon + 1e-9);
}

TEST_F(PolicyTest, QueryTruthOverlayKeepsFanouts) {
  QueryTruth truth;
  truth.stage_durations.push_back(std::make_shared<ExponentialDistribution>(1.0));
  truth.stage_durations.push_back(std::make_shared<ExponentialDistribution>(2.0));
  TreeSpec overlaid = truth.OverlayOn(tree_);
  EXPECT_EQ(overlaid.stage(0).fanout, 20);
  EXPECT_EQ(overlaid.stage(1).fanout, 10);
  EXPECT_EQ(overlaid.stage(0).duration->family(), DistributionFamily::kExponential);
}

TEST_F(PolicyTest, OverlayRejectsWrongStageCount) {
  QueryTruth truth;
  truth.stage_durations.push_back(std::make_shared<ExponentialDistribution>(1.0));
  EXPECT_DEATH(truth.OverlayOn(tree_), "mismatch");
}

}  // namespace
}  // namespace cedar
