// WaitTableStore contract: content-fingerprint keying (collisions resolved
// by full key compare), single-flight construction, LRU-bounded capacity,
// clamped-lookup propagation across eviction, and bit-identical parallel
// builds. Carries the tier1_tsan label: the single-flight and shared-build
// paths are meant to run under -DCEDAR_SANITIZE=thread.

#include "src/core/wait_table_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/thread_pool.h"
#include "src/core/quality.h"
#include "src/stats/distribution.h"

namespace cedar {
namespace {

// A small grid keeps each build to a few milliseconds so the concurrency
// tests can afford many of them.
struct StoreFixture {
  StoreFixture()
      : upper(TabulateCdf(LogNormalDistribution(3.25, 0.95), 400.0, 81)),
        epsilon(400.0 / 80.0) {
    spec.location_min = 1.0;
    spec.location_max = 5.0;
    spec.location_points = 9;
    spec.scale_min = 0.2;
    spec.scale_max = 1.4;
    spec.scale_points = 7;
  }

  WaitTableKey KeyAt(double deadline) const {
    return WaitTableKey::Of(spec, 8, upper, deadline, epsilon);
  }

  WaitTableSpec spec;
  PiecewiseLinear upper;
  double epsilon;
};

TEST(WaitTableKeyTest, FingerprintDistinguishesEveryKeyField) {
  StoreFixture fixture;
  const WaitTableKey base = fixture.KeyAt(400.0);
  EXPECT_EQ(base.Fingerprint(), fixture.KeyAt(400.0).Fingerprint());
  EXPECT_TRUE(base == fixture.KeyAt(400.0));

  auto expect_differs = [&](WaitTableKey mutated, const char* field) {
    EXPECT_FALSE(base == mutated) << field;
    EXPECT_NE(base.Fingerprint(), mutated.Fingerprint()) << field;
  };
  WaitTableKey k = base;
  k.deadline = 401.0;
  expect_differs(k, "deadline");
  k = base;
  k.fanout = 9;
  expect_differs(k, "fanout");
  k = base;
  k.epsilon *= 2.0;
  expect_differs(k, "epsilon");
  k = base;
  k.spec.scale_points = 8;
  expect_differs(k, "spec.scale_points");
  k = base;
  k.spec.family = DistributionFamily::kNormal;
  expect_differs(k, "spec.family");
  k = base;
  k.curve_max_x *= 2.0;
  expect_differs(k, "curve_max_x");
  k = base;
  k.curve_ys[1] += 1e-9;
  expect_differs(k, "curve_ys content");
}

TEST(WaitTableStoreTest, HitsMissesAndReuseByContent) {
  StoreFixture fixture;
  WaitTableStore store;
  auto a = store.GetOrBuild(fixture.KeyAt(300.0), fixture.upper);
  auto b = store.GetOrBuild(fixture.KeyAt(400.0), fixture.upper);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);

  // Content-equal keys hit regardless of which objects they were built from.
  auto a_again = store.GetOrBuild(fixture.spec, 8, fixture.upper, 300.0, fixture.epsilon);
  EXPECT_EQ(a_again, a);

  WaitTableStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.Gets(), 3);
  EXPECT_EQ(store.size(), 2u);

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.GetStats().Gets(), 0);
}

TEST(WaitTableStoreTest, FingerprintCollisionsResolveByFullKeyCompare) {
  // fingerprint_mask=0 collapses every fingerprint to 0: all keys share one
  // chain, so correctness rests purely on the chained content compare.
  StoreFixture fixture;
  WaitTableStoreOptions options;
  options.fingerprint_mask = 0;
  WaitTableStore store(options);

  auto a = store.GetOrBuild(fixture.KeyAt(300.0), fixture.upper);
  auto b = store.GetOrBuild(fixture.KeyAt(400.0), fixture.upper);
  EXPECT_NE(a, b) << "colliding keys must still resolve to distinct tables";
  EXPECT_EQ(a->deadline(), 300.0);
  EXPECT_EQ(b->deadline(), 400.0);

  EXPECT_EQ(store.GetOrBuild(fixture.KeyAt(300.0), fixture.upper), a);
  EXPECT_EQ(store.GetOrBuild(fixture.KeyAt(400.0), fixture.upper), b);
  WaitTableStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.hits, 2);
}

TEST(WaitTableStoreTest, SingleFlightBuildsExactlyOnce) {
  StoreFixture fixture;
  WaitTableStore store;
  const WaitTableKey key = fixture.KeyAt(400.0);

  constexpr int kThreads = 8;
  std::vector<WaitTableStore::TablePtr> tables(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Crude start barrier so the lookups race into the same miss window.
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      tables[static_cast<size_t>(t)] = store.GetOrBuild(key, fixture.upper);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(tables[static_cast<size_t>(t)], tables[0]) << "thread " << t;
  }
  WaitTableStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.misses, 1) << "exactly one thread builds";
  EXPECT_EQ(stats.hits + stats.build_waits, kThreads - 1)
      << "the rest hit or block on the in-flight build";
  EXPECT_EQ(store.size(), 1u);
}

TEST(WaitTableStoreTest, LruEvictsLeastRecentlyUsedWithinCapacity) {
  StoreFixture fixture;
  WaitTableStoreOptions options;
  options.capacity = 2;
  options.num_shards = 1;  // one shard so the capacity bound is exact
  WaitTableStore store(options);

  auto a = store.GetOrBuild(fixture.KeyAt(100.0), fixture.upper);
  auto b = store.GetOrBuild(fixture.KeyAt(200.0), fixture.upper);
  EXPECT_EQ(store.GetOrBuild(fixture.KeyAt(100.0), fixture.upper), a);  // touch A
  auto c = store.GetOrBuild(fixture.KeyAt(300.0), fixture.upper);      // evicts B
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.GetStats().evictions, 1);

  // A stayed resident (it was touched); B was evicted and must rebuild.
  long long misses_before = store.GetStats().misses;
  EXPECT_EQ(store.GetOrBuild(fixture.KeyAt(100.0), fixture.upper), a);
  EXPECT_EQ(store.GetStats().misses, misses_before);
  auto b_rebuilt = store.GetOrBuild(fixture.KeyAt(200.0), fixture.upper);
  EXPECT_NE(b_rebuilt, b);
  EXPECT_EQ(store.GetStats().misses, misses_before + 1);
}

TEST(WaitTableStoreTest, ClampedLookupsSurviveEviction) {
  StoreFixture fixture;
  WaitTableStoreOptions options;
  options.capacity = 1;
  options.num_shards = 1;
  WaitTableStore store(options);

  auto a = store.GetOrBuild(fixture.KeyAt(100.0), fixture.upper);
  a->Lookup(fixture.spec.location_max + 10.0, fixture.spec.scale_max + 10.0);  // clamps
  a->Lookup(fixture.spec.location_min, fixture.spec.scale_min);                // in grid
  EXPECT_EQ(store.GetStats().clamped_lookups, 1) << "resident table's counter is visible";

  store.GetOrBuild(fixture.KeyAt(200.0), fixture.upper);  // evicts A (capacity 1)
  EXPECT_EQ(store.GetStats().evictions, 1);
  EXPECT_EQ(store.GetStats().clamped_lookups, 1)
      << "the evicted table's clamp count is retired into the store stats";
}

TEST(WaitTableStoreTest, ParallelBuildIsBitIdenticalToSerial) {
  StoreFixture fixture;
  ThreadPool pool(4);
  WaitTableStoreOptions options;
  options.build_pool = &pool;
  WaitTableStore store(options);

  auto parallel = store.GetOrBuild(fixture.KeyAt(400.0), fixture.upper);
  WaitTable serial(fixture.spec, 8, fixture.upper, 400.0, fixture.epsilon);

  for (int li = 0; li < fixture.spec.location_points; ++li) {
    double location = Lerp(fixture.spec.location_min, fixture.spec.location_max,
                           static_cast<double>(li) / (fixture.spec.location_points - 1));
    for (int si = 0; si < fixture.spec.scale_points; ++si) {
      double scale = Lerp(fixture.spec.scale_min, fixture.spec.scale_max,
                          static_cast<double>(si) / (fixture.spec.scale_points - 1));
      EXPECT_EQ(parallel->Lookup(location, scale), serial.Lookup(location, scale))
          << "grid point (" << li << ", " << si << ")";
    }
  }
}

TEST(WaitTableStoreTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&WaitTableStore::Global(), &WaitTableStore::Global());
}

}  // namespace
}  // namespace cedar
