#include "src/stats/fitting.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/stats/rng.h"

namespace cedar {
namespace {

std::vector<PercentilePoint> PercentilesOf(const Distribution& dist) {
  std::vector<PercentilePoint> points;
  for (double p : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    points.push_back({p, dist.Quantile(p)});
  }
  return points;
}

TEST(FitterTest, RecoversLogNormalExactly) {
  LogNormalDistribution truth(2.77, 0.84);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kLogNormal);
  EXPECT_NEAR(best.spec.p1, 2.77, 1e-6);
  EXPECT_NEAR(best.spec.p2, 0.84, 1e-6);
  EXPECT_LT(best.relative_rms_error, 1e-6);
}

TEST(FitterTest, RecoversNormalExactly) {
  NormalDistribution truth(40.0, 10.0);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kNormal);
  EXPECT_NEAR(best.spec.p1, 40.0, 1e-6);
  EXPECT_NEAR(best.spec.p2, 10.0, 1e-6);
}

TEST(FitterTest, RecoversExponentialExactly) {
  ExponentialDistribution truth(0.25);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kExponential);
  EXPECT_NEAR(best.spec.p1, 0.25, 1e-6);
}

TEST(FitterTest, RecoversParetoExactly) {
  ParetoDistribution truth(2.0, 3.0);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kPareto);
  EXPECT_NEAR(best.spec.p1, 2.0, 1e-6);
  EXPECT_NEAR(best.spec.p2, 3.0, 1e-6);
}

TEST(FitterTest, RecoversWeibullExactly) {
  WeibullDistribution truth(1.5, 10.0);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kWeibull);
  EXPECT_NEAR(best.spec.p1, 1.5, 1e-6);
  EXPECT_NEAR(best.spec.p2, 10.0, 1e-6);
}

TEST(FitterTest, RecoversUniformExactly) {
  UniformDistribution truth(3.0, 9.0);
  DistributionFitter fitter;
  DistributionFit best = fitter.BestFit(PercentilesOf(truth));
  EXPECT_EQ(best.spec.family, DistributionFamily::kUniform);
  EXPECT_NEAR(best.spec.p1, 3.0, 1e-6);
  EXPECT_NEAR(best.spec.p2, 9.0, 1e-6);
}

TEST(FitterTest, LogNormalWinsOnSampledLogNormalData) {
  // The §4.2.1 scenario: fit percentiles of observed (sampled) durations;
  // log-normal should rank first among candidates.
  LogNormalDistribution truth(2.94, 0.55);  // Google
  Rng rng(42);
  std::vector<double> samples(20000);
  for (auto& s : samples) {
    s = truth.Sample(rng);
  }
  DistributionFitter fitter;
  auto fits = fitter.FitSamples(samples);
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().spec.family, DistributionFamily::kLogNormal);
  EXPECT_NEAR(fits.front().spec.p1, 2.94, 0.05);
  EXPECT_NEAR(fits.front().spec.p2, 0.55, 0.05);
  // Paper: < 5% error even at high percentiles for the Google fit.
  EXPECT_LT(fits.front().max_relative_error, 0.05);
}

TEST(FitterTest, RanksByError) {
  LogNormalDistribution truth(1.0, 1.2);
  DistributionFitter fitter;
  auto fits = fitter.FitPercentiles(PercentilesOf(truth));
  for (size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].relative_rms_error, fits[i].relative_rms_error);
  }
}

TEST(FitterTest, CandidateRestriction) {
  DistributionFitter fitter;
  fitter.SetCandidates({DistributionFamily::kNormal});
  LogNormalDistribution truth(1.0, 0.8);
  auto fits = fitter.FitPercentiles(PercentilesOf(truth));
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits.front().spec.family, DistributionFamily::kNormal);
}

TEST(FitterTest, NegativeDataExcludesPositiveFamilies) {
  // Percentiles with negative values: lognormal/pareto/weibull must drop out.
  NormalDistribution truth(0.0, 5.0);
  DistributionFitter fitter;
  auto fits = fitter.FitPercentiles(PercentilesOf(truth));
  for (const auto& fit : fits) {
    EXPECT_NE(fit.spec.family, DistributionFamily::kLogNormal);
    EXPECT_NE(fit.spec.family, DistributionFamily::kPareto);
    EXPECT_NE(fit.spec.family, DistributionFamily::kWeibull);
  }
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().spec.family, DistributionFamily::kNormal);
}

TEST(FitterTest, BingPublishedPercentilesFitLogNormal) {
  // Figure 4's published percentiles (330us median, 1.1ms p90, 14ms p99).
  // Three points under-determine the family choice, so fit log-normal
  // directly (the paper's chosen type) and check the parameters land in the
  // neighbourhood of its quoted (5.9, 1.25) fit.
  std::vector<PercentilePoint> points = {{0.50, 330.0}, {0.90, 1100.0}, {0.99, 14000.0}};
  DistributionFitter fitter;
  fitter.SetCandidates({DistributionFamily::kLogNormal});
  DistributionFit best = fitter.BestFit(points);
  EXPECT_EQ(best.spec.family, DistributionFamily::kLogNormal);
  EXPECT_NEAR(best.spec.p1, 5.9, 0.4);
  EXPECT_GT(best.spec.p2, 1.0);
  EXPECT_LT(best.spec.p2, 2.0);
}

TEST(EvaluateFitTest, ZeroErrorOnOwnQuantiles) {
  DistributionSpec spec;
  spec.family = DistributionFamily::kLogNormal;
  spec.p1 = 2.0;
  spec.p2 = 0.7;
  auto dist = MakeDistribution(spec);
  auto fit = EvaluateFit(spec, PercentilesOf(*dist));
  EXPECT_LT(fit.relative_rms_error, 1e-12);
  EXPECT_LT(fit.max_relative_error, 1e-12);
}

TEST(FitterDeathTest, RejectsBadPercentiles) {
  DistributionFitter fitter;
  EXPECT_DEATH(fitter.FitPercentiles({{0.0, 1.0}, {0.5, 2.0}}), "percentile");
  EXPECT_DEATH(fitter.FitPercentiles({{0.5, 1.0}}), "at least two");
}

}  // namespace
}  // namespace cedar
