#include "src/stats/normal_math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 0.0);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(NormalCdf(0.0), 0.5);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdfTest, TailAccuracy) {
  // Deep tails must not flush to 0/1 prematurely (erfc-based).
  EXPECT_GT(NormalCdf(-8.0), 0.0);
  EXPECT_LT(NormalCdf(-8.0), 1e-14);
  EXPECT_LT(NormalCdf(8.0), 1.0 + 1e-16);
}

TEST(NormalQuantileTest, RoundTripsWithCdf) {
  for (double p = 0.0005; p < 1.0; p += 0.0101) {
    double z = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(z), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-10);
}

TEST(NormalQuantileTest, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-11) << "p=" << p;
  }
}

TEST(NormalQuantileTest, ExtremeTails) {
  double z = NormalQuantile(1e-10);
  EXPECT_NEAR(NormalCdf(z), 1e-10, 1e-13);
  EXPECT_LT(z, -6.0);
}

TEST(NormalQuantileDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH(NormalQuantile(0.0), "requires p");
  EXPECT_DEATH(NormalQuantile(1.0), "requires p");
}

}  // namespace
}  // namespace cedar
