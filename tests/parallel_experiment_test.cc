// Concurrency contract of the parallel experiment engine: results are
// bit-identical for every thread count, paired samples stay aligned across
// policies, and driver-assigned query sequence ids are monotone and never 0.
// These tests carry the tier1_tsan CTest label and are meant to also run
// under -DCEDAR_SANITIZE=thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/cluster/experiment.h"
#include "src/core/policies.h"
#include "src/core/policy_registry.h"
#include "src/core/tracing_policy.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sim/experiment.h"
#include "src/sim/experiment_engine.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

ExperimentConfig SimConfig(int threads, int queries = 24, double deadline = 800.0) {
  ExperimentConfig config;
  config.deadline = deadline;
  config.num_queries = queries;
  config.seed = 7;
  config.threads = threads;
  return config;
}

// Exact (bitwise) equality of two per-query sample vectors.
void ExpectSameSamples(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.values()[i], b.values()[i]) << "query " << i;
  }
}

TEST(ParallelExperimentTest, SimResultsIdenticalForAnyThreadCount) {
  auto workload = MakeFacebookWorkload(8, 8);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;    // online learner state per node
  OraclePolicy ideal;   // shared per-query plan cache
  std::vector<const WaitPolicy*> policies = {&baseline, &cedar, &ideal};

  ExperimentResult serial = RunExperiment(workload, policies, SimConfig(1));
  for (int threads : {2, 8}) {
    ExperimentResult parallel = RunExperiment(workload, policies, SimConfig(threads));
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (size_t p = 0; p < serial.outcomes.size(); ++p) {
      EXPECT_EQ(parallel.outcomes[p].policy_name, serial.outcomes[p].policy_name);
      ExpectSameSamples(parallel.outcomes[p].quality, serial.outcomes[p].quality);
      ExpectSameSamples(parallel.outcomes[p].tier0_send_time,
                        serial.outcomes[p].tier0_send_time);
      EXPECT_EQ(parallel.outcomes[p].root_arrivals_late,
                serial.outcomes[p].root_arrivals_late);
    }
    EXPECT_EQ(parallel.ImprovementPercent("prop-split", "cedar"),
              serial.ImprovementPercent("prop-split", "cedar"));
    EXPECT_EQ(parallel.ImprovementPercent("prop-split", "ideal"),
              serial.ImprovementPercent("prop-split", "ideal"));
  }
}

TEST(ParallelExperimentTest, ReusedSweepPoolIsBitIdenticalToPerCallPools) {
  // RunDeadlineSweep shares one ThreadPool across all deadlines of a sweep
  // via ExperimentDriverConfig::pool; reuse must change nothing but
  // wall-clock, including back-to-back runs on the same (dirty) pool.
  auto workload = MakeFacebookWorkload(8, 8);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  std::vector<const WaitPolicy*> policies = {&baseline, &cedar};

  ThreadPool shared_pool(4);
  for (double deadline : {400.0, 800.0}) {
    ExperimentConfig fresh = SimConfig(4, 24, deadline);
    ExperimentResult per_call = RunExperiment(workload, policies, fresh);

    ExperimentConfig reused = SimConfig(1, 24, deadline);
    reused.pool = &shared_pool;  // pool takes precedence over threads
    ExperimentResult pooled = RunExperiment(workload, policies, reused);

    ASSERT_EQ(pooled.outcomes.size(), per_call.outcomes.size());
    for (size_t p = 0; p < per_call.outcomes.size(); ++p) {
      ExpectSameSamples(pooled.outcomes[p].quality, per_call.outcomes[p].quality);
      ExpectSameSamples(pooled.outcomes[p].tier0_send_time,
                        per_call.outcomes[p].tier0_send_time);
    }
  }
  // The borrowed pool stays usable after the driver returns.
  EXPECT_EQ(shared_pool.num_threads(), 4);
  EXPECT_GT(shared_pool.GetStats().submitted, 0);
}

TEST(ParallelExperimentTest, WaitTableCacheIsDetachedAcrossWorkers) {
  // With share_wait_tables=false, use_wait_table shares a mutable table
  // cache across Clone()s; worker forks must detach it. Identical results at
  // 1 and 8 threads prove the detached caches change nothing but wall-clock.
  auto workload = MakeFacebookWorkload(8, 8);
  CedarPolicyOptions options;
  options.use_wait_table = true;
  options.share_wait_tables = false;
  CedarPolicy cedar(options);
  std::vector<const WaitPolicy*> policies = {&cedar};

  ExperimentResult serial = RunExperiment(workload, policies, SimConfig(1));
  ExperimentResult parallel = RunExperiment(workload, policies, SimConfig(8));
  ExpectSameSamples(parallel.Outcome("cedar").quality, serial.Outcome("cedar").quality);
}

TEST(ParallelExperimentTest, WaitTableStoreIsBitIdenticalToPrivateCaches) {
  // The shared WaitTableStore must be a pure amortization: for every thread
  // count, sweep results with the store (workers share single-flight-built
  // tables) are byte-identical to the per-fork private-cache baseline — and
  // to the serial run of either configuration.
  auto workload = MakeFacebookWorkload(8, 8);
  CedarPolicyOptions options;
  options.use_wait_table = true;
  options.share_wait_tables = false;
  CedarPolicy private_caches(options);
  options.share_wait_tables = true;
  CedarPolicy shared_store(options);

  for (double deadline : {400.0, 800.0}) {
    ExperimentResult baseline =
        RunExperiment(workload, {&private_caches}, SimConfig(1, 24, deadline));
    for (int threads : {1, 4}) {
      // Experiment-scoped store: exercises the ctx.table_store plumbing and
      // keeps the test independent of the process-global store's contents.
      WaitTableStore store;
      ExperimentConfig config = SimConfig(threads, 24, deadline);
      config.wait_table_store = &store;
      ExperimentResult stored = RunExperiment(workload, {&shared_store}, config);
      ExpectSameSamples(stored.Outcome("cedar").quality, baseline.Outcome("cedar").quality);
      ExpectSameSamples(stored.Outcome("cedar").tier0_send_time,
                        baseline.Outcome("cedar").tier0_send_time);
      EXPECT_GT(store.GetStats().Gets(), 0) << "the store was supposed to serve tables";
    }
  }
}

TEST(ParallelExperimentTest, ClusterResultsIdenticalForAnyThreadCount) {
  auto workload = MakeFacebookWorkload(6, 6);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  std::vector<const WaitPolicy*> policies = {&baseline, &cedar};

  ClusterExperimentConfig config;
  config.cluster.machines = 12;
  config.cluster.slots_per_machine = 3;
  config.cluster.slow_machine_fraction = 0.25;
  config.cluster.slow_machine_factor = 2.0;
  config.deadline = 800.0;
  config.num_queries = 16;
  config.seed = 11;
  config.run.speculation.enabled = true;  // exercises runtime-internal RNG

  config.threads = 1;
  ClusterExperimentResult serial = RunClusterExperiment(workload, policies, config);
  for (int threads : {2, 8}) {
    config.threads = threads;
    ClusterExperimentResult parallel = RunClusterExperiment(workload, policies, config);
    for (size_t p = 0; p < serial.outcomes.size(); ++p) {
      ExpectSameSamples(parallel.outcomes[p].quality, serial.outcomes[p].quality);
    }
    EXPECT_EQ(parallel.total_clones_launched, serial.total_clones_launched);
    EXPECT_EQ(parallel.total_clones_won, serial.total_clones_won);
    EXPECT_EQ(parallel.waves, serial.waves);
    EXPECT_EQ(parallel.ImprovementPercent("prop-split", "cedar"),
              serial.ImprovementPercent("prop-split", "cedar"));
  }
}

TEST(ParallelExperimentTest, SimResultsIdenticalWithInstrumentationEnabled) {
  // The observability layer is a write-only side channel: with metrics,
  // profiling, AND tracing all enabled, results must stay bit-identical to
  // the uninstrumented serial run for every thread count.
  auto workload = MakeFacebookWorkload(8, 8);
  ProportionalSplitPolicy baseline;
  CedarPolicy cedar;
  std::vector<const WaitPolicy*> policies = {&baseline, &cedar};

  ExperimentResult plain = RunExperiment(workload, policies, SimConfig(1));

  SetMetricsEnabled(true);
  SetProfilingEnabled(true);
  for (int threads : {1, 2, 8}) {
    TraceCollector collector;
    ExperimentConfig config = SimConfig(threads);
    config.sim.trace = &collector;
    ExperimentResult instrumented = RunExperiment(workload, policies, config);
    for (size_t p = 0; p < plain.outcomes.size(); ++p) {
      ExpectSameSamples(instrumented.outcomes[p].quality, plain.outcomes[p].quality);
      ExpectSameSamples(instrumented.outcomes[p].tier0_send_time,
                        plain.outcomes[p].tier0_send_time);
      EXPECT_EQ(instrumented.outcomes[p].root_arrivals_late,
                plain.outcomes[p].root_arrivals_late);
    }
    EXPECT_GT(collector.size(), 0u) << "tracing was supposed to be on";
  }
  SetMetricsEnabled(false);
  SetProfilingEnabled(false);
}

TEST(ParallelExperimentTest, ClusterResultsIdenticalWithInstrumentationEnabled) {
  auto workload = MakeFacebookWorkload(6, 6);
  CedarPolicy cedar;
  std::vector<const WaitPolicy*> policies = {&cedar};

  ClusterExperimentConfig config;
  config.cluster.machines = 8;
  config.cluster.slots_per_machine = 2;
  config.deadline = 800.0;
  config.num_queries = 12;
  config.seed = 19;
  config.run.speculation.enabled = true;

  config.threads = 1;
  ClusterExperimentResult plain = RunClusterExperiment(workload, policies, config);

  SetMetricsEnabled(true);
  SetProfilingEnabled(true);
  for (int threads : {1, 2, 8}) {
    TraceCollector collector;
    config.threads = threads;
    config.run.trace = &collector;
    ClusterExperimentResult instrumented = RunClusterExperiment(workload, policies, config);
    ExpectSameSamples(instrumented.Outcome("cedar").quality, plain.Outcome("cedar").quality);
    EXPECT_EQ(instrumented.total_clones_launched, plain.total_clones_launched);
    EXPECT_EQ(instrumented.total_clones_won, plain.total_clones_won);
    EXPECT_GT(collector.size(), 0u);
  }
  config.run.trace = nullptr;
  SetMetricsEnabled(false);
  SetProfilingEnabled(false);
}

TEST(ParallelExperimentTest, PairedSamplesStayAlignedAcrossPolicies) {
  // Every outcome must hold one sample per query in query order: a policy's
  // per-query quality is identical whether it runs alone or alongside
  // others, at any thread count.
  auto workload = MakeFacebookWorkload(8, 8);
  FixedWaitPolicy fixed(300.0);
  CedarPolicy cedar;
  OraclePolicy ideal;

  ExperimentResult together =
      RunExperiment(workload, {&fixed, &cedar, &ideal}, SimConfig(8));
  ExperimentResult alone = RunExperiment(workload, {&fixed}, SimConfig(8));
  for (const auto& outcome : together.outcomes) {
    EXPECT_EQ(outcome.quality.size(), 24u);
  }
  ExpectSameSamples(together.Outcome("fixed").quality, alone.Outcome("fixed").quality);
}

TEST(ParallelExperimentTest, SequenceIdsAreMonotoneAndNeverZero) {
  // The driver must stamp every query with a non-zero sequence id that is
  // monotone in the query index (OraclePolicy's plan cache treats 0 as
  // "unknown" and would silently recompute every time).
  auto workload = MakeFacebookWorkload(6, 6);
  DecisionRecorder recorder;
  TracingPolicy traced(MakePolicyByName("prop-split"), &recorder);

  ExperimentConfig config = SimConfig(8, 20);
  RunExperiment(workload, {&traced}, config);

  std::set<uint64_t> sequences;
  for (const auto& record : recorder.Snapshot()) {
    EXPECT_NE(record.query_sequence, 0u);
    sequences.insert(record.query_sequence);
  }
  ASSERT_EQ(sequences.size(), 20u) << "one distinct sequence per query";
  // DriverQuerySequence(seed, q) for q in [0, 20): contiguous and ordered.
  uint64_t expected = DriverQuerySequence(config.seed, 0);
  for (uint64_t sequence : sequences) {  // std::set iterates in order
    EXPECT_EQ(sequence, expected);
    ++expected;
  }
}

TEST(ParallelExperimentTest, OwningOverloadMatchesRawPointerOverload) {
  auto workload = MakeFacebookWorkload(6, 6);
  auto owned = MakePolicyList("prop-split,cedar");
  ExperimentResult from_owned = RunExperiment(workload, owned, SimConfig(4, 12));
  ExperimentResult from_raw = RunExperiment(workload, PolicyPointers(owned), SimConfig(4, 12));
  for (size_t p = 0; p < from_owned.outcomes.size(); ++p) {
    ExpectSameSamples(from_owned.outcomes[p].quality, from_raw.outcomes[p].quality);
  }
  // Prototypes are borrowed, not consumed: still usable afterwards.
  EXPECT_EQ(owned.front()->name(), "prop-split");
}

TEST(ParallelExperimentTest, ThreadCountCappedByQueries) {
  // More workers than queries must not crash or change results.
  auto workload = MakeFacebookWorkload(6, 6);
  ProportionalSplitPolicy baseline;
  ExperimentResult wide = RunExperiment(workload, {&baseline}, SimConfig(16, 3));
  ExperimentResult narrow = RunExperiment(workload, {&baseline}, SimConfig(1, 3));
  ExpectSameSamples(wide.Outcome("prop-split").quality, narrow.Outcome("prop-split").quality);
}

}  // namespace
}  // namespace cedar
