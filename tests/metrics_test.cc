#include "src/obs/metrics.h"

#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/csv.h"

namespace cedar {
namespace {

TEST(CounterTest, SingleThreaded) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(10);
  EXPECT_EQ(counter.Value(), 11);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(CounterTest, ShardedAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<long long>(kThreads) * kIncrementsPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, ExactStats) {
  Histogram histogram({0.001, 1000.0, 40});
  EXPECT_EQ(histogram.Count(), 0);
  for (double value : {1.0, 2.0, 3.0, 4.0}) {
    histogram.Observe(value);
  }
  EXPECT_EQ(histogram.Count(), 4);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 4.0);
}

TEST(HistogramTest, QuantilesWithinEnvelope) {
  Histogram histogram({0.01, 100.0, 60});
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(static_cast<double>(i) * 0.05);  // 0.05 .. 50
  }
  double p50 = histogram.Quantile(0.5);
  double p99 = histogram.Quantile(0.99);
  // Geometric buckets estimate; exact envelope bounds always hold.
  EXPECT_GE(p50, histogram.Min());
  EXPECT_LE(p50, histogram.Max());
  EXPECT_LE(p50, p99);
  // p50 of uniform 0.05..50 is ~25; the 60-bucket log grid is coarse but
  // should land the estimate within a bucket's relative width.
  EXPECT_NEAR(p50, 25.0, 25.0 * 0.25);
  EXPECT_GT(p99, 40.0);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram histogram({1.0, 10.0, 5});
  histogram.Observe(0.001);   // below min
  histogram.Observe(1000.0);  // above max
  EXPECT_EQ(histogram.Count(), 2);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.001);
  EXPECT_DOUBLE_EQ(histogram.Max(), 1000.0);
  // Quantiles stay inside the exact envelope even for clamped values.
  EXPECT_GE(histogram.Quantile(0.0), histogram.Min());
  EXPECT_LE(histogram.Quantile(1.0), histogram.Max());
}

TEST(HistogramTest, ShardedObserveAcrossThreads) {
  Histogram histogram({1e-3, 1e3, 50});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1.0 + static_cast<double>((t * kPerThread + i) % 100));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.Count(), static_cast<long long>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
}

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("a");
  Counter& a_again = registry.GetCounter("a");
  EXPECT_EQ(&a, &a_again);
  a.Increment(3);
  EXPECT_EQ(registry.GetCounter("a").Value(), 3);

  Gauge& g = registry.GetGauge("g");
  g.Set(1.25);
  Histogram& h = registry.GetHistogram("h");
  h.Observe(2.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "a");
  EXPECT_EQ(snapshot.counters[0].value, 3);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 1.25);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].Mean(), 2.0);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra").Increment();
  registry.GetCounter("alpha").Increment();
  registry.GetCounter("mid").Increment();
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[1].name, "mid");
  EXPECT_EQ(snapshot.counters[2].name, "zebra");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(7);
  registry.GetHistogram("h").Observe(1.0);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c").Value(), 0);
  EXPECT_EQ(registry.GetHistogram("h").Count(), 0);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.histograms.size(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndWrite) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared").Increment();
        registry.GetHistogram("dist").Observe(1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("shared").Value(), kThreads * 1000);
  EXPECT_EQ(registry.GetHistogram("dist").Count(), kThreads * 1000);
}

TEST(MetricsSnapshotTest, ReportListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("my.counter").Increment(5);
  registry.GetGauge("my.gauge").Set(0.5);
  registry.GetHistogram("my.histogram").Observe(3.0);
  std::ostringstream out;
  registry.Snapshot().WriteReport(out);
  std::string report = out.str();
  EXPECT_NE(report.find("my.counter"), std::string::npos);
  EXPECT_NE(report.find("my.gauge"), std::string::npos);
  EXPECT_NE(report.find("my.histogram"), std::string::npos);
}

TEST(MetricsSnapshotTest, EmptyReportSaysSo) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.Snapshot().WriteReport(out);
  EXPECT_NE(out.str().find("no metrics recorded"), std::string::npos);
}

TEST(MetricsSnapshotTest, CsvExport) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(2);
  registry.GetHistogram("h").Observe(4.0);
  std::string path = ::testing::TempDir() + "/cedar_metrics.csv";
  registry.Snapshot().WriteCsv(path);
  CsvDocument doc = ReadCsvFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][static_cast<size_t>(doc.ColumnIndex("name"))], "c");
  EXPECT_EQ(doc.rows[0][static_cast<size_t>(doc.ColumnIndex("kind"))], "counter");
  EXPECT_EQ(doc.rows[1][static_cast<size_t>(doc.ColumnIndex("kind"))], "histogram");
  EXPECT_EQ(doc.rows[1][static_cast<size_t>(doc.ColumnIndex("count"))], "1");
}

TEST(LabeledMetricNameTest, FormatsKeyValueSuffix) {
  EXPECT_EQ(LabeledMetricName("sim.queries", "deadline_ms", 250.0),
            "sim.queries{deadline_ms=250}");
  EXPECT_EQ(LabeledMetricName("sim.queries", "deadline_ms", 2.5),
            "sim.queries{deadline_ms=2.5}");
}

TEST(LabeledMetricNameTest, EquivalentDoublesCollapseToOneSeries) {
  // %g formatting: 250 and 250.0 must be the same series name.
  EXPECT_EQ(LabeledMetricName("n", "deadline_ms", 250),
            LabeledMetricName("n", "deadline_ms", 250.0));
}

TEST(LabeledMetricNameTest, LabeledSeriesIsDistinctFromUnlabeled) {
  MetricsRegistry registry;
  registry.GetCounter("sim.queries").Increment(3);
  registry.GetCounter(LabeledMetricName("sim.queries", "deadline_ms", 250.0)).Increment(2);
  EXPECT_EQ(registry.GetCounter("sim.queries").Value(), 3);
  EXPECT_EQ(registry.GetCounter("sim.queries{deadline_ms=250}").Value(), 2);
}

TEST(MetricsEnabledTest, DefaultsOffAndToggles) {
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
}

}  // namespace
}  // namespace cedar
