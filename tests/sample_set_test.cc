#include "src/common/sample_set.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(SampleSetTest, MeanAndStdDev) {
  SampleSet s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample (n-1) stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleSetTest, StdDevOfSingletonIsZero) {
  SampleSet s({3.0});
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(SampleSetTest, MinMaxSum) {
  SampleSet s;
  s.AddAll({3.0, -1.0, 10.0});
  EXPECT_DOUBLE_EQ(s.Min(), -1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 10.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 12.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(SampleSetTest, QuantileAfterIncrementalAdds) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Median(), 50.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
}

TEST(SampleSetTest, SortCacheInvalidatedByAdd) {
  SampleSet s({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Max(), 10.0);
  EXPECT_DOUBLE_EQ(s.Ecdf(3.5), 0.75);
}

TEST(SampleSetTest, EcdfSteps) {
  SampleSet s({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.Ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.Ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.Ecdf(100.0), 1.0);
}

TEST(SampleSetTest, CdfPointsCoverFullRange) {
  SampleSet s;
  for (int i = 1; i <= 1000; ++i) {
    s.Add(static_cast<double>(i));
  }
  auto points = s.CdfPoints(10);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_DOUBLE_EQ(points.front().first, 1.0);
  EXPECT_DOUBLE_EQ(points.back().first, 1000.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  // Fractions are non-decreasing.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
}

TEST(SampleSetTest, CdfPointsFewerSamplesThanRequested) {
  SampleSet s({5.0, 1.0});
  auto points = s.CdfPoints(10);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].first, 1.0);
  EXPECT_DOUBLE_EQ(points[1].first, 5.0);
}

TEST(SampleSetTest, ValuesPreserveInsertionOrder) {
  SampleSet s({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.values()[0], 3.0);
  EXPECT_DOUBLE_EQ(s.values()[2], 2.0);
}

}  // namespace
}  // namespace cedar
