#include "src/common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(SplitCsvLineTest, Basic) {
  auto cells = SplitCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(SplitCsvLineTest, EmptyCells) {
  auto cells = SplitCsvLine(",x,");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[1], "x");
  EXPECT_EQ(cells[2], "");
}

TEST(SplitCsvLineTest, StripsCarriageReturn) {
  auto cells = SplitCsvLine("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(ParseCsvTest, HeaderAndRows) {
  CsvDocument doc = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "3");
  EXPECT_EQ(doc.ColumnIndex("y"), 1);
  EXPECT_EQ(doc.ColumnIndex("missing"), -1);
}

TEST(ParseCsvTest, SkipsBlankLines) {
  CsvDocument doc = ParseCsv("x\n\n1\n\n2\n");
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(CsvWriterTest, RoundTripThroughFile) {
  std::string path = ::testing::TempDir() + "/cedar_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.Header({"name", "value"});
    writer.Row({"alpha", "1"});
    writer.NumericRow({2.5, 3.0});
  }
  CsvDocument doc = ReadCsvFile(path);
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "alpha");
  EXPECT_EQ(std::stod(doc.rows[1][0]), 2.5);
  EXPECT_EQ(std::stod(doc.rows[1][1]), 3.0);
  std::remove(path.c_str());
}

TEST(CsvWriterDeathTest, RaggedRowDies) {
  std::string path = ::testing::TempDir() + "/cedar_csv_ragged.csv";
  CsvWriter writer(path);
  writer.Header({"a", "b"});
  EXPECT_DEATH(writer.Row({"only-one"}), "ragged");
  std::remove(path.c_str());
}

TEST(CsvWriterDeathTest, SeparatorInCellDies) {
  std::string path = ::testing::TempDir() + "/cedar_csv_sep.csv";
  CsvWriter writer(path);
  EXPECT_DEATH(writer.Row({"has,comma"}), "separator");
  std::remove(path.c_str());
}

TEST(ParseCsvDeathTest, RaggedInputDies) {
  EXPECT_DEATH(ParseCsv("a,b\n1\n"), "ragged");
}

}  // namespace
}  // namespace cedar
