#include "src/sim/tree_simulation.h"

#include <gtest/gtest.h>

#include "src/core/policies.h"

namespace cedar {
namespace {

TreeSpec SmallTree() {
  return TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 4,
                            std::make_shared<LogNormalDistribution>(2.0, 0.5), 3);
}

QueryTruth TruthOf(const TreeSpec& tree) {
  QueryTruth truth;
  truth.sequence = 1;
  for (const auto& stage : tree.stages()) {
    truth.stage_durations.push_back(stage.duration);
  }
  return truth;
}

// Hand-built realization for a 2x2 tree so outcomes are exactly computable.
QueryRealization HandRealization(const TreeSpec& tree, std::vector<double> leaf,
                                 std::vector<double> ship) {
  QueryRealization realization;
  realization.truth = TruthOf(tree);
  realization.stage_durations = {std::move(leaf), std::move(ship)};
  return realization;
}

TEST(TreeSimulationTest, FixedWaitHandComputable) {
  // 2 aggregators x 2 processes, deadline 100.
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 2,
                                     std::make_shared<LogNormalDistribution>(2.0, 0.5), 2);
  TreeSimulation sim(tree, 100.0);
  // Aggregator 0: leaves at 5 and 50; aggregator 1: leaves at 10 and 20.
  // Ships take 30 and 200.
  auto realization = HandRealization(tree, {5.0, 50.0, 10.0, 20.0}, {30.0, 200.0});

  // Wait = 25: agg0 collects only the first leaf (1 output), sends at 25,
  // arrives 55 <= 100 -> included. agg1 collects both by 20, sends early at
  // 20, arrives 220 > 100 -> dropped. Quality = 1/4.
  FixedWaitPolicy wait25(25.0);
  QueryResult result = sim.RunQuery(wait25, realization);
  EXPECT_DOUBLE_EQ(result.quality, 0.25);
  EXPECT_EQ(result.root_arrivals_in_time, 1);
  EXPECT_EQ(result.root_arrivals_late, 1);

  // Wait = 60: agg0 has both by 50 (sends early at 50), arrives 80 ->
  // included (2 outputs). agg1 still misses. Quality = 2/4.
  FixedWaitPolicy wait60(60.0);
  result = sim.RunQuery(wait60, realization);
  EXPECT_DOUBLE_EQ(result.quality, 0.5);
  EXPECT_DOUBLE_EQ(result.mean_tier0_send_time, (50.0 + 20.0) / 2.0);
}

TEST(TreeSimulationTest, DeterministicReplay) {
  TreeSpec tree = SmallTree();
  TreeSimulation sim(tree, 60.0);
  Rng rng(9);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  CedarPolicy cedar;
  QueryResult a = sim.RunQuery(cedar, realization);
  QueryResult b = sim.RunQuery(cedar, realization);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.root_arrivals_in_time, b.root_arrivals_in_time);
  EXPECT_DOUBLE_EQ(a.mean_tier0_send_time, b.mean_tier0_send_time);
}

TEST(TreeSimulationTest, GenerousDeadlineGivesFullQuality) {
  TreeSpec tree = SmallTree();
  TreeSimulation sim(tree, 1e6);
  Rng rng(10);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  for (const WaitPolicy* policy :
       std::initializer_list<const WaitPolicy*>{new ProportionalSplitPolicy(), new CedarPolicy(),
                                                new OraclePolicy()}) {
    QueryResult result = sim.RunQuery(*policy, realization);
    EXPECT_DOUBLE_EQ(result.quality, 1.0) << policy->name();
    delete policy;
  }
}

TEST(TreeSimulationTest, ZeroWaitStillShipsEmptyResults) {
  TreeSpec tree = SmallTree();
  TreeSimulation sim(tree, 60.0);
  Rng rng(11);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  FixedWaitPolicy zero(0.0);
  QueryResult result = sim.RunQuery(zero, realization);
  // Aggregators send empty results immediately; quality 0 but all root
  // arrivals happen (possibly late).
  EXPECT_DOUBLE_EQ(result.quality, 0.0);
  EXPECT_EQ(result.root_arrivals_in_time + result.root_arrivals_late, 3);
}

TEST(TreeSimulationTest, WeightedQualityUsesWeights) {
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 2,
                                     std::make_shared<LogNormalDistribution>(2.0, 0.5), 1);
  TreeSimulation sim(tree, 100.0);
  auto realization = HandRealization(tree, {5.0, 50.0}, {10.0});
  realization.leaf_weights = {9.0, 1.0};
  // Wait 25 collects only the first (weight 9) of total 10.
  FixedWaitPolicy wait25(25.0);
  QueryResult result = sim.RunQuery(wait25, realization);
  EXPECT_DOUBLE_EQ(result.quality, 0.9);
  EXPECT_DOUBLE_EQ(result.total_weight, 10.0);
}

TEST(TreeSimulationTest, ThreeLevelTreeRuns) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<LogNormalDistribution>(1.5, 0.6), 3);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(1.8, 0.5), 3);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(1.6, 0.4), 2);
  TreeSpec tree(std::move(stages));
  TreeSimulation sim(tree, 60.0);
  Rng rng(12);
  auto realization = SampleRealization(tree, TruthOf(tree), rng);
  CedarPolicy cedar;
  QueryResult result = sim.RunQuery(cedar, realization);
  EXPECT_GE(result.quality, 0.0);
  EXPECT_LE(result.quality, 1.0);
  EXPECT_EQ(result.total_weight, 18.0);
}

TEST(TreeSimulationTest, PerQueryKnowledgeFlagChangesDecisions) {
  TreeSpec tree = SmallTree();
  TreeSimulationOptions with;
  TreeSimulationOptions without;
  without.per_query_upper_knowledge = false;
  TreeSimulation sim_with(tree, 60.0, with);
  TreeSimulation sim_without(tree, 60.0, without);

  // A query whose stages are much slower than the offline belief: the
  // bottom so slow that the wait binds (no early send), the upper slow
  // enough that knowing it forces an earlier send.
  QueryTruth truth = TruthOf(tree);
  truth.sequence = 7;
  truth.stage_durations[0] = std::make_shared<LogNormalDistribution>(4.5, 0.5);
  truth.stage_durations[1] = std::make_shared<LogNormalDistribution>(3.5, 0.5);
  Rng rng(13);
  auto realization = SampleRealization(tree, truth, rng);

  OfflineOptimalPolicy policy;
  QueryResult a = sim_with.RunQuery(policy, realization);
  QueryResult b = sim_without.RunQuery(policy, realization);
  // With knowledge of the slow upper stage the policy backs off earlier.
  EXPECT_LT(a.mean_tier0_send_time, b.mean_tier0_send_time);
}

TEST(TreeSimulationTest, UpperQualityCurveAccessor) {
  TreeSpec tree = SmallTree();
  TreeSimulation sim(tree, 60.0);
  const PiecewiseLinear& curve = sim.UpperQualityCurve(0);
  EXPECT_NEAR(curve(30.0), tree.stage(1).duration->Cdf(30.0), 2e-3);
  EXPECT_DEATH(sim.UpperQualityCurve(1), "");
}

TEST(TreeSimulationDeathTest, MismatchedRealizationDies) {
  TreeSpec tree = SmallTree();
  TreeSimulation sim(tree, 60.0);
  QueryRealization realization;
  realization.truth = TruthOf(tree);
  realization.stage_durations = {{1.0}};  // wrong stage count
  FixedWaitPolicy policy(1.0);
  EXPECT_DEATH(sim.RunQuery(policy, realization), "");
}

}  // namespace
}  // namespace cedar
