#include "src/stats/order_statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(BlomScoreTest, MedianOfOddSampleIsZero) {
  EXPECT_NEAR(BlomNormalScore(3, 5), 0.0, 1e-12);
  EXPECT_NEAR(BlomNormalScore(26, 51), 0.0, 1e-12);
}

TEST(BlomScoreTest, Symmetry) {
  for (int k : {5, 10, 50}) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(BlomNormalScore(i, k), -BlomNormalScore(k + 1 - i, k), 1e-12);
    }
  }
}

TEST(ExactScoreTest, SingleSampleHasZeroMean) {
  EXPECT_NEAR(ExactNormalScore(1, 1), 0.0, 1e-9);
}

TEST(ExactScoreTest, PairMatchesClosedForm) {
  // E[max of 2 standard normals] = 1/sqrt(pi).
  double expected = 1.0 / std::sqrt(M_PI);
  EXPECT_NEAR(ExactNormalScore(2, 2), expected, 1e-8);
  EXPECT_NEAR(ExactNormalScore(1, 2), -expected, 1e-8);
}

TEST(ExactScoreTest, TripleMatchesClosedForm) {
  // E[max of 3] = 1.5/sqrt(pi).
  EXPECT_NEAR(ExactNormalScore(3, 3), 1.5 / std::sqrt(M_PI), 1e-8);
  EXPECT_NEAR(ExactNormalScore(2, 3), 0.0, 1e-9);
}

TEST(ExactScoreTest, SymmetryAndMonotonicity) {
  for (int k : {4, 10, 50, 200}) {
    double prev = -1e9;
    for (int i = 1; i <= k; ++i) {
      double score = ExactNormalScore(i, k);
      EXPECT_NEAR(score, -ExactNormalScore(k + 1 - i, k), 1e-9) << "i=" << i << " k=" << k;
      EXPECT_GT(score, prev) << "scores must be strictly increasing, i=" << i << " k=" << k;
      prev = score;
    }
  }
}

TEST(ExactScoreTest, SumOfScoresIsZero) {
  for (int k : {2, 7, 50}) {
    double sum = 0.0;
    for (int i = 1; i <= k; ++i) {
      sum += ExactNormalScore(i, k);
    }
    EXPECT_NEAR(sum, 0.0, 1e-8) << "k=" << k;
  }
}

TEST(ExactScoreTest, BlomIsCloseForModerateK) {
  for (int k : {10, 50, 100}) {
    for (int i = 1; i <= k; ++i) {
      EXPECT_NEAR(ExactNormalScore(i, k), BlomNormalScore(i, k), 0.02)
          << "i=" << i << " k=" << k;
    }
  }
}

TEST(ExactScoreTest, MatchesMonteCarlo) {
  const int k = 50;
  auto mc = MonteCarloNormalScores(k, 40000, 7);
  for (int i = 1; i <= k; ++i) {
    EXPECT_NEAR(ExactNormalScore(i, k), mc[static_cast<size_t>(i - 1)], 0.02)
        << "i=" << i;
  }
}

TEST(ExponentialScoreTest, ClosedForm) {
  // E[min of k] = 1/k; E[max of k] = H_k.
  EXPECT_DOUBLE_EQ(ExponentialScore(1, 4), 0.25);
  double harmonic4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  EXPECT_NEAR(ExponentialScore(4, 4), harmonic4, 1e-12);
}

TEST(ExponentialScoreTest, StrictlyIncreasing) {
  for (int i = 1; i < 20; ++i) {
    EXPECT_LT(ExponentialScore(i, 20), ExponentialScore(i + 1, 20));
  }
}

TEST(ScoreTableTest, CachedTableMatchesDirectComputation) {
  NormalOrderScoreTable::ClearCacheForTesting();
  const auto& table = NormalOrderScoreTable::Get(25, OrderScoreMethod::kExact);
  ASSERT_EQ(table.size(), 25u);
  for (int i = 1; i <= 25; ++i) {
    EXPECT_DOUBLE_EQ(table[static_cast<size_t>(i - 1)], ExactNormalScore(i, 25));
  }
  // Second lookup returns the same object.
  const auto& again = NormalOrderScoreTable::Get(25, OrderScoreMethod::kExact);
  EXPECT_EQ(&table, &again);
}

TEST(ScoreTableTest, BlomAndExactAreSeparateCaches) {
  NormalOrderScoreTable::ClearCacheForTesting();
  const auto& exact = NormalOrderScoreTable::Get(10, OrderScoreMethod::kExact);
  const auto& blom = NormalOrderScoreTable::Get(10, OrderScoreMethod::kBlom);
  EXPECT_NE(&exact, &blom);
  EXPECT_DOUBLE_EQ(blom[0], BlomNormalScore(1, 10));
}

TEST(ScoreDeathTest, IndexOutOfRange) {
  EXPECT_DEATH(ExactNormalScore(0, 5), "out of range");
  EXPECT_DEATH(ExactNormalScore(6, 5), "out of range");
  EXPECT_DEATH(BlomNormalScore(0, 5), "out of range");
}

}  // namespace
}  // namespace cedar
