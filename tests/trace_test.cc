#include "src/trace/trace_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/trace/calibration.h"
#include "src/trace/workloads.h"

namespace cedar {
namespace {

TEST(CalibrationTest, EffectiveMarginalSigma) {
  EXPECT_DOUBLE_EQ(EffectiveMarginalSigma(0.8, 0.0, 0.0), 0.8);
  EXPECT_NEAR(EffectiveMarginalSigma(0.6, 0.8, 0.0), 1.0, 1e-12);
  EXPECT_GT(EffectiveMarginalSigma(0.8, 0.5, 0.2), 0.8);
}

TEST(FacebookWorkloadTest, ShapeAndUnits) {
  auto workload = MakeFacebookWorkload(50, 40);
  EXPECT_EQ(workload.name(), "facebook-mr");
  EXPECT_EQ(workload.time_unit(), "s");
  TreeSpec tree = workload.OfflineTree();
  EXPECT_EQ(tree.num_stages(), 2);
  EXPECT_EQ(tree.stage(0).fanout, 50);
  EXPECT_EQ(tree.stage(1).fanout, 40);
}

TEST(FacebookWorkloadTest, OfflineMarginalReflectsTailInflation) {
  auto workload = MakeFacebookWorkload();
  TreeSpec tree = workload.OfflineTree();
  // The offline global mean must exceed the median job's stage mean by a
  // large factor (the heavy job tail is what misleads Proportional-split).
  double global_mean = tree.stage(0).duration->Mean();
  LogNormalDistribution median_job(kFacebookJobMapMu, kFacebookMapSigma);
  EXPECT_GT(global_mean, 3.0 * median_job.Mean());
}

TEST(FacebookWorkloadTest, QueriesVaryAcrossDraws) {
  auto workload = MakeFacebookWorkload();
  Rng rng(1);
  auto q1 = workload.DrawQuery(rng);
  auto q2 = workload.DrawQuery(rng);
  ASSERT_EQ(q1.stage_durations.size(), 2u);
  EXPECT_NE(q1.stage_durations[0]->Mean(), q2.stage_durations[0]->Mean());
}

TEST(FacebookWorkloadTest, JobScaleRangeIsWide) {
  // The trace's hallmark: durations vary by orders of magnitude across jobs.
  auto workload = MakeFacebookWorkload();
  Rng rng(2);
  double min_mean = 1e300;
  double max_mean = 0.0;
  for (int i = 0; i < 300; ++i) {
    auto truth = workload.DrawQuery(rng);
    double mean = truth.stage_durations[0]->Mean();
    min_mean = std::min(min_mean, mean);
    max_mean = std::max(max_mean, mean);
  }
  EXPECT_GT(max_mean / min_mean, 100.0);
}

TEST(ThreeLevelWorkloadTest, HasThreeStages) {
  auto workload = MakeFacebookThreeLevelWorkload(10, 10, 10);
  EXPECT_EQ(workload.OfflineTree().num_stages(), 3);
  Rng rng(3);
  EXPECT_EQ(workload.DrawQuery(rng).stage_durations.size(), 3u);
}

TEST(InteractiveWorkloadTest, UsesPaperFits) {
  auto workload = MakeInteractiveWorkload();
  EXPECT_EQ(workload.time_unit(), "ms");
  const auto& stages = workload.stages();
  EXPECT_DOUBLE_EQ(stages[0].mu, kFacebookMapMu);
  EXPECT_DOUBLE_EQ(stages[1].mu, kGoogleMu);
  EXPECT_DOUBLE_EQ(stages[1].sigma, kGoogleSigma);
}

TEST(CosmosWorkloadTest, StationaryAcrossQueries) {
  auto workload = MakeCosmosWorkload();
  Rng rng(4);
  auto q1 = workload.DrawQuery(rng);
  auto q2 = workload.DrawQuery(rng);
  EXPECT_DOUBLE_EQ(q1.stage_durations[0]->Mean(), q2.stage_durations[0]->Mean());
  EXPECT_DOUBLE_EQ(q1.stage_durations[1]->StdDev(), q2.stage_durations[1]->StdDev());
}

TEST(SigmaSweepWorkloadTest, Sigma1IsApplied) {
  auto workload = MakeBingSigmaWorkload(2.25);
  const auto& stages = workload.stages();
  EXPECT_DOUBLE_EQ(stages[0].sigma, 2.25);
  EXPECT_DOUBLE_EQ(stages[0].mu, kBingMu);
  EXPECT_DOUBLE_EQ(stages[1].sigma, kBingSigma);
}

TEST(GaussianWorkloadTest, MatchesFigure17Parameters) {
  GaussianWorkload workload;
  TreeSpec tree = workload.OfflineTree();
  EXPECT_EQ(tree.stage(0).duration->family(), DistributionFamily::kNormal);
  EXPECT_NEAR(tree.stage(0).duration->Mean(), kGaussianMeanMs, 1e-9);
  EXPECT_NEAR(tree.stage(1).duration->StdDev(), kGaussianTopSd, 1e-9);
  Rng rng(5);
  auto truth = workload.DrawQuery(rng);
  EXPECT_EQ(truth.stage_durations[0]->family(), DistributionFamily::kNormal);
}

TEST(MismatchedWorkloadTest, ReportsStaleOffline) {
  auto actual = std::make_shared<StationaryWorkload>(
      "inner", "s",
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(3.0, 0.8), 5,
                         std::make_shared<LogNormalDistribution>(2.0, 0.5), 5));
  TreeSpec stale = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(1.0, 0.8), 5,
                                      std::make_shared<LogNormalDistribution>(2.0, 0.5), 5);
  MismatchedOfflineWorkload workload(actual, stale);
  EXPECT_NEAR(workload.OfflineTree().stage(0).duration->Mean(),
              LogNormalDistribution(1.0, 0.8).Mean(), 1e-9);
  Rng rng(6);
  EXPECT_NEAR(workload.DrawQuery(rng).stage_durations[0]->Mean(),
              LogNormalDistribution(3.0, 0.8).Mean(), 1e-9);
}

TEST(StragglerWorkloadTest, BimodalBottomStage) {
  StragglerWorkload::Options options;
  options.mu_spread = 0.0;  // deterministic query for an exact check
  StragglerWorkload workload(options);
  Rng rng(8);
  auto truth = workload.DrawQuery(rng);
  const auto& bottom = *truth.stage_durations[0];
  // The straggler mode puts ~8% of mass far beyond the body's p99.9.
  LogNormalDistribution body(options.body_mu, options.body_sigma);
  double far = 1.5 * body.Quantile(0.999);
  EXPECT_GT(1.0 - bottom.Cdf(far), 0.04);
  EXPECT_LT(1.0 - bottom.Cdf(far), 0.12);
}

TEST(StragglerWorkloadTest, OfflineTreeIsMixture) {
  StragglerWorkload workload;
  TreeSpec tree = workload.OfflineTree();
  EXPECT_NE(tree.stage(0).duration->ToString().find("mixture"), std::string::npos);
  EXPECT_EQ(tree.num_stages(), 2);
}

TEST(SharedScaleTest, CorrelatesStagesAcrossQueries) {
  MetaLogNormalStage bottom;
  bottom.mu = 3.0;
  bottom.sigma = 0.5;
  bottom.fanout = 10;
  MetaLogNormalStage top = bottom;
  SharedScaleSpec shared;
  shared.spread = 1.0;
  MetaLogNormalWorkload workload("corr", "s", {bottom, top}, shared);

  Rng rng(4);
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_yy = 0.0;
  const int kQueries = 300;
  for (int i = 0; i < kQueries; ++i) {
    auto truth = workload.DrawQuery(rng);
    double x = std::log(truth.stage_durations[0]->Median());
    double y = std::log(truth.stage_durations[1]->Median());
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  double n = kQueries;
  double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  double var_x = sum_xx / n - (sum_x / n) * (sum_x / n);
  double var_y = sum_yy / n - (sum_y / n) * (sum_y / n);
  double corr = cov / std::sqrt(var_x * var_y);
  // shared spread 1.0 vs no per-stage spread: correlation ~ 1.
  EXPECT_GT(corr, 0.95);
}

TEST(SharedScaleTest, OfflineMarginalFoldsSharedSpread) {
  MetaLogNormalStage stage;
  stage.mu = 3.0;
  stage.sigma = 0.5;
  stage.fanout = 10;
  SharedScaleSpec shared;
  shared.spread = 1.2;
  MetaLogNormalWorkload with("w", "s", {stage, stage}, shared);
  MetaLogNormalWorkload without("wo", "s", {stage, stage});
  TreeSpec with_tree = with.OfflineTree();
  TreeSpec without_tree = without.OfflineTree();
  const auto* with_fit =
      static_cast<const LogNormalDistribution*>(with_tree.stage(0).duration.get());
  const auto* without_fit =
      static_cast<const LogNormalDistribution*>(without_tree.stage(0).duration.get());
  EXPECT_NEAR(with_fit->sigma(), std::sqrt(0.5 * 0.5 + 1.2 * 1.2), 1e-9);
  EXPECT_DOUBLE_EQ(without_fit->sigma(), 0.5);
}

TEST(WorkloadFactoryTest, KnownNamesConstruct) {
  for (const char* name :
       {"facebook", "facebook-3level", "interactive", "cosmos", "gaussian", "straggler"}) {
    auto workload = MakeWorkloadByName(name, 10, 10);
    ASSERT_NE(workload, nullptr) << name;
    EXPECT_GE(workload->OfflineTree().num_stages(), 2) << name;
  }
  auto sigma_workload = MakeWorkloadByName("google-sigma:1.55", 10, 10);
  EXPECT_EQ(sigma_workload->name(), "google-google");
}

TEST(WorkloadFactoryDeathTest, UnknownNameDies) {
  EXPECT_DEATH(MakeWorkloadByName("bogus"), "unknown workload");
  EXPECT_DEATH(MakeWorkloadByName("bing-sigma:xyz"), "bad sigma");
}

TEST(TraceIoTest, MaterializeSaveLoadRoundTrip) {
  auto workload = MakeFacebookWorkload(6, 5);
  QueryTrace trace = MaterializeTrace(workload, 12, 77);
  EXPECT_EQ(trace.queries.size(), 12u);
  EXPECT_EQ(trace.fanouts, (std::vector<int>{6, 5}));

  std::string path = ::testing::TempDir() + "/cedar_trace_test.csv";
  SaveQueryTrace(trace, path);
  QueryTrace loaded = LoadQueryTrace(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.queries.size(), trace.queries.size());
  EXPECT_EQ(loaded.name, trace.name);
  EXPECT_EQ(loaded.unit, trace.unit);
  EXPECT_EQ(loaded.fanouts, trace.fanouts);
  for (size_t q = 0; q < trace.queries.size(); ++q) {
    for (size_t s = 0; s < trace.queries[q].stages.size(); ++s) {
      EXPECT_EQ(loaded.queries[q].stages[s].family, trace.queries[q].stages[s].family);
      EXPECT_NEAR(loaded.queries[q].stages[s].p1, trace.queries[q].stages[s].p1, 1e-12);
      EXPECT_NEAR(loaded.queries[q].stages[s].p2, trace.queries[q].stages[s].p2, 1e-12);
    }
  }
}

TEST(ReplayWorkloadTest, CyclesThroughRecordedQueries) {
  auto workload = MakeFacebookWorkload(4, 4);
  QueryTrace trace = MaterializeTrace(workload, 3, 5);
  ReplayWorkload replay(std::move(trace));
  Rng rng(1);
  auto q0 = replay.DrawQuery(rng);
  auto q1 = replay.DrawQuery(rng);
  auto q2 = replay.DrawQuery(rng);
  auto q0_again = replay.DrawQuery(rng);
  EXPECT_DOUBLE_EQ(q0.stage_durations[0]->Mean(), q0_again.stage_durations[0]->Mean());
  EXPECT_NE(q0.stage_durations[0]->Mean(), q1.stage_durations[0]->Mean());
  EXPECT_NE(q1.stage_durations[0]->Mean(), q2.stage_durations[0]->Mean());
}

TEST(ReplayWorkloadTest, OfflineTreeIsGlobalFitOverRecords) {
  auto workload = MakeFacebookWorkload(4, 4);
  QueryTrace trace = MaterializeTrace(workload, 50, 5);
  ReplayWorkload replay(trace);
  TreeSpec offline = replay.OfflineTree();
  // Global sigma must exceed the typical per-query sigma: it folds in the
  // across-query location variance.
  double typical_sigma = trace.queries[0].stages[0].p2;
  const auto* global =
      static_cast<const LogNormalDistribution*>(offline.stage(0).duration.get());
  EXPECT_GT(global->sigma(), typical_sigma);
}

TEST(TraceIoDeathTest, MalformedCsvRejected) {
  std::string path = ::testing::TempDir() + "/cedar_bad_trace.csv";
  {
    std::ofstream out(path);
    out << "name,unit,query,stage,family,p1,p2\n";  // missing fanouts column
    out << "x,s,0,0,lognormal,1,1\n";
  }
  EXPECT_DEATH(LoadQueryTrace(path), "malformed trace");
  std::remove(path.c_str());
}

TEST(TraceIoDeathTest, EmptyTraceRejected) {
  std::string path = ::testing::TempDir() + "/cedar_empty_trace.csv";
  {
    std::ofstream out(path);
    out << "name,unit,fanouts,query,stage,family,p1,p2\n";
  }
  EXPECT_DEATH(LoadQueryTrace(path), "empty trace");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cedar
