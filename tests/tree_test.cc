#include "src/core/tree.h"

#include <gtest/gtest.h>

namespace cedar {
namespace {

TreeSpec MakeTree() {
  return TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.77, 0.84), 50,
                            std::make_shared<LogNormalDistribution>(3.25, 0.95), 40);
}

TEST(TreeSpecTest, TwoLevelShape) {
  TreeSpec tree = MakeTree();
  EXPECT_EQ(tree.num_stages(), 2);
  EXPECT_EQ(tree.num_aggregator_tiers(), 1);
  EXPECT_EQ(tree.stage(0).fanout, 50);
  EXPECT_EQ(tree.stage(1).fanout, 40);
  EXPECT_EQ(tree.TotalProcesses(), 2000);
  EXPECT_EQ(tree.AggregatorsAtTier(0), 40);
}

TEST(TreeSpecTest, ThreeLevelCounts) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<ExponentialDistribution>(1.0), 10);
  stages.emplace_back(std::make_shared<ExponentialDistribution>(1.0), 5);
  stages.emplace_back(std::make_shared<ExponentialDistribution>(1.0), 4);
  TreeSpec tree(std::move(stages));
  EXPECT_EQ(tree.num_aggregator_tiers(), 2);
  EXPECT_EQ(tree.TotalProcesses(), 200);
  EXPECT_EQ(tree.AggregatorsAtTier(0), 20);
  EXPECT_EQ(tree.AggregatorsAtTier(1), 4);
}

TEST(TreeSpecTest, SumOfStageMeans) {
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(0.5), 2,
                                     std::make_shared<ExponentialDistribution>(0.25), 2);
  EXPECT_DOUBLE_EQ(tree.SumOfStageMeans(), 6.0);
}

TEST(TreeSpecTest, WithStageReplaces) {
  TreeSpec tree = MakeTree();
  TreeSpec other =
      tree.WithStage(0, StageSpec(std::make_shared<ExponentialDistribution>(1.0), 7));
  EXPECT_EQ(other.stage(0).fanout, 7);
  EXPECT_EQ(other.stage(0).duration->family(), DistributionFamily::kExponential);
  // Original untouched.
  EXPECT_EQ(tree.stage(0).fanout, 50);
  EXPECT_EQ(other.stage(1).fanout, tree.stage(1).fanout);
}

TEST(TreeSpecTest, ToStringMentionsStages) {
  std::string s = MakeTree().ToString();
  EXPECT_NE(s.find("X1"), std::string::npos);
  EXPECT_NE(s.find("k2=40"), std::string::npos);
}

TEST(TreeSpecDeathTest, RejectsEmptyAndBadFanout) {
  EXPECT_DEATH(TreeSpec(std::vector<StageSpec>{}), "at least one stage");
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<ExponentialDistribution>(1.0), 0);
  EXPECT_DEATH(TreeSpec(std::move(stages)), "fanout");
}

TEST(TreeSpecDeathTest, StageIndexOutOfRange) {
  TreeSpec tree = MakeTree();
  EXPECT_DEATH(tree.stage(2), "out of range");
  EXPECT_DEATH(tree.AggregatorsAtTier(1), "out of range");
}

}  // namespace
}  // namespace cedar
