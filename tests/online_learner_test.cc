#include "src/core/online_learner.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/stats/rng.h"

namespace cedar {
namespace {

OnlineLearnerOptions TestOptions(int min_samples = 2) {
  OnlineLearnerOptions options;
  options.min_samples = min_samples;
  return options;
}

TEST(OnlineLearnerTest, NoFitBeforeMinSamples) {
  OnlineLearner learner(50, TestOptions(5));
  for (int i = 0; i < 4; ++i) {
    learner.Observe(static_cast<double>(i + 1));
    EXPECT_FALSE(learner.CurrentFit().has_value()) << "after " << i + 1 << " samples";
  }
  learner.Observe(5.0);
  EXPECT_TRUE(learner.CurrentFit().has_value());
}

TEST(OnlineLearnerTest, FitConvergesToTruth) {
  LogNormalDistribution truth(2.77, 0.84);
  Rng rng(42);
  const int kTrials = 200;
  double mu_sum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> samples(50);
    for (auto& s : samples) {
      s = truth.Sample(rng);
    }
    std::sort(samples.begin(), samples.end());
    OnlineLearner learner(50, TestOptions());
    for (int i = 0; i < 25; ++i) {
      learner.Observe(samples[static_cast<size_t>(i)]);
    }
    auto fit = learner.CurrentFit();
    ASSERT_TRUE(fit.has_value());
    mu_sum += fit->p1;
  }
  EXPECT_NEAR(mu_sum / kTrials, 2.77, 0.08);
}

TEST(OnlineLearnerTest, FitIsCachedUntilNewObservation) {
  OnlineLearner learner(10, TestOptions());
  learner.Observe(1.0);
  learner.Observe(2.0);
  auto first = learner.CurrentFit();
  auto second = learner.CurrentFit();
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->p1, second->p1);
  learner.Observe(10.0);
  auto third = learner.CurrentFit();
  ASSERT_TRUE(third.has_value());
  EXPECT_NE(first->p1, third->p1);
}

TEST(OnlineLearnerTest, EmpiricalModeIsBiasedLow) {
  LogNormalDistribution truth(3.0, 1.0);
  Rng rng(7);
  std::vector<double> samples(50);
  for (auto& s : samples) {
    s = truth.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());

  OnlineLearner order_stats(50, TestOptions());
  OnlineLearnerOptions emp_options = TestOptions();
  emp_options.use_empirical_estimates = true;
  OnlineLearner empirical(50, emp_options);
  for (int i = 0; i < 10; ++i) {
    order_stats.Observe(samples[static_cast<size_t>(i)]);
    empirical.Observe(samples[static_cast<size_t>(i)]);
  }
  auto os_fit = order_stats.CurrentFit();
  auto emp_fit = empirical.CurrentFit();
  ASSERT_TRUE(os_fit.has_value());
  ASSERT_TRUE(emp_fit.has_value());
  // The biased estimate sees only the 10 fastest of 50: far below mu.
  EXPECT_LT(emp_fit->p1, os_fit->p1);
}

TEST(OnlineLearnerTest, ResetClearsState) {
  OnlineLearner learner(10, TestOptions());
  learner.Observe(1.0);
  learner.Observe(2.0);
  ASSERT_TRUE(learner.CurrentFit().has_value());
  learner.Reset();
  EXPECT_EQ(learner.num_observations(), 0);
  EXPECT_FALSE(learner.CurrentFit().has_value());
  // Still usable after reset.
  learner.Observe(3.0);
  learner.Observe(4.0);
  EXPECT_TRUE(learner.CurrentFit().has_value());
}

TEST(OnlineLearnerTest, CurrentDistributionMaterializesFit) {
  OnlineLearner learner(10, TestOptions());
  EXPECT_EQ(learner.CurrentDistribution(), nullptr);
  learner.Observe(2.0);
  learner.Observe(4.0);
  auto dist = learner.CurrentDistribution();
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->family(), DistributionFamily::kLogNormal);
}

TEST(OnlineLearnerTest, NormalFamilySupported) {
  OnlineLearnerOptions options = TestOptions();
  options.family = DistributionFamily::kNormal;
  OnlineLearner learner(10, options);
  learner.Observe(-3.0);  // negative observations fine for normal
  learner.Observe(1.0);
  auto fit = learner.CurrentFit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->family, DistributionFamily::kNormal);
}

TEST(OnlineLearnerDeathTest, RejectsDecreasingArrivals) {
  OnlineLearner learner(10, TestOptions());
  learner.Observe(5.0);
  EXPECT_DEATH(learner.Observe(4.0), "non-decreasing");
}

TEST(OnlineLearnerDeathTest, RejectsMoreThanFanout) {
  OnlineLearner learner(2, TestOptions());
  learner.Observe(1.0);
  learner.Observe(2.0);
  EXPECT_DEATH(learner.Observe(3.0), "fanout");
}

TEST(OnlineLearnerDeathTest, MinSamplesBelowTwoRejected) {
  EXPECT_DEATH(OnlineLearner(10, TestOptions(1)), "pairwise");
}

}  // namespace
}  // namespace cedar
