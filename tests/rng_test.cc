#include "src/stats/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextOpenDoubleNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextOpenDouble(), 0.0);
  }
}

TEST(RngTest, UniformMomentsMatch) {
  Rng rng(11);
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double u = rng.NextDouble();
    sum += u;
    sum_sq += u * u;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, BoundedStaysInRangeAndCoversAll) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(19);
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_cu = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
    sum_cu += g * g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
  EXPECT_NEAR(sum_cu / kSamples, 0.0, 0.05);  // symmetry
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child and parent streams should not coincide.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(29);
  Rng b(29);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.NextU64(), cb.NextU64());
  }
}

}  // namespace
}  // namespace cedar
