#include "src/common/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Builds an argv-style vector from string literals.
std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return argv;
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags("test");
  double* d = flags.AddDouble("rate", 2.5, "rate");
  int64_t* n = flags.AddInt("count", 7, "count");
  bool* b = flags.AddBool("verbose", false, "verbose");
  std::string* s = flags.AddString("name", "x", "name");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_EQ(*n, 7);
  EXPECT_FALSE(*b);
  EXPECT_EQ(*s, "x");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags("test");
  double* d = flags.AddDouble("rate", 0.0, "rate");
  std::string* s = flags.AddString("name", "", "name");
  std::vector<std::string> args = {"prog", "--rate=3.25", "--name=cedar"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, 3.25);
  EXPECT_EQ(*s, "cedar");
}

TEST(FlagsTest, SpaceSyntaxAndPositional) {
  FlagSet flags("test");
  int64_t* n = flags.AddInt("count", 0, "count");
  std::vector<std::string> args = {"prog", "--count", "42", "leftover"};
  auto argv = MakeArgv(args);
  auto positional = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*n, 42);
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "leftover");
}

TEST(FlagsTest, BoolForms) {
  FlagSet flags("test");
  bool* a = flags.AddBool("alpha", false, "a");
  bool* b = flags.AddBool("beta", true, "b");
  bool* c = flags.AddBool("gamma", false, "c");
  std::vector<std::string> args = {"prog", "--alpha", "--nobeta", "--gamma=true"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
  EXPECT_TRUE(*c);
}

TEST(FlagsTest, NegativeNumbers) {
  FlagSet flags("test");
  double* d = flags.AddDouble("shift", 0.0, "shift");
  int64_t* n = flags.AddInt("delta", 0, "delta");
  std::vector<std::string> args = {"prog", "--shift=-1.5", "--delta=-3"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, -1.5);
  EXPECT_EQ(*n, -3);
}

TEST(FlagsDeathTest, UnknownFlagDies) {
  FlagSet flags("test");
  flags.AddInt("count", 0, "count");
  std::vector<std::string> args = {"prog", "--bogus=1"};
  auto argv = MakeArgv(args);
  EXPECT_DEATH(flags.Parse(static_cast<int>(argv.size()), argv.data()), "unknown flag");
}

TEST(FlagsDeathTest, MalformedValueDies) {
  FlagSet flags("test");
  flags.AddInt("count", 0, "count");
  std::vector<std::string> args = {"prog", "--count=abc"};
  auto argv = MakeArgv(args);
  EXPECT_DEATH(flags.Parse(static_cast<int>(argv.size()), argv.data()), "bad int");
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  FlagSet flags("my tool doc");
  flags.AddInt("count", 5, "how many");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("my tool doc"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("5"), std::string::npos);
}

}  // namespace
}  // namespace cedar
