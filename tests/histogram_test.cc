#include "src/common/histogram.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(HistogramTest, LinearBinning) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.AddAll({0.0, 1.9, 2.0, 5.5, 9.99});
  EXPECT_EQ(histogram.bin_count(0), 2);  // [0,2)
  EXPECT_EQ(histogram.bin_count(1), 1);  // [2,4)
  EXPECT_EQ(histogram.bin_count(2), 1);  // [4,6)
  EXPECT_EQ(histogram.bin_count(4), 1);  // [8,10)
  EXPECT_EQ(histogram.count(), 5);
}

TEST(HistogramTest, OverflowUnderflow) {
  Histogram histogram(0.0, 10.0, 2);
  histogram.Add(-1.0);
  histogram.Add(10.0);
  histogram.Add(100.0);
  EXPECT_EQ(histogram.underflow(), 1);
  EXPECT_EQ(histogram.overflow(), 2);
  EXPECT_EQ(histogram.count(), 3);
}

TEST(HistogramTest, BinBoundsLinear) {
  Histogram histogram(10.0, 20.0, 4);
  auto [lo, hi] = histogram.bin_bounds(1);
  EXPECT_DOUBLE_EQ(lo, 12.5);
  EXPECT_DOUBLE_EQ(hi, 15.0);
}

TEST(HistogramTest, LogarithmicBinning) {
  Histogram histogram = Histogram::Logarithmic(1.0, 1000.0, 3);
  // Decade bins: [1,10), [10,100), [100,1000).
  histogram.AddAll({2.0, 5.0, 50.0, 500.0, 999.0});
  EXPECT_EQ(histogram.bin_count(0), 2);
  EXPECT_EQ(histogram.bin_count(1), 1);
  EXPECT_EQ(histogram.bin_count(2), 2);
  auto [lo, hi] = histogram.bin_bounds(1);
  EXPECT_NEAR(lo, 10.0, 1e-9);
  EXPECT_NEAR(hi, 100.0, 1e-9);
}

TEST(HistogramTest, LogarithmicUnderflow) {
  Histogram histogram = Histogram::Logarithmic(1.0, 100.0, 2);
  histogram.Add(0.5);
  histogram.Add(0.0);
  EXPECT_EQ(histogram.underflow(), 2);
}

TEST(HistogramTest, PrintRendersBars) {
  Histogram histogram(0.0, 4.0, 2);
  histogram.AddAll({1.0, 1.0, 3.0});
  std::ostringstream out;
  histogram.Print(out, 10);
  std::string text = out.str();
  EXPECT_NE(text.find("##########"), std::string::npos);  // fullest bin
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(HistogramDeathTest, RejectsBadRanges) {
  EXPECT_DEATH(Histogram(5.0, 5.0, 3), "");
  EXPECT_DEATH(Histogram::Logarithmic(0.0, 10.0, 3), "lo > 0");
}

}  // namespace
}  // namespace cedar
