#include "src/obs/profiler.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Restores the global profiling switch and counters around each test.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetProfilingEnabled(false);
    ResetProfile();
  }
  void TearDown() override {
    SetProfilingEnabled(false);
    ResetProfile();
  }
};

ProfileSample FindSample(const std::string& name) {
  for (const ProfileSample& sample : CollectProfileSamples()) {
    if (sample.name == name) {
      return sample;
    }
  }
  return {};
}

TEST_F(ProfilerTest, DisabledScopeRecordsNothing) {
  static ProfileSite site("test.disabled_site");
  {
    ScopedProfileTimer timer(site);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(site.calls(), 0);
  EXPECT_EQ(site.total_ns(), 0);
  EXPECT_TRUE(FindSample("test.disabled_site").name.empty());
}

TEST_F(ProfilerTest, EnabledScopeRecordsElapsedTime) {
  static ProfileSite site("test.enabled_site");
  SetProfilingEnabled(true);
  {
    ScopedProfileTimer timer(site);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(site.calls(), 1);
  EXPECT_GE(site.total_ns(), 1'000'000);  // slept >= 2 ms; allow coarse clocks
  EXPECT_GE(site.max_ns(), site.total_ns() / site.calls());

  ProfileSample sample = FindSample("test.enabled_site");
  EXPECT_EQ(sample.calls, 1);
  EXPECT_EQ(sample.total_ns, site.total_ns());
  EXPECT_DOUBLE_EQ(sample.MeanNs(), static_cast<double>(sample.total_ns));
}

TEST_F(ProfilerTest, EnabledStateIsLatchedAtScopeEntry) {
  static ProfileSite site("test.latched_site");
  SetProfilingEnabled(false);
  {
    ScopedProfileTimer timer(site);
    // Flipping the switch mid-scope must not make a disabled timer record.
    SetProfilingEnabled(true);
  }
  EXPECT_EQ(site.calls(), 0);
}

TEST_F(ProfilerTest, MacroDeclaresAndTimesASite) {
  SetProfilingEnabled(true);
  for (int i = 0; i < 3; ++i) {
    CEDAR_PROFILE_SCOPE("test.macro_site");
  }
  ProfileSample sample = FindSample("test.macro_site");
  EXPECT_EQ(sample.calls, 3);
  EXPECT_GE(sample.max_ns, 0);
}

TEST_F(ProfilerTest, ConcurrentRecordingIsLossless) {
  static ProfileSite site("test.concurrent_site");
  SetProfilingEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedProfileTimer timer(site);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(site.calls(), kThreads * kPerThread);
  EXPECT_GE(site.total_ns(), 0);
  EXPECT_GE(site.max_ns(), 0);
}

TEST_F(ProfilerTest, SamplesSortedByTotalTimeDescending) {
  static ProfileSite slow("test.sort_slow");
  static ProfileSite fast("test.sort_fast");
  SetProfilingEnabled(true);
  slow.Record(5'000'000);
  fast.Record(1'000);
  std::vector<ProfileSample> samples = CollectProfileSamples();
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i - 1].total_ns, samples[i].total_ns);
  }
}

TEST_F(ProfilerTest, ReportListsSitesAndResetClears) {
  static ProfileSite site("test.report_site");
  SetProfilingEnabled(true);
  site.Record(42'000);
  std::ostringstream out;
  WriteProfileReport(out);
  EXPECT_NE(out.str().find("test.report_site"), std::string::npos);

  ResetProfile();
  EXPECT_EQ(site.calls(), 0);
  std::ostringstream empty_out;
  WriteProfileReport(empty_out);
  EXPECT_NE(empty_out.str().find("no profile samples"), std::string::npos);
}

}  // namespace
}  // namespace cedar
