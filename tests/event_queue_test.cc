#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace cedar {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSuppressesEvent) {
  EventQueue queue;
  bool fired = false;
  uint64_t handle = queue.Schedule(1.0, [&] { fired = true; });
  queue.Cancel(handle);
  queue.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, CancelUnknownOrFiredIsNoop) {
  EventQueue queue;
  int count = 0;
  uint64_t handle = queue.Schedule(1.0, [&] { ++count; });
  queue.Run();
  queue.Cancel(handle);  // already fired
  queue.Cancel(9999);    // never existed
  queue.Schedule(2.0, [&] { ++count; });
  queue.Run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventsScheduleMoreEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.Schedule(1.0, [&] {
    times.push_back(queue.now());
    queue.Schedule(5.0, [&] { times.push_back(queue.now()); });
    queue.Schedule(2.0, [&] { times.push_back(queue.now()); });
  });
  queue.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(EventQueueTest, ScheduleAtCurrentTimeRunsAfterCurrentEvent) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(1.0, [&] {
    order.push_back(0);
    queue.Schedule(1.0, [&] { order.push_back(1); });
  });
  queue.Schedule(1.0, [&] { order.push_back(2); });
  queue.Run();
  // Existing same-time event (2) precedes the newly scheduled one (1).
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(EventQueueTest, RunOneStepsSingleEvent) {
  EventQueue queue;
  int count = 0;
  queue.Schedule(1.0, [&] { ++count; });
  queue.Schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(queue.RunOne());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_TRUE(queue.RunOne());
  EXPECT_FALSE(queue.RunOne());
}

TEST(EventQueueTest, PendingExcludesCancelled) {
  EventQueue queue;
  uint64_t a = queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_FALSE(queue.empty());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastDies) {
  EventQueue queue;
  queue.Schedule(5.0, [] {});
  queue.Run();
  EXPECT_DEATH(queue.Schedule(1.0, [] {}), "past");
}

}  // namespace
}  // namespace cedar
