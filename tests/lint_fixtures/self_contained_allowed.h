// Fixture: self-contained rule, suppressed file-wide (a header that fronts
// a generated amalgamation, say).
// cedar-lint: allow-file(self-contained)

#ifndef CEDAR_SRC_CORE_SELF_CONTAINED_ALLOWED_FIXTURE_H_
#define CEDAR_SRC_CORE_SELF_CONTAINED_ALLOWED_FIXTURE_H_

#include "src/core/policy.h"

std::string Describe(const std::vector<int>& values);

#endif  // CEDAR_SRC_CORE_SELF_CONTAINED_ALLOWED_FIXTURE_H_
