// Fixture: lockgraph-cycle rule, suppressed per-line. Same AB/BA shape as
// cycle.cc; the allow markers sit on the witnessing acquisitions (say a
// proven-unreachable pairing, documented at the call site).
#include <mutex>

class Ledger {
 public:
  void TransferOut() {
    std::lock_guard<std::mutex> first(a_);
    // cedar-lint: allow(lockgraph-cycle)
    std::lock_guard<std::mutex> second(b_);
    balance_ -= 1;
  }

  void TransferIn() {
    std::lock_guard<std::mutex> first(b_);
    std::lock_guard<std::mutex> second(a_);  // cedar-lint: allow(lockgraph-cycle)
    balance_ += 1;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  long long balance_ = 0;
};
