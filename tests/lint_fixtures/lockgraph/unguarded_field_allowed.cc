// Fixture: lockgraph-unguarded-field rule, suppressed per-line (say the
// bare write happens before any other thread can see the object).
#include <mutex>

class WarmCache {
 public:
  void Hit() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
  }

  void PrefillSingleThreaded() {
    hits_ = 0;  // cedar-lint: allow(lockgraph-unguarded-field)
  }

 private:
  std::mutex mutex_;
  long long hits_ = 0;
};
