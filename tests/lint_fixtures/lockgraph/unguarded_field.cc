// Fixture: lockgraph-unguarded-field rule. Never compiled; scanned by
// lint_test. A field written both under its dominant mutex and bare is the
// classic forgotten-lock race; a field written under the lock everywhere
// (or never) stays quiet.
#include <mutex>

class Cache {
 public:
  void Hit() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
    ++lookups_;
  }

  void Miss() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
  }

  void HitRacy() {
    ++hits_;  // fires: 1 of 2 writes to hits_ holds Cache::mutex_
  }

 private:
  std::mutex mutex_;
  long long hits_ = 0;
  long long lookups_ = 0;
};
