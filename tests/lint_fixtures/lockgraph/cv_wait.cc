// Fixture: lockgraph-cv-wait rule. Never compiled; scanned by lint_test.
// A condition-variable wait releases only the lock passed to it; any other
// mutex held across the wait stays held for the full (unbounded) sleep.
#include <condition_variable>
#include <mutex>

class WorkQueue {
 public:
  void DrainHoldingStats() {
    std::lock_guard<std::mutex> stats(stats_mutex_);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock);  // fires: stats_mutex_ still held across the wait
    drained_ += 1;
  }

  void DrainClean() {
    // Only the CV's own mutex is held: nothing to flag.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock);
    drained_ += 1;
  }

 private:
  std::mutex mutex_;
  std::mutex stats_mutex_;
  std::condition_variable cv_;
  long long drained_ = 0;
};
