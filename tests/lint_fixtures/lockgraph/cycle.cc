// Fixture: lockgraph-cycle rule. Never compiled; scanned by lint_test.
// Two methods acquire the same pair of mutexes in opposite orders, the
// classic AB/BA deadlock. Both inner acquisitions witness an edge that
// closes the cycle, so both are flagged.
#include <mutex>

class Account {
 public:
  void TransferOut() {
    std::lock_guard<std::mutex> first(a_);
    std::lock_guard<std::mutex> second(b_);  // fires: edge a_ -> b_
    balance_ -= 1;
  }

  void TransferIn() {
    std::lock_guard<std::mutex> first(b_);
    std::lock_guard<std::mutex> second(a_);  // fires: edge b_ -> a_
    balance_ += 1;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  long long balance_ = 0;
};

class Consistent {
 public:
  // Same order everywhere: no cycle, no diagnostic.
  void Deposit() {
    std::lock_guard<std::mutex> first(a_);
    std::lock_guard<std::mutex> second(b_);
    total_ += 1;
  }

  void Withdraw() {
    std::lock_guard<std::mutex> first(a_);
    std::lock_guard<std::mutex> second(b_);
    total_ -= 1;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  long long total_ = 0;
};
