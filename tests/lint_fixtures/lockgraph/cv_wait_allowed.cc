// Fixture: lockgraph-cv-wait rule, suppressed per-line (say the outer lock
// is only ever taken by this one thread, documented at the call site).
#include <condition_variable>
#include <mutex>

class SlowQueue {
 public:
  void DrainHoldingStats() {
    std::lock_guard<std::mutex> stats(stats_mutex_);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock);  // cedar-lint: allow(lockgraph-cv-wait)
    drained_ += 1;
  }

 private:
  std::mutex mutex_;
  std::mutex stats_mutex_;
  std::condition_variable cv_;
  long long drained_ = 0;
};
