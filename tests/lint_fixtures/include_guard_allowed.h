// Fixture: include-guard rule, suppressed file-wide.
// cedar-lint: allow-file(include-guard)

#pragma GCC system_header

int Value();
