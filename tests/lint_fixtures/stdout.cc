// Fixture: stdout rule (applies under src/ only).
#include <iostream>

void Violation() {
  std::cout << "progress\n";  // line 5: fires
}

void Allowed() {
  // The one sanctioned startup banner.
  std::cout << "banner\n";  // cedar-lint: allow(stdout)
}

const char* NotAViolation() {
  return "std::cout and printf( only appear in this string";
}
