// Fixture: self-contained rule — uses std::string and std::vector but
// includes neither provider directly.

#ifndef CEDAR_SRC_CORE_SELF_CONTAINED_FIXTURE_H_
#define CEDAR_SRC_CORE_SELF_CONTAINED_FIXTURE_H_

#include "src/core/policy.h"

std::string Describe(const std::vector<int>& values);  // fires (string and vector)

#endif  // CEDAR_SRC_CORE_SELF_CONTAINED_FIXTURE_H_
