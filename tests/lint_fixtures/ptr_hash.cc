// Fixture: ptr-hash rule.
#include <cstdint>
#include <functional>

uint64_t Violation(const void* curve) {
  return reinterpret_cast<uintptr_t>(curve);  // line 6: fires
}

size_t AlsoViolation(int* p) {
  return std::hash<int*>()(p);  // line 10: fires
}

uint64_t Allowed(const void* curve) {
  // Cache key is re-validated by content before reuse (see CedarPolicy).
  return reinterpret_cast<uintptr_t>(curve);  // cedar-lint: allow(ptr-hash)
}
