// Fixture: raw-new rule (applies under src/ only).

int* Violation() {
  return new int(7);  // line 4: fires
}

void AlsoViolation(int* p) {
  delete p;  // line 8: fires
}

class NotAViolation {
 public:
  NotAViolation(const NotAViolation&) = delete;  // deleted function, not operator delete
  NotAViolation& operator=(const NotAViolation&) = delete;
};

int* Allowed() {
  // Intentionally leaked process singleton.
  return new int(7);  // cedar-lint: allow(raw-new)
}
