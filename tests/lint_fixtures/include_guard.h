// Fixture: include-guard rule — guard does not match the canonical
// CEDAR_<PATH>_H_ name for the virtual path the test registers it under.

#ifndef SOME_RANDOM_GUARD_H_  // fires
#define SOME_RANDOM_GUARD_H_

int Value();

#endif  // SOME_RANDOM_GUARD_H_
