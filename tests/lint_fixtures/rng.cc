// Fixture: rng rule.
#include <cstdlib>
#include <random>

int Violation() {
  return rand();  // line 6: fires
}

int AlsoViolation() {
  std::mt19937 engine;  // line 10: fires (unseeded std engine)
  return static_cast<int>(engine());
}

int Allowed() {
  // Seeding the comparison oracle for the Rng unit test.
  std::random_device device;  // cedar-lint: allow(rng)
  return static_cast<int>(device());
}
