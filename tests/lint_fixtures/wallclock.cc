// Fixture: wallclock rule. Never compiled; scanned by lint_test under a
// virtual src/ path.
#include <chrono>

double Violation() {
  auto now = std::chrono::system_clock::now();  // line 6: fires
  return static_cast<double>(now.time_since_epoch().count());
}

double Allowed() {
  // One-off startup stamp, never reaches experiment results.
  auto now = std::chrono::steady_clock::now();  // cedar-lint: allow(wallclock)
  return static_cast<double>(now.time_since_epoch().count());
}

const char* NotAViolation() {
  return "calls system_clock in a string literal and time( in a comment";
}
