// Fixture: unordered-iter rule.
#include <unordered_map>

double Violation() {
  std::unordered_map<int, double> totals;
  double sum = 0.0;
  for (const auto& entry : totals) {  // line 8: fires
    sum += entry.second;
  }
  return sum;
}

double Allowed() {
  std::unordered_map<int, double> totals;
  double sum = 0.0;
  // Sum is commutative here and never formatted.
  for (const auto& entry : totals) {  // cedar-lint: allow(unordered-iter)
    sum += entry.second;
  }
  return sum;
}
