// Fixture: fork-override rule. A miniature WaitPolicy hierarchy; the real
// one lives in src/core.
#include <memory>

class WaitPolicy {
 public:
  virtual ~WaitPolicy() = default;
  virtual std::unique_ptr<WaitPolicy> ForkForWorker() const;
};

class BadPolicy final : public WaitPolicy {  // line 11: fires
 public:
  int state = 0;
};

class GoodPolicy final : public WaitPolicy {
 public:
  std::unique_ptr<WaitPolicy> ForkForWorker() const override;
};

class MidPolicy : public GoodPolicy {
 public:
  std::unique_ptr<WaitPolicy> ForkForWorker() const override;
};

class BadGrandchild final : public MidPolicy {  // line 26: fires (transitive)
 public:
  int state = 0;
};

// Stateless; the default fork (Clone) is detached.
class AllowedPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  int state = 0;
};

class NotAPolicy {
 public:
  int state = 0;
};
