#include "src/core/tracing_policy.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/common/csv.h"
#include "src/core/policies.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {
namespace {

StationaryWorkload SmallWorkload() {
  return StationaryWorkload(
      "trace-test", "s",
      TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.8), 5,
                         std::make_shared<LogNormalDistribution>(2.0, 0.6), 4));
}

TEST(TracingPolicyTest, RecordsInitialAndArrivalDecisions) {
  DecisionRecorder recorder;
  TracingPolicy traced(std::make_unique<CedarPolicy>(), &recorder);

  StationaryWorkload workload = SmallWorkload();
  ExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 3;
  config.seed = 5;
  RunExperiment(workload, {&traced}, config);

  auto records = recorder.Snapshot();
  ASSERT_FALSE(records.empty());
  // 4 aggregators x 3 queries = 12 initial decisions (arrivals == 0)...
  int initials = 0;
  for (const auto& record : records) {
    if (record.arrivals == 0) {
      ++initials;
    }
    EXPECT_EQ(record.tier, 0);
    EXPECT_GE(record.wait, 0.0);
  }
  EXPECT_EQ(initials, 12);
  // ...plus per-arrival decisions (4 of 5 arrivals trigger OnArrival; the
  // 5th sends early).
  EXPECT_GT(records.size(), 12u);
}

TEST(TracingPolicyTest, QueriesSeparableBySequence) {
  DecisionRecorder recorder;
  TracingPolicy traced(std::make_unique<ProportionalSplitPolicy>(), &recorder);
  StationaryWorkload workload = SmallWorkload();
  ExperimentConfig config;
  config.deadline = 60.0;
  config.num_queries = 2;
  config.seed = 9;
  RunExperiment(workload, {&traced}, config);

  auto all = recorder.Snapshot();
  std::set<uint64_t> sequences;
  for (const auto& record : all) {
    sequences.insert(record.query_sequence);
  }
  EXPECT_EQ(sequences.size(), 2u);
  for (uint64_t sequence : sequences) {
    EXPECT_FALSE(recorder.ForQuery(sequence).empty());
  }
  EXPECT_TRUE(recorder.ForQuery(999999).empty());
}

TEST(TracingPolicyTest, NameAndBehaviourDelegate) {
  DecisionRecorder recorder;
  TracingPolicy traced(std::make_unique<FixedWaitPolicy>(17.0), &recorder);
  EXPECT_EQ(traced.name(), "fixed");

  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(1.0), 2,
                                     std::make_shared<ExponentialDistribution>(1.0), 2);
  AggregatorContext ctx;
  ctx.deadline = 100.0;
  ctx.fanout = 2;
  ctx.offline_tree = &tree;
  traced.BeginQuery(ctx, nullptr);
  EXPECT_DOUBLE_EQ(traced.DecideInitialWait(ctx), 17.0);
  EXPECT_DOUBLE_EQ(traced.DecideOnArrival(ctx, 2.0, {2.0}), 17.0);
  EXPECT_EQ(recorder.size(), 2u);
}

TEST(TracingPolicyTest, ForkedWorkersShareOneRecorder) {
  // The parallel engine forks a detached replica per worker; the recorder is
  // deliberately shared, so a multi-threaded run lands in one trace with no
  // records lost. Compare against a serial run of the same experiment.
  StationaryWorkload workload = SmallWorkload();
  auto run = [&workload](int threads) {
    DecisionRecorder recorder;
    TracingPolicy traced(std::make_unique<CedarPolicy>(), &recorder);
    ExperimentConfig config;
    config.deadline = 60.0;
    config.num_queries = 8;
    config.seed = 77;
    config.threads = threads;
    RunExperiment(workload, {&traced}, config);
    return recorder.Snapshot();
  };

  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.size(), parallel.size());

  // Cross-query record order follows scheduling, but each query's decision
  // stream must be identical once grouped by sequence.
  std::set<uint64_t> sequences;
  for (const auto& record : serial) {
    sequences.insert(record.query_sequence);
  }
  EXPECT_EQ(sequences.size(), 8u);
  for (uint64_t sequence : sequences) {
    auto lhs = [&serial, sequence] {
      std::vector<WaitDecisionRecord> out;
      for (const auto& r : serial) {
        if (r.query_sequence == sequence) out.push_back(r);
      }
      return out;
    }();
    auto rhs = [&parallel, sequence] {
      std::vector<WaitDecisionRecord> out;
      for (const auto& r : parallel) {
        if (r.query_sequence == sequence) out.push_back(r);
      }
      return out;
    }();
    ASSERT_EQ(lhs.size(), rhs.size()) << "query " << sequence;
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].tier, rhs[i].tier);
      EXPECT_EQ(lhs[i].arrivals, rhs[i].arrivals);
      EXPECT_DOUBLE_EQ(lhs[i].at_time, rhs[i].at_time);
      EXPECT_DOUBLE_EQ(lhs[i].wait, rhs[i].wait);
    }
  }
}

TEST(TracingPolicyTest, ForQueryPreservesRecordOrder) {
  DecisionRecorder recorder;
  // Interleave two queries; ForQuery must return each query's records in
  // insertion order.
  recorder.Record({1, 0, 0, 0.0, 10.0});
  recorder.Record({2, 0, 0, 0.0, 20.0});
  recorder.Record({1, 0, 1, 2.0, 11.0});
  recorder.Record({2, 0, 1, 3.0, 21.0});
  recorder.Record({1, 0, 2, 4.0, 12.0});

  auto q1 = recorder.ForQuery(1);
  ASSERT_EQ(q1.size(), 3u);
  EXPECT_EQ(q1[0].arrivals, 0);
  EXPECT_EQ(q1[1].arrivals, 1);
  EXPECT_EQ(q1[2].arrivals, 2);
  EXPECT_DOUBLE_EQ(q1[2].wait, 12.0);

  auto q2 = recorder.ForQuery(2);
  ASSERT_EQ(q2.size(), 2u);
  EXPECT_DOUBLE_EQ(q2[0].wait, 20.0);
  EXPECT_DOUBLE_EQ(q2[1].wait, 21.0);
}

TEST(TracingPolicyTest, ClearAndCsvRoundTrip) {
  DecisionRecorder recorder;
  recorder.Record({7, 0, 3, 1.25, 42.0});
  recorder.Record({7, 1, 0, 0.0, 55.0});

  std::string path = ::testing::TempDir() + "/cedar_decisions.csv";
  recorder.WriteCsv(path);
  CsvDocument doc = ReadCsvFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][doc.ColumnIndex("query")], "7");
  EXPECT_EQ(std::stod(doc.rows[0][static_cast<size_t>(doc.ColumnIndex("wait"))]), 42.0);

  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
}  // namespace cedar
