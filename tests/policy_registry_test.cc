#include "src/core/policy_registry.h"

#include <gtest/gtest.h>

#include "src/core/policies.h"

namespace cedar {
namespace {

TEST(PolicyRegistryTest, EveryKnownNameRoundTrips) {
  for (const auto& name : KnownPolicyNames()) {
    auto policy = MakePolicyByName(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistryTest, FixedPolicyParsesParameter) {
  auto policy = MakePolicyByName("fixed:123.5");
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "fixed");
  // Verify the parsed wait by exercising the decision.
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(1.0), 2,
                                     std::make_shared<ExponentialDistribution>(1.0), 2);
  AggregatorContext ctx;
  ctx.deadline = 1000.0;
  ctx.fanout = 2;
  ctx.offline_tree = &tree;
  policy->BeginQuery(ctx, nullptr);
  EXPECT_DOUBLE_EQ(policy->DecideInitialWait(ctx), 123.5);
}

TEST(PolicyRegistryTest, EmpiricalVariantConfigured) {
  auto policy = MakePolicyByName("cedar-empirical");
  EXPECT_EQ(policy->name(), "cedar-empirical");
}

TEST(PolicyRegistryTest, ListParsing) {
  auto policies = MakePolicyList("prop-split,cedar,ideal");
  ASSERT_EQ(policies.size(), 3u);
  EXPECT_EQ(policies[0]->name(), "prop-split");
  EXPECT_EQ(policies[2]->name(), "ideal");
}

TEST(PolicyRegistryTest, ListSkipsEmptyTokens) {
  auto policies = MakePolicyList(",cedar,,ideal,");
  ASSERT_EQ(policies.size(), 2u);
}

TEST(PolicyRegistryDeathTest, UnknownNameDies) {
  EXPECT_DEATH(MakePolicyByName("bogus"), "unknown policy");
  EXPECT_DEATH(MakePolicyByName("fixed:abc"), "bad fixed");
  EXPECT_DEATH(MakePolicyList(""), "empty policy list");
}

}  // namespace
}  // namespace cedar
