#include "src/stats/distribution.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace cedar {
namespace {

// Factory covering every parametric family for the property sweeps.
std::unique_ptr<Distribution> MakeFamily(DistributionFamily family) {
  switch (family) {
    case DistributionFamily::kLogNormal:
      return std::make_unique<LogNormalDistribution>(2.77, 0.84);
    case DistributionFamily::kNormal:
      return std::make_unique<NormalDistribution>(40.0, 10.0);
    case DistributionFamily::kExponential:
      return std::make_unique<ExponentialDistribution>(0.25);
    case DistributionFamily::kPareto:
      return std::make_unique<ParetoDistribution>(1.0, 5.0);
    case DistributionFamily::kWeibull:
      return std::make_unique<WeibullDistribution>(1.5, 10.0);
    case DistributionFamily::kUniform:
      return std::make_unique<UniformDistribution>(2.0, 8.0);
    case DistributionFamily::kEmpirical:
      return std::make_unique<EmpiricalDistribution>(
          std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  }
  return nullptr;
}

class DistributionPropertyTest : public ::testing::TestWithParam<DistributionFamily> {};

TEST_P(DistributionPropertyTest, QuantileCdfRoundTrip) {
  auto dist = MakeFamily(GetParam());
  for (double p = 0.02; p < 1.0; p += 0.02) {
    double x = dist->Quantile(p);
    EXPECT_NEAR(dist->Cdf(x), p, GetParam() == DistributionFamily::kEmpirical ? 0.15 : 1e-9)
        << dist->ToString() << " p=" << p;
  }
}

TEST_P(DistributionPropertyTest, CdfIsMonotoneWithinSupport) {
  auto dist = MakeFamily(GetParam());
  double prev = -1.0;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double x = dist->Quantile(p);
    double c = dist->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST_P(DistributionPropertyTest, PdfIsFiniteDifferenceOfCdf) {
  if (GetParam() == DistributionFamily::kEmpirical) {
    GTEST_SKIP() << "empirical pdf is itself a finite difference";
  }
  auto dist = MakeFamily(GetParam());
  for (double p : {0.2, 0.5, 0.8}) {
    double x = dist->Quantile(p);
    double h = 1e-5 * (std::fabs(x) + 1.0);
    double numeric = (dist->Cdf(x + h) - dist->Cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(dist->Pdf(x), numeric, 1e-3 * (numeric + 1.0)) << dist->ToString();
  }
}

TEST_P(DistributionPropertyTest, SampleMomentsMatchAnalytic) {
  auto dist = MakeFamily(GetParam());
  if (!std::isfinite(dist->Mean()) || !std::isfinite(dist->StdDev())) {
    GTEST_SKIP() << "infinite moments";
  }
  if (GetParam() == DistributionFamily::kNormal) {
    GTEST_SKIP() << "normal samples are clamped at zero; see dedicated test";
  }
  if (GetParam() == DistributionFamily::kEmpirical) {
    // Smoothed inverse-transform sampling interpolates between order
    // statistics, which shrinks the variance for tiny sample sets (n=8
    // here); the estimator itself is exercised by EmpiricalTest.
    GTEST_SKIP() << "smoothed resampling shrinks variance for small n";
  }
  Rng rng(12345);
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double x = dist->Sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kSamples;
  double sd = std::sqrt(std::max(0.0, sum_sq / kSamples - mean * mean));
  EXPECT_NEAR(mean, dist->Mean(), 0.03 * dist->Mean() + 0.02) << dist->ToString();
  EXPECT_NEAR(sd, dist->StdDev(), 0.08 * dist->StdDev() + 0.05) << dist->ToString();
}

TEST_P(DistributionPropertyTest, CloneBehavesIdentically) {
  auto dist = MakeFamily(GetParam());
  auto clone = dist->Clone();
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(dist->Quantile(p), clone->Quantile(p));
  }
  EXPECT_EQ(dist->ToString(), clone->ToString());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionPropertyTest,
                         ::testing::Values(DistributionFamily::kLogNormal,
                                           DistributionFamily::kNormal,
                                           DistributionFamily::kExponential,
                                           DistributionFamily::kPareto,
                                           DistributionFamily::kWeibull,
                                           DistributionFamily::kUniform,
                                           DistributionFamily::kEmpirical),
                         [](const auto& info) { return DistributionFamilyName(info.param); });

TEST(LogNormalTest, AnalyticMoments) {
  LogNormalDistribution d(0.0, 1.0);
  EXPECT_NEAR(d.Mean(), std::exp(0.5), 1e-12);
  EXPECT_NEAR(d.Median(), 1.0, 1e-12);
  EXPECT_NEAR(d.StdDev(), std::exp(0.5) * std::sqrt(std::exp(1.0) - 1.0), 1e-12);
}

TEST(LogNormalTest, CdfZeroBelowSupport) {
  LogNormalDistribution d(2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(-5.0), 0.0);
}

TEST(LogNormalTest, BingFitPercentiles) {
  // The paper's Bing fit: lognormal(5.9, 1.25) in microseconds; median
  // should be ~exp(5.9)=365us.
  LogNormalDistribution d(5.9, 1.25);
  EXPECT_NEAR(d.Median(), 365.0, 1.0);
  EXPECT_GT(d.Quantile(0.99), 5000.0);  // long tail
}

TEST(NormalTest, SampleClampedAtZero) {
  NormalDistribution d(40.0, 80.0);  // Figure 17 bottom stage
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(d.Sample(rng), 0.0);
  }
}

TEST(ParetoTest, InfiniteMomentsSignalled) {
  ParetoDistribution heavy(1.0, 0.9);
  EXPECT_TRUE(std::isinf(heavy.Mean()));
  ParetoDistribution mid(1.0, 1.5);
  EXPECT_TRUE(std::isfinite(mid.Mean()));
  EXPECT_TRUE(std::isinf(mid.StdDev()));
}

TEST(EmpiricalTest, MatchesSourceSamples) {
  EmpiricalDistribution d({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.sorted_samples().front(), 1.0);
}

TEST(SpecTest, MakeDistributionDispatch) {
  DistributionSpec spec;
  spec.family = DistributionFamily::kLogNormal;
  spec.p1 = 1.5;
  spec.p2 = 0.5;
  auto d = MakeDistribution(spec);
  EXPECT_EQ(d->family(), DistributionFamily::kLogNormal);
  EXPECT_NEAR(d->Median(), std::exp(1.5), 1e-9);

  spec.family = DistributionFamily::kExponential;
  spec.p1 = 2.0;
  auto e = MakeDistribution(spec);
  EXPECT_NEAR(e->Mean(), 0.5, 1e-12);
}

TEST(SpecTest, FamilyNameRoundTrip) {
  for (DistributionFamily family :
       {DistributionFamily::kLogNormal, DistributionFamily::kNormal,
        DistributionFamily::kExponential, DistributionFamily::kPareto,
        DistributionFamily::kWeibull, DistributionFamily::kUniform,
        DistributionFamily::kEmpirical}) {
    EXPECT_EQ(DistributionFamilyFromName(DistributionFamilyName(family)), family);
  }
}

TEST(SpecDeathTest, EmpiricalSpecRejected) {
  DistributionSpec spec;
  spec.family = DistributionFamily::kEmpirical;
  EXPECT_DEATH(MakeDistribution(spec), "empirical");
}

}  // namespace
}  // namespace cedar
