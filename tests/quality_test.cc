#include "src/core/quality.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/stats/rng.h"

namespace cedar {
namespace {

TreeSpec GoogleTwoLevel(int k1 = 50, int k2 = 50) {
  return TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.94, 0.55), k1,
                            std::make_shared<LogNormalDistribution>(2.94, 0.55), k2);
}

TEST(ExpectedOutputsTest, Limits) {
  EXPECT_DOUBLE_EQ(ExpectedOutputsGivenNotAll(0.0, 50), 0.0);
  // phi -> 1 limit is k - 1.
  EXPECT_DOUBLE_EQ(ExpectedOutputsGivenNotAll(1.0, 50), 49.0);
  EXPECT_NEAR(ExpectedOutputsGivenNotAll(1.0 - 1e-13, 50), 49.0, 1e-3);
}

TEST(ExpectedOutputsTest, MonotoneInPhi) {
  double prev = 0.0;
  for (double phi = 0.0; phi <= 1.0; phi += 0.01) {
    double v = ExpectedOutputsGivenNotAll(phi, 20);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_LE(v, 19.0 + 1e-9);
    prev = v;
  }
}

TEST(ExpectedOutputsTest, MatchesMonteCarlo) {
  // Condition on "not all arrived" with k=5, phi=0.7 (Appendix C formula).
  const int k = 5;
  const double phi = 0.7;
  Rng rng(3);
  long long trials = 0;
  long long arrived_sum = 0;
  for (int t = 0; t < 200000; ++t) {
    int arrived = 0;
    for (int i = 0; i < k; ++i) {
      if (rng.NextDouble() < phi) {
        ++arrived;
      }
    }
    if (arrived < k) {
      ++trials;
      arrived_sum += arrived;
    }
  }
  double mc = static_cast<double>(arrived_sum) / static_cast<double>(trials);
  EXPECT_NEAR(ExpectedOutputsGivenNotAll(phi, k), mc, 0.02);
}

TEST(TabulateCdfTest, MatchesDistribution) {
  LogNormalDistribution dist(2.0, 0.5);
  auto curve = TabulateCdf(dist, 100.0, 401);
  for (double x : {0.0, 1.0, 7.5, 25.0, 99.0}) {
    EXPECT_NEAR(curve(x), dist.Cdf(x), 2e-3) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(curve(0.0), 0.0);
}

TEST(QualityCurveTest, BaseCaseIsTopStageCdf) {
  TreeSpec tree = GoogleTwoLevel();
  auto curve = BuildQualityCurve(tree, /*first_stage=*/1, 200.0);
  for (double d : {10.0, 50.0, 150.0}) {
    EXPECT_NEAR(curve(d), tree.stage(1).duration->Cdf(d), 2e-3);
  }
}

TEST(QualityCurveTest, BoundedAndMonotone) {
  TreeSpec tree = GoogleTwoLevel();
  auto curve = BuildQualityCurve(tree, 0, 300.0);
  double prev = 0.0;
  for (double d = 0.0; d <= 300.0; d += 3.0) {
    double q = curve(d);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    EXPECT_GE(q, prev - 5e-3) << "quality should not decrease with deadline, d=" << d;
    prev = std::max(prev, q);
  }
}

TEST(QualityCurveTest, StackMatchesRecursiveBuild) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.0, 0.8), 20);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.5, 0.6), 10);
  stages.emplace_back(std::make_shared<LogNormalDistribution>(2.2, 0.5), 5);
  TreeSpec tree(std::move(stages));
  auto stack = BuildQualityCurveStack(tree, 200.0);
  ASSERT_EQ(stack.size(), 3u);
  for (int first = 0; first < 3; ++first) {
    auto direct = BuildQualityCurve(tree, first, 200.0);
    for (double d = 5.0; d <= 200.0; d += 13.0) {
      EXPECT_NEAR(stack[static_cast<size_t>(first)](d), direct(d), 1e-9)
          << "first=" << first << " d=" << d;
    }
  }
}

TEST(QualityCurveTest, ZeroDeadlineGivesZeroQuality) {
  TreeSpec tree = GoogleTwoLevel();
  auto curve = BuildQualityCurve(tree, 0, 100.0);
  EXPECT_DOUBLE_EQ(curve(0.0), 0.0);
}

TEST(QualityCurveTest, GenerousDeadlineApproachesOne) {
  TreeSpec tree = GoogleTwoLevel();
  // Google medians ~19ms; 10s is beyond any relevant percentile.
  EXPECT_GT(MaxExpectedQuality(tree, 10000.0), 0.99);
}

TEST(QualityCurveTest, MoreLevelsNeedMoreDeadline) {
  auto dist = std::make_shared<LogNormalDistribution>(2.94, 0.55);
  TreeSpec two = TreeSpec::TwoLevel(dist, 20, dist, 20);
  std::vector<StageSpec> stages3;
  stages3.emplace_back(dist, 20);
  stages3.emplace_back(dist, 20);
  stages3.emplace_back(dist, 20);
  TreeSpec three{std::move(stages3)};
  double d = 120.0;
  EXPECT_GT(MaxExpectedQuality(two, d), MaxExpectedQuality(three, d));
}

// Cross-check the analytic optimum against brute-force Monte Carlo over
// fixed waits: q2(D) from the curve must match the best empirical quality
// within sampling noise. This validates Equations 1-4 end to end.
TEST(QualityCurveTest, TwoLevelMatchesMonteCarloOptimum) {
  const int k1 = 30;
  const int k2 = 30;
  LogNormalDistribution x1(2.0, 0.9);
  LogNormalDistribution x2(2.0, 0.6);
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(x1), k1,
                                     std::make_shared<LogNormalDistribution>(x2), k2);
  const double deadline = 40.0;
  double analytic = MaxExpectedQuality(tree, deadline);

  Rng rng(2024);
  double best_empirical = 0.0;
  for (double w = 2.0; w < deadline; w += 2.0) {
    double total_quality = 0.0;
    const int kTrials = 400;
    for (int t = 0; t < kTrials; ++t) {
      long long included = 0;
      for (int a = 0; a < k2; ++a) {
        // Aggregator collects arrivals <= its send time; sends early if all
        // k1 arrive sooner.
        int arrived = 0;
        double last = 0.0;
        std::vector<double> durations(static_cast<size_t>(k1));
        for (auto& dur : durations) {
          dur = x1.Sample(rng);
        }
        std::sort(durations.begin(), durations.end());
        for (double dur : durations) {
          if (dur <= w) {
            ++arrived;
            last = dur;
          }
        }
        double send = (arrived == k1) ? last : w;
        double arrive_at_root = send + x2.Sample(rng);
        if (arrive_at_root <= deadline) {
          included += arrived;
        }
      }
      total_quality += static_cast<double>(included) / (k1 * k2);
    }
    best_empirical = std::max(best_empirical, total_quality / kTrials);
  }
  EXPECT_NEAR(analytic, best_empirical, 0.03);
}

// Same Monte-Carlo cross-check for a second family (exponential): the
// quality recursion is distribution-agnostic by construction, but the test
// pins it.
TEST(QualityCurveTest, ExponentialTwoLevelMatchesMonteCarloOptimum) {
  const int k1 = 20;
  const int k2 = 20;
  ExponentialDistribution x1(0.2);
  ExponentialDistribution x2(0.5);
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<ExponentialDistribution>(x1), k1,
                                     std::make_shared<ExponentialDistribution>(x2), k2);
  const double deadline = 15.0;
  double analytic = MaxExpectedQuality(tree, deadline);

  Rng rng(77);
  double best_empirical = 0.0;
  for (double w = 1.0; w < deadline; w += 1.0) {
    double total_quality = 0.0;
    const int kTrials = 500;
    for (int t = 0; t < kTrials; ++t) {
      long long included = 0;
      for (int a = 0; a < k2; ++a) {
        int arrived = 0;
        double last = 0.0;
        std::vector<double> durations(static_cast<size_t>(k1));
        for (auto& dur : durations) {
          dur = x1.Sample(rng);
        }
        std::sort(durations.begin(), durations.end());
        for (double dur : durations) {
          if (dur <= w) {
            ++arrived;
            last = dur;
          }
        }
        double send = (arrived == k1) ? last : w;
        if (send + x2.Sample(rng) <= deadline) {
          included += arrived;
        }
      }
      total_quality += static_cast<double>(included) / (k1 * k2);
    }
    best_empirical = std::max(best_empirical, total_quality / kTrials);
  }
  EXPECT_NEAR(analytic, best_empirical, 0.03);
}

TEST(QualityCurveTest, WeibullStagesSupported) {
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<WeibullDistribution>(1.5, 10.0), 15,
                                     std::make_shared<WeibullDistribution>(0.9, 8.0), 15);
  auto curve = BuildQualityCurve(tree, 0, 100.0);
  EXPECT_GT(curve(100.0), 0.5);
  EXPECT_LE(curve(100.0), 1.0);
  // Monotone in d.
  EXPECT_LE(curve(30.0), curve(60.0) + 5e-3);
}

TEST(QualityCurveTest, GridResolutionConverges) {
  TreeSpec tree = TreeSpec::TwoLevel(std::make_shared<LogNormalDistribution>(2.0, 0.9), 25,
                                     std::make_shared<LogNormalDistribution>(2.2, 0.7), 25);
  QualityGridOptions coarse;
  coarse.epsilon_fraction = 1.0 / 50.0;
  coarse.grid_points = 51;
  QualityGridOptions fine;
  fine.epsilon_fraction = 1.0 / 800.0;
  fine.grid_points = 801;
  for (double d : {20.0, 40.0, 60.0}) {
    double q_coarse = BuildQualityCurve(tree, 0, 60.0, coarse)(d);
    double q_fine = BuildQualityCurve(tree, 0, 60.0, fine)(d);
    EXPECT_NEAR(q_coarse, q_fine, 0.03) << "d=" << d;
  }
}

}  // namespace
}  // namespace cedar
