// Workload: the stochastic description of a stream of aggregation queries.
//
// A workload supplies (a) the *offline* tree — fanouts plus the global stage
// distributions the system has learned from completed queries (what
// Proportional-split and Cedar's initial wait use), and (b) per-query *true*
// distributions, which may vary query to query (the variation Cedar's online
// learning exploits and the single global fit misses). Concrete production
// workloads (Facebook, Google, Bing, Cosmos, Gaussian) live in src/trace/.

#ifndef CEDAR_SRC_SIM_WORKLOAD_H_
#define CEDAR_SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/core/policy.h"
#include "src/core/tree.h"
#include "src/stats/rng.h"

namespace cedar {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Unit of every duration this workload produces ("s", "ms", "us").
  virtual std::string time_unit() const = 0;

  // The tree with offline/global stage distributions.
  virtual TreeSpec OfflineTree() const = 0;

  // Draws one query's true stage distributions.
  virtual QueryTruth DrawQuery(Rng& rng) const = 0;

  // Draws the true stage distributions of query |index|. Stochastic
  // workloads ignore the index (queries are exchangeable, so the default
  // delegates to DrawQuery); workloads that replay a recorded trace override
  // it to serve query |index| statelessly. The parallel experiment engine
  // always enters through here, which is what makes draws independent of
  // worker scheduling order.
  virtual QueryTruth DrawQueryAt(uint64_t index, Rng& rng) const {
    (void)index;
    return DrawQuery(rng);
  }
};

// A trivial workload where every query is exactly the offline tree (no
// per-query variation). Useful for tests and for the Cosmos regime where
// only global phase statistics exist.
class StationaryWorkload final : public Workload {
 public:
  StationaryWorkload(std::string name, std::string unit, TreeSpec tree)
      : name_(std::move(name)), unit_(std::move(unit)), tree_(std::move(tree)) {}

  std::string name() const override { return name_; }
  std::string time_unit() const override { return unit_; }
  TreeSpec OfflineTree() const override { return tree_; }

  QueryTruth DrawQuery(Rng& rng) const override {
    (void)rng;
    QueryTruth truth;
    for (const auto& stage : tree_.stages()) {
      truth.stage_durations.push_back(stage.duration);
    }
    return truth;
  }

 private:
  std::string name_;
  std::string unit_;
  TreeSpec tree_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_WORKLOAD_H_
