#include "src/sim/experiment.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/sim/experiment_engine.h"
#include "src/sim/realization.h"

namespace cedar {

const PolicyOutcome& ExperimentResult::Outcome(const std::string& policy_name) const {
  for (const auto& outcome : outcomes) {
    if (outcome.policy_name == policy_name) {
      return outcome;
    }
  }
  CEDAR_LOG(FATAL) << "no outcome for policy '" << policy_name << "'";
  __builtin_unreachable();
}

double ExperimentResult::ImprovementPercent(const std::string& baseline,
                                            const std::string& treatment) const {
  return PercentImprovement(Outcome(baseline).MeanQuality(), Outcome(treatment).MeanQuality());
}

std::vector<double> ExperimentResult::PerQueryImprovementPercent(
    const std::string& baseline, const std::string& treatment,
    double min_baseline_quality) const {
  const auto& base = Outcome(baseline).quality.values();
  const auto& treat = Outcome(treatment).quality.values();
  CEDAR_CHECK_EQ(base.size(), treat.size());
  std::vector<double> improvements;
  improvements.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i] < min_baseline_quality) {
      continue;
    }
    improvements.push_back(PercentImprovement(base[i], treat[i]));
  }
  return improvements;
}

double PercentImprovement(double baseline, double treatment) {
  CEDAR_CHECK_GT(baseline, 0.0) << "baseline quality must be positive for an improvement %";
  return 100.0 * (treatment - baseline) / baseline;
}

std::vector<const WaitPolicy*> PolicyPointers(
    const std::vector<std::unique_ptr<WaitPolicy>>& policies) {
  std::vector<const WaitPolicy*> pointers;
  pointers.reserve(policies.size());
  for (const auto& policy : policies) {
    pointers.push_back(policy.get());
  }
  return pointers;
}

ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<const WaitPolicy*>& policies,
                               const ExperimentConfig& config) {
  CEDAR_CHECK(!policies.empty());
  CEDAR_CHECK_GT(config.num_queries, 0);
  CEDAR_CHECK_GT(config.deadline, 0.0);

  ExperimentResult result;
  result.outcomes.resize(policies.size());
  AssignOutcomeNames(policies, result.outcomes);

  TreeSpec offline_tree = workload.OfflineTree();
  TreeSimulationOptions sim_options = config.sim;
  if (config.wait_table_store != nullptr) {
    sim_options.table_store = config.wait_table_store;
  }
  TreeSimulation simulation(offline_tree, config.deadline, sim_options);

  std::vector<QueryResult> grid = RunExperimentGrid<QueryResult>(
      workload, offline_tree, policies, config,
      [&simulation](const WaitPolicy& policy, const QueryRealization& realization) {
        return simulation.RunQuery(policy, realization);
      });

  // Merge in query order: paired samples stay aligned and the accumulation
  // order is fixed, independent of which worker ran which query.
  const size_t num_policies = policies.size();
  for (int q = 0; q < config.num_queries; ++q) {
    for (size_t p = 0; p < num_policies; ++p) {
      const QueryResult& query_result = grid[static_cast<size_t>(q) * num_policies + p];
      result.outcomes[p].quality.Add(query_result.quality);
      result.outcomes[p].tier0_send_time.Add(query_result.mean_tier0_send_time);
      result.outcomes[p].root_arrivals_late += query_result.root_arrivals_late;
    }
  }

  // Metrics are folded here, after the deterministic merge, never from the
  // worker threads — the registry observes runs, it does not participate.
  if (MetricsEnabled()) {
    // Per-deadline labeled series ride alongside the unlabeled totals, so a
    // sweep over deadlines can be sliced after the fact (ROADMAP: metric
    // labels). The label value is the config deadline, %g-formatted.
    MetricsRegistry& registry = MetricsRegistry::Global();
    const auto labeled = [&](const char* name) {
      return LabeledMetricName(name, "deadline_ms", config.deadline);
    };
    registry.GetCounter("sim.experiments").Increment();
    registry.GetCounter("sim.queries").Increment(config.num_queries);
    registry.GetCounter(labeled("sim.queries")).Increment(config.num_queries);
    Histogram& quality =
        registry.GetHistogram("sim.query_quality", {1e-4, 1.0, 40});
    Histogram& quality_labeled =
        registry.GetHistogram(labeled("sim.query_quality"), {1e-4, 1.0, 40});
    Counter& late = registry.GetCounter("sim.root_arrivals_late");
    Counter& late_labeled = registry.GetCounter(labeled("sim.root_arrivals_late"));
    for (const PolicyOutcome& outcome : result.outcomes) {
      for (double value : outcome.quality.values()) {
        quality.Observe(value);
        quality_labeled.Observe(value);
      }
      late.Increment(outcome.root_arrivals_late);
      late_labeled.Increment(outcome.root_arrivals_late);
    }
  }
  return result;
}

ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                               const ExperimentConfig& config) {
  return RunExperiment(workload, PolicyPointers(policies), config);
}

}  // namespace cedar
