#include "src/sim/experiment.h"

#include <set>

#include "src/common/logging.h"
#include "src/sim/realization.h"

namespace cedar {

const PolicyOutcome& ExperimentResult::Outcome(const std::string& policy_name) const {
  for (const auto& outcome : outcomes) {
    if (outcome.policy_name == policy_name) {
      return outcome;
    }
  }
  CEDAR_LOG(FATAL) << "no outcome for policy '" << policy_name << "'";
  __builtin_unreachable();
}

double ExperimentResult::ImprovementPercent(const std::string& baseline,
                                            const std::string& treatment) const {
  return PercentImprovement(Outcome(baseline).MeanQuality(), Outcome(treatment).MeanQuality());
}

std::vector<double> ExperimentResult::PerQueryImprovementPercent(
    const std::string& baseline, const std::string& treatment,
    double min_baseline_quality) const {
  const auto& base = Outcome(baseline).quality.values();
  const auto& treat = Outcome(treatment).quality.values();
  CEDAR_CHECK_EQ(base.size(), treat.size());
  std::vector<double> improvements;
  improvements.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i] < min_baseline_quality) {
      continue;
    }
    improvements.push_back(PercentImprovement(base[i], treat[i]));
  }
  return improvements;
}

double PercentImprovement(double baseline, double treatment) {
  CEDAR_CHECK_GT(baseline, 0.0) << "baseline quality must be positive for an improvement %";
  return 100.0 * (treatment - baseline) / baseline;
}

ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<const WaitPolicy*>& policies,
                               const ExperimentConfig& config) {
  CEDAR_CHECK(!policies.empty());
  CEDAR_CHECK_GT(config.num_queries, 0);
  CEDAR_CHECK_GT(config.deadline, 0.0);

  ExperimentResult result;
  result.outcomes.resize(policies.size());
  {
    std::set<std::string> names;
    for (size_t p = 0; p < policies.size(); ++p) {
      result.outcomes[p].policy_name = policies[p]->name();
      CEDAR_CHECK(names.insert(policies[p]->name()).second)
          << "duplicate policy name '" << policies[p]->name() << "' in experiment";
    }
  }

  TreeSpec offline_tree = workload.OfflineTree();
  TreeSimulation simulation(offline_tree, config.deadline, config.sim);

  Rng rng(config.seed);
  uint64_t next_sequence = (config.seed << 20) + 1;
  for (int q = 0; q < config.num_queries; ++q) {
    QueryTruth truth = workload.DrawQuery(rng);
    truth.sequence = next_sequence++;
    Rng realization_rng = rng.Fork();
    QueryRealization realization = SampleRealization(offline_tree, truth, realization_rng);
    for (size_t p = 0; p < policies.size(); ++p) {
      QueryResult query_result = simulation.RunQuery(*policies[p], realization);
      result.outcomes[p].quality.Add(query_result.quality);
      result.outcomes[p].tier0_send_time.Add(query_result.mean_tier0_send_time);
      result.outcomes[p].root_arrivals_late += query_result.root_arrivals_late;
    }
  }
  return result;
}

}  // namespace cedar
