// Experiment runner: replays a set of queries drawn from a workload under
// several competing policies, on identical realizations, and collects
// per-query qualities. Every figure harness is a thin loop over this.
//
// Queries are sharded across a work-stealing thread pool with per-query
// deterministic seeding (see experiment_engine.h), so results are
// bit-identical for any thread count.

#ifndef CEDAR_SRC_SIM_EXPERIMENT_H_
#define CEDAR_SRC_SIM_EXPERIMENT_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sample_set.h"
#include "src/core/policy.h"
#include "src/sim/tree_simulation.h"
#include "src/sim/workload.h"

namespace cedar {

class ThreadPool;
class WaitTableStore;

// Knobs shared by every experiment driver (analytic simulator, cluster
// engine): the concrete configs below and ClusterExperimentConfig extend it
// with engine-specific options.
struct ExperimentDriverConfig {
  double deadline = 0.0;
  int num_queries = 100;
  uint64_t seed = 42;
  // Worker threads for the parallel engine: n >= 1 runs exactly n workers,
  // <= 0 means one per hardware thread. Results are identical either way.
  int threads = 0;
  // Optional externally owned worker pool. When set, the driver runs on it
  // (ignoring |threads|) instead of constructing a pool per call — sweeps
  // reuse one pool across all their deadlines (see RunDeadlineSweep). The
  // pool is borrowed: the caller keeps ownership and the driver leaves it
  // reusable. Results are bit-identical with or without it.
  ThreadPool* pool = nullptr;
  // Optional experiment-scoped wait-table store, forwarded to policies via
  // ctx.table_store (see AggregatorContext). Borrowed; null means policies
  // resolve their default (the process-wide WaitTableStore::Global() when
  // sharing is on). Tables are content-keyed and read-only, so results are
  // bit-identical with any store — this knob only scopes the *amortization*.
  WaitTableStore* wait_table_store = nullptr;
};

struct ExperimentConfig : ExperimentDriverConfig {
  TreeSimulationOptions sim;
};

struct PolicyOutcome {
  std::string policy_name;
  // One entry per query, same order for every policy (paired samples). The
  // parallel engine merges per-worker shards back in query order, so entry i
  // is query i for every policy and every thread count.
  SampleSet quality;
  SampleSet tier0_send_time;
  long long root_arrivals_late = 0;

  double MeanQuality() const { return quality.empty() ? 0.0 : quality.Mean(); }
};

// Result shared by every driver; engine-specific results (see
// ClusterExperimentResult) extend it with their own aggregates.
struct ExperimentResult {
  std::vector<PolicyOutcome> outcomes;

  // Outcome by policy name; fatal if absent.
  const PolicyOutcome& Outcome(const std::string& policy_name) const;

  // 100 * (mean(treatment) - mean(baseline)) / mean(baseline).
  double ImprovementPercent(const std::string& baseline, const std::string& treatment) const;

  // Per-query percentage improvements (paired), skipping queries whose
  // baseline quality is below |min_baseline_quality| — the Figure 8 filter
  // that avoids unboundedly large ratios.
  std::vector<double> PerQueryImprovementPercent(const std::string& baseline,
                                                 const std::string& treatment,
                                                 double min_baseline_quality = 0.05) const;
};

// Runs |config.num_queries| queries of |workload| under every prototype in
// |policies| (all policies see identical realizations). Policies are
// identified by WaitPolicy::name(); names must be unique within the run.
//
// Ownership rule (both overloads): the driver only *reads* the prototypes
// for the duration of the call — each worker forks detached replicas via
// WaitPolicy::ForkForWorker() — so the caller keeps ownership and may reuse
// or destroy them afterwards.
ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<const WaitPolicy*>& policies,
                               const ExperimentConfig& config);

// Convenience overload for callers that hold owning prototypes (e.g. from
// MakePolicyList); equivalent to passing the raw pointers.
ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<std::unique_ptr<WaitPolicy>>& policies,
                               const ExperimentConfig& config);

// Exact match for brace-list call sites ({&baseline, &cedar}), which would
// otherwise be ambiguous between the two vector overloads.
inline ExperimentResult RunExperiment(const Workload& workload,
                                      std::initializer_list<const WaitPolicy*> policies,
                                      const ExperimentConfig& config) {
  return RunExperiment(workload, std::vector<const WaitPolicy*>(policies), config);
}

// Convenience percentage helper used across benches.
double PercentImprovement(double baseline, double treatment);

// Borrows the raw prototype pointers from an owning policy list (shared by
// the unique_ptr driver overloads and the CLI tools).
std::vector<const WaitPolicy*> PolicyPointers(
    const std::vector<std::unique_ptr<WaitPolicy>>& policies);

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_EXPERIMENT_H_
