// Experiment runner: replays a set of queries drawn from a workload under
// several competing policies, on identical realizations, and collects
// per-query qualities. Every figure harness is a thin loop over this.

#ifndef CEDAR_SRC_SIM_EXPERIMENT_H_
#define CEDAR_SRC_SIM_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/sample_set.h"
#include "src/core/policy.h"
#include "src/sim/tree_simulation.h"
#include "src/sim/workload.h"

namespace cedar {

struct ExperimentConfig {
  double deadline = 0.0;
  int num_queries = 100;
  uint64_t seed = 42;
  TreeSimulationOptions sim;
};

struct PolicyOutcome {
  std::string policy_name;
  // One entry per query, same order for every policy (paired samples).
  SampleSet quality;
  SampleSet tier0_send_time;
  long long root_arrivals_late = 0;

  double MeanQuality() const { return quality.empty() ? 0.0 : quality.Mean(); }
};

struct ExperimentResult {
  std::vector<PolicyOutcome> outcomes;

  // Outcome by policy name; fatal if absent.
  const PolicyOutcome& Outcome(const std::string& policy_name) const;

  // 100 * (mean(treatment) - mean(baseline)) / mean(baseline).
  double ImprovementPercent(const std::string& baseline, const std::string& treatment) const;

  // Per-query percentage improvements (paired), skipping queries whose
  // baseline quality is below |min_baseline_quality| — the Figure 8 filter
  // that avoids unboundedly large ratios.
  std::vector<double> PerQueryImprovementPercent(const std::string& baseline,
                                                 const std::string& treatment,
                                                 double min_baseline_quality = 0.05) const;
};

// Runs |config.num_queries| queries of |workload| under every prototype in
// |policies| (all policies see identical realizations). Policies are
// identified by WaitPolicy::name(); names must be unique within the run.
ExperimentResult RunExperiment(const Workload& workload,
                               const std::vector<const WaitPolicy*>& policies,
                               const ExperimentConfig& config);

// Convenience percentage helper used across benches.
double PercentImprovement(double baseline, double treatment);

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_EXPERIMENT_H_
