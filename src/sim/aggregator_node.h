// AggregatorNode: one aggregator instance executing Pseudocode 1 against an
// EventQueue — arrival handler, timer re-arming, early send when all
// children have reported, and the upstream send callback. Shared by the
// analytic tree simulator and the cluster runtime.

#ifndef CEDAR_SRC_SIM_AGGREGATOR_NODE_H_
#define CEDAR_SRC_SIM_AGGREGATOR_NODE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/policy.h"
#include "src/obs/query_trace.h"
#include "src/sim/event_queue.h"

namespace cedar {

class AggregatorNode {
 public:
  AggregatorNode() = default;

  // |origin| is this aggregator's time zero: policies reason in times
  // relative to their query's start, so a job arriving mid-simulation sets
  // origin to its arrival time (multi-query cluster runs) while single-query
  // replays leave it at 0. |trace|, when non-null, receives lifecycle events
  // (initial wait, arrivals, re-arms, the hold/fold send) in query-relative
  // time; it must outlive the node.
  void Init(int tier, long long index, std::unique_ptr<WaitPolicy> policy,
            const AggregatorContext* ctx, double origin = 0.0,
            QueryTraceBuilder* trace = nullptr) {
    tier_ = tier;
    index_ = index;
    policy_ = std::move(policy);
    ctx_ = ctx;
    origin_ = origin;
    trace_ = trace;
  }

  WaitPolicy* policy() { return policy_.get(); }
  int tier() const { return tier_; }
  long long index() const { return index_; }
  bool closed() const { return closed_; }
  double send_time() const { return send_time_; }
  double included_weight() const { return included_weight_; }
  int arrivals_count() const { return static_cast<int>(arrivals_.size()); }

  // Arms the initial timer (InitialWait). |send_fn| is invoked exactly once,
  // at the send, with (*this, accumulated weight).
  void Start(EventQueue& queue, std::function<void(AggregatorNode&, double)> send_fn) {
    send_fn_ = std::move(send_fn);
    double wait = policy_->DecideInitialWait(*ctx_);
    if (trace_ != nullptr) {
      trace_->RecordInitialWait(tier_, index_, wait);
    }
    ArmTimer(queue, wait);
  }

  // Handles one child output of |weight| arriving now. Late outputs (after
  // the send) are dropped, matching the model: once the partial result went
  // upstream, stragglers are ignored.
  void OnChildOutput(EventQueue& queue, double weight) {
    if (closed_) {
      return;
    }
    double relative_now = queue.now() - origin_;
    arrivals_.push_back(relative_now);
    included_weight_ += weight;
    if (trace_ != nullptr) {
      trace_->RecordArrival(tier_, index_, relative_now,
                            static_cast<int>(arrivals_.size()));
    }
    if (static_cast<int>(arrivals_.size()) == ctx_->fanout) {
      Send(queue);  // all children reported: SetTimer(0) in Pseudocode 1
      return;
    }
    double wait = policy_->DecideOnArrival(*ctx_, relative_now, arrivals_);
    if (wait != armed_wait_) {
      if (trace_ != nullptr) {
        trace_->RecordWaitUpdate(tier_, index_, relative_now, wait);
      }
      ArmTimer(queue, wait);
    }
  }

 private:
  void ArmTimer(EventQueue& queue, double wait) {
    if (timer_handle_ != 0) {
      queue.Cancel(timer_handle_);
    }
    armed_wait_ = wait;
    double fire_at = std::max(origin_ + wait, queue.now());
    timer_handle_ = queue.Schedule(fire_at, [this, &queue] {
      timer_handle_ = 0;
      Send(queue);
    });
  }

  void Send(EventQueue& queue) {
    if (closed_) {
      return;
    }
    closed_ = true;
    if (timer_handle_ != 0) {
      queue.Cancel(timer_handle_);
      timer_handle_ = 0;
    }
    send_time_ = queue.now();
    if (trace_ != nullptr) {
      trace_->RecordSend(tier_, index_, send_time_ - origin_,
                         static_cast<int>(arrivals_.size()), ctx_->fanout,
                         included_weight_);
    }
    send_fn_(*this, included_weight_);
  }

  int tier_ = 0;
  long long index_ = 0;
  double origin_ = 0.0;
  std::unique_ptr<WaitPolicy> policy_;
  const AggregatorContext* ctx_ = nullptr;
  QueryTraceBuilder* trace_ = nullptr;
  std::function<void(AggregatorNode&, double)> send_fn_;

  std::vector<double> arrivals_;
  double included_weight_ = 0.0;
  bool closed_ = false;
  double send_time_ = 0.0;
  uint64_t timer_handle_ = 0;
  double armed_wait_ = -1.0;
};

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_AGGREGATOR_NODE_H_
