// The shared parallel experiment engine used by both drivers
// (sim::RunExperiment, cluster::RunClusterExperiment).
//
// Queries are embarrassingly parallel once three rules hold, and this header
// is the one place that enforces them:
//
//  1. Per-query deterministic seeding. Query q's generator is
//     Rng(DeriveStreamSeed(config.seed, q)) — derived from the experiment
//     seed and the query *index* via SplitMix64, never from shared RNG
//     state. Any worker can run any query and draw exactly the same truth
//     and realization, so results are bit-identical for every thread count.
//  2. Detached per-worker policies. Each worker chunk forks the prototypes
//     with WaitPolicy::ForkForWorker(), which must share no mutable state
//     with the source (Clone()-shared per-query caches stay intra-query).
//  3. Merge in query order. Every (query, policy) cell is written to its own
//     pre-sized slot of the result grid; the caller folds the grid back in
//     ascending query order, keeping paired samples aligned across policies
//     and the accumulation order — hence floating-point sums — fixed.
//
// Query sequence ids are always assigned, monotone in the query index and
// never 0 (the QueryTruth "unknown" sentinel), so OraclePolicy's plan cache
// keys stay valid no matter which worker runs which query.

#ifndef CEDAR_SRC_SIM_EXPERIMENT_ENGINE_H_
#define CEDAR_SRC_SIM_EXPERIMENT_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/core/wait_table_store.h"
#include "src/obs/metrics.h"
#include "src/sim/realization.h"
#include "src/sim/workload.h"
#include "src/stats/rng.h"

namespace cedar {

// The sequence id the driver stamps on query |q|: monotone in q, never 0.
inline uint64_t DriverQuerySequence(uint64_t seed, long long q) {
  return (seed << 20) + 1 + static_cast<uint64_t>(q);
}

// Validates the prototype list and stamps |result_outcomes| (any container
// of PolicyOutcome-shaped entries with a policy_name) with unique names.
template <typename Outcomes>
void AssignOutcomeNames(const std::vector<const WaitPolicy*>& policies,
                        Outcomes& result_outcomes) {
  std::set<std::string> names;
  for (size_t p = 0; p < policies.size(); ++p) {
    CEDAR_CHECK(policies[p] != nullptr);
    result_outcomes[p].policy_name = policies[p]->name();
    CEDAR_CHECK(names.insert(policies[p]->name()).second)
        << "duplicate policy name '" << policies[p]->name() << "' in experiment";
  }
}

// Runs every (query, policy) pair of the experiment through |run_query| and
// returns the results as a row-major grid: cell [q * policies.size() + p]
// holds query q under policy p. |run_query| must be safe to call from
// several threads on distinct policy instances (the engines' RunQuery const
// methods are).
//
// RunQueryFn signature: Row(const WaitPolicy& policy, const QueryRealization&).
template <typename Row, typename RunQueryFn>
std::vector<Row> RunExperimentGrid(const Workload& workload, const TreeSpec& offline_tree,
                                   const std::vector<const WaitPolicy*>& policies,
                                   const ExperimentDriverConfig& config,
                                   RunQueryFn&& run_query) {
  const long long num_queries = config.num_queries;
  const size_t num_policies = policies.size();
  std::vector<Row> grid(static_cast<size_t>(num_queries) * num_policies);

  auto run_chunk = [&](long long begin, long long end, int /*chunk*/) {
    // Detached replicas: nothing in this chunk synchronizes with any other.
    std::vector<std::unique_ptr<WaitPolicy>> local;
    local.reserve(num_policies);
    for (const WaitPolicy* prototype : policies) {
      local.push_back(prototype->ForkForWorker());
    }
    for (long long q = begin; q < end; ++q) {
      Rng query_rng(DeriveStreamSeed(config.seed, static_cast<uint64_t>(q)));
      QueryTruth truth = workload.DrawQueryAt(static_cast<uint64_t>(q), query_rng);
      truth.sequence = DriverQuerySequence(config.seed, q);
      Rng realization_rng = query_rng.Fork();
      QueryRealization realization = SampleRealization(offline_tree, truth, realization_rng);
      for (size_t p = 0; p < num_policies; ++p) {
        grid[static_cast<size_t>(q) * num_policies + p] = run_query(*local[p], realization);
      }
    }
  };

  const int pool_threads =
      config.pool != nullptr ? config.pool->num_threads() : ResolveThreadCount(config.threads);
  const int threads = static_cast<int>(std::min<long long>(pool_threads, num_queries));
  if (threads <= 1) {
    // Inline serial path: same seeding, same merge order — and no worker
    // threads, which keeps gtest death tests and TSan-free builds quiet.
    run_chunk(0, num_queries, 0);
    return grid;
  }
  auto run_on_pool = [&](ThreadPool& pool) {
    // Lend the run's pool to the experiment-scoped wait-table store so
    // single-flight builds parallelize their grid fill. Only an explicitly
    // configured store is lent to — its lifetime (and exclusivity) is the
    // caller's to guarantee — never the process Global(), which concurrent
    // runs could otherwise point at a pool about to be destroyed.
    WaitTableStore* store = config.wait_table_store;
    if (store != nullptr) {
      store->SetBuildPool(&pool);
    }
    // Borrowed pools accumulate counters across calls, so export the delta
    // of this run only; post-barrier, never on the workers' hot path.
    const ThreadPool::Stats before = pool.GetStats();
    // A few chunks per worker gives the stealing deques something to balance
    // when query costs are skewed (e.g. Oracle planning on heavy-tail draws).
    ParallelForChunks(pool, num_queries, threads * 4, run_chunk);
    if (store != nullptr) {
      store->SetBuildPool(nullptr);
    }
    if (MetricsEnabled()) {
      const ThreadPool::Stats after = pool.GetStats();
      MetricsRegistry& registry = MetricsRegistry::Global();
      registry.GetCounter("pool.tasks_submitted").Increment(after.submitted - before.submitted);
      registry.GetCounter("pool.tasks_executed_local")
          .Increment(after.executed_local - before.executed_local);
      registry.GetCounter("pool.tasks_stolen").Increment(after.stolen - before.stolen);
      registry.GetCounter("pool.idle_waits").Increment(after.idle_waits - before.idle_waits);
    }
  };
  if (config.pool != nullptr) {
    run_on_pool(*config.pool);
  } else {
    ThreadPool pool(threads);
    run_on_pool(pool);
  }
  return grid;
}

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_EXPERIMENT_ENGINE_H_
