#include "src/sim/tree_simulation.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/query_trace.h"
#include "src/sim/aggregator_node.h"
#include "src/sim/event_queue.h"

namespace cedar {

TreeSimulation::TreeSimulation(TreeSpec offline_tree, double deadline,
                               TreeSimulationOptions options)
    : offline_tree_(std::move(offline_tree)), deadline_(deadline), options_(options) {
  CEDAR_CHECK_GT(deadline, 0.0);
  CEDAR_CHECK_GE(offline_tree_.num_stages(), 2) << "simulation needs >= 2 stages";
  epsilon_ = deadline_ * options_.grid.epsilon_fraction;
  curve_stack_ = BuildQualityCurveStack(offline_tree_, deadline_, options_.grid);
}

const PiecewiseLinear& TreeSimulation::UpperQualityCurve(int tier) const {
  CEDAR_CHECK(tier >= 0 && tier < offline_tree_.num_aggregator_tiers());
  return curve_stack_[static_cast<size_t>(tier + 1)];
}

QueryResult TreeSimulation::RunQuery(const WaitPolicy& policy_prototype,
                                     const QueryRealization& realization) const {
  int n = offline_tree_.num_stages();
  int tiers = offline_tree_.num_aggregator_tiers();
  CEDAR_CHECK_EQ(static_cast<int>(realization.stage_durations.size()), n);

  // Lifecycle tracing: explicit sink wins, else the process-global one.
  TraceCollector* collector =
      options_.trace != nullptr ? options_.trace : ActiveTraceCollector();
  QueryTraceBuilder trace(collector, realization.truth.sequence,
                          policy_prototype.name(), "sim");
  QueryTraceBuilder* trace_ptr = trace.active() ? &trace : nullptr;

  // Upper-stage quality curves: per-query when the knowledge model grants
  // it (see TreeSimulationOptions), otherwise the offline stack. Only the
  // curves for stages >= 1 are consulted, so the bottom stage stays
  // offline/global either way.
  std::vector<PiecewiseLinear> query_stack;
  const std::vector<PiecewiseLinear>* stack = &curve_stack_;
  if (options_.per_query_upper_knowledge) {
    TreeSpec truth_tree = realization.truth.OverlayOn(offline_tree_);
    query_stack = BuildQualityCurveStack(truth_tree, deadline_, options_.grid);
    stack = &query_stack;
  }

  // Build per-tier contexts. start_offset of tier i is the *planned* send
  // time of tier i-1, computed with a scratch policy instance so that each
  // tier's plan is consistent with the policy's own decisions.
  std::vector<AggregatorContext> contexts(static_cast<size_t>(tiers));
  {
    double offset = 0.0;
    for (int tier = 0; tier < tiers; ++tier) {
      AggregatorContext& ctx = contexts[static_cast<size_t>(tier)];
      ctx.tier = tier;
      ctx.deadline = deadline_;
      ctx.start_offset = offset;
      ctx.fanout = offline_tree_.stage(tier).fanout;
      ctx.offline_tree = &offline_tree_;
      ctx.upper_quality = &(*stack)[static_cast<size_t>(tier + 1)];
      ctx.epsilon = epsilon_;
      ctx.table_store = options_.table_store;
      if (trace_ptr != nullptr) {
        trace_ptr->RecordTierPlan(tier, offset);
      }
      if (tier + 1 < tiers) {
        auto scratch = policy_prototype.Clone();
        scratch->BeginQuery(ctx, &realization.truth);
        offset = scratch->DecideInitialWait(ctx);
      }
    }
  }

  // Allocate aggregator nodes per tier. Tier i has StageEdgeCount(i+1)
  // nodes (= number of stage-(i+1) edges).
  std::vector<std::vector<AggregatorNode>> nodes(static_cast<size_t>(tiers));
  for (int tier = 0; tier < tiers; ++tier) {
    long long count = StageEdgeCount(offline_tree_, tier + 1);
    nodes[static_cast<size_t>(tier)] = std::vector<AggregatorNode>(static_cast<size_t>(count));
    for (long long i = 0; i < count; ++i) {
      auto policy = policy_prototype.Clone();
      policy->BeginQuery(contexts[static_cast<size_t>(tier)], &realization.truth);
      nodes[static_cast<size_t>(tier)][static_cast<size_t>(i)].Init(
          tier, i, std::move(policy), &contexts[static_cast<size_t>(tier)], 0.0, trace_ptr);
    }
  }

  EventQueue queue;
  QueryResult result;
  result.total_weight = realization.TotalWeight();

  double tier0_send_sum = 0.0;
  long long tier0_sends = 0;

  // Upstream delivery: when a tier-|t| node sends, its result ships with the
  // pre-sampled stage-(t+1) duration of its own edge.
  auto make_send_fn = [&](int tier) {
    return [&, tier](AggregatorNode& node, double weight) {
      long long index = &node - nodes[static_cast<size_t>(tier)].data();
      double ship =
          realization.stage_durations[static_cast<size_t>(tier + 1)][static_cast<size_t>(index)];
      double arrive_at = queue.now() + ship;
      if (tier == 0) {
        tier0_send_sum += queue.now();
        ++tier0_sends;
      }
      if (tier + 1 == tiers) {
        // Top tier: deliver to the root, subject to the deadline.
        bool in_time = arrive_at <= deadline_;
        if (in_time) {
          result.included_weight += weight;
          ++result.root_arrivals_in_time;
        } else {
          ++result.root_arrivals_late;
        }
        if (trace_ptr != nullptr) {
          trace_ptr->RecordRootArrival(arrive_at, in_time);
        }
        return;
      }
      long long parent = index / offline_tree_.stage(tier + 1).fanout;
      AggregatorNode& parent_node = nodes[static_cast<size_t>(tier + 1)][static_cast<size_t>(parent)];
      queue.Schedule(arrive_at, [&queue, &parent_node, weight] {
        parent_node.OnChildOutput(queue, weight);
      });
    };
  };

  // Start every aggregator (arms initial timers at t >= 0).
  for (int tier = 0; tier < tiers; ++tier) {
    auto send_fn = make_send_fn(tier);
    for (auto& node : nodes[static_cast<size_t>(tier)]) {
      node.Start(queue, send_fn);
    }
  }

  // Schedule leaf process completions.
  const auto& leaf_durations = realization.stage_durations[0];
  int k0 = offline_tree_.stage(0).fanout;
  for (size_t leaf = 0; leaf < leaf_durations.size(); ++leaf) {
    long long agg = static_cast<long long>(leaf) / k0;
    double weight = realization.leaf_weights.empty() ? 1.0 : realization.leaf_weights[leaf];
    AggregatorNode& node = nodes[0][static_cast<size_t>(agg)];
    queue.Schedule(leaf_durations[leaf],
                   [&queue, &node, weight] { node.OnChildOutput(queue, weight); });
  }

  queue.Run();

  result.quality = result.total_weight > 0.0 ? result.included_weight / result.total_weight : 0.0;
  result.mean_tier0_send_time = tier0_sends > 0 ? tier0_send_sum / tier0_sends : 0.0;
  if (trace_ptr != nullptr) {
    trace_ptr->Finish(
        std::max(queue.now(), deadline_), result.quality,
        {TraceArg::Num("root_in_time", static_cast<double>(result.root_arrivals_in_time)),
         TraceArg::Num("root_late", static_cast<double>(result.root_arrivals_late)),
         TraceArg::Num("mean_tier0_send_time", result.mean_tier0_send_time)});
  }
  return result;
}

}  // namespace cedar
