// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events and O(log n) lazy cancellation.
// Shared by the aggregation-tree simulator and the cluster runtime.

#ifndef CEDAR_SRC_SIM_EVENT_QUEUE_H_
#define CEDAR_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time_types.h"

namespace cedar {

using EventCallback = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules |callback| at absolute simulated time |time| (must be >= now).
  // Returns a handle usable with Cancel(). Events at equal times run in
  // scheduling order.
  uint64_t Schedule(SimTime time, EventCallback callback);

  // Cancels a pending event. Cancelling an already-fired or unknown handle
  // is a no-op (timers race with completions by design).
  void Cancel(uint64_t handle);

  // Runs events until the queue is empty.
  void Run();

  // Runs the single earliest pending event; returns false if none remain.
  bool RunOne();

  // Current simulated time (the time of the last event fired).
  SimTime now() const { return now_; }

  // Number of pending (non-cancelled) events.
  size_t pending() const { return heap_.size() - cancelled_.size(); }

  bool empty() const { return pending() == 0; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint64_t handle;
    EventCallback callback;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_set<uint64_t> cancelled_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_handle_ = 1;
};

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_EVENT_QUEUE_H_
