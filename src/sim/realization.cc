#include "src/sim/realization.h"

#include <algorithm>

#include "src/common/logging.h"

namespace cedar {

double QueryRealization::TotalWeight() const {
  if (stage_durations.empty()) {
    return 0.0;
  }
  if (leaf_weights.empty()) {
    return static_cast<double>(stage_durations[0].size());
  }
  double total = 0.0;
  for (double w : leaf_weights) {
    total += w;
  }
  return total;
}

long long StageEdgeCount(const TreeSpec& tree, int stage) {
  CEDAR_CHECK(stage >= 0 && stage < tree.num_stages());
  long long count = 1;
  for (int j = stage; j < tree.num_stages(); ++j) {
    count *= tree.stage(j).fanout;
  }
  return count;
}

QueryRealization SampleRealization(const TreeSpec& tree, const QueryTruth& truth, Rng& rng) {
  CEDAR_CHECK_EQ(static_cast<int>(truth.stage_durations.size()), tree.num_stages());
  QueryRealization realization;
  realization.truth = truth;
  realization.stage_durations.resize(static_cast<size_t>(tree.num_stages()));
  for (int i = 0; i < tree.num_stages(); ++i) {
    const Distribution& dist = *truth.stage_durations[static_cast<size_t>(i)];
    long long edges = StageEdgeCount(tree, i);
    auto& durations = realization.stage_durations[static_cast<size_t>(i)];
    durations.resize(static_cast<size_t>(edges));
    for (auto& d : durations) {
      d = dist.Sample(rng);
    }
  }
  return realization;
}

QueryRealization SampleWeightedRealization(const TreeSpec& tree, const QueryTruth& truth,
                                           const Distribution& weight_dist, Rng& rng) {
  QueryRealization realization = SampleRealization(tree, truth, rng);
  realization.leaf_weights.resize(realization.stage_durations[0].size());
  for (auto& w : realization.leaf_weights) {
    // Output relevance cannot be negative; clamp pathological draws.
    w = std::max(0.0, weight_dist.Sample(rng));
  }
  return realization;
}

}  // namespace cedar
