#include "src/sim/event_queue.h"

#include "src/common/logging.h"

namespace cedar {

uint64_t EventQueue::Schedule(SimTime time, EventCallback callback) {
  CEDAR_CHECK(time >= now_) << "scheduling into the past: " << time << " < " << now_;
  CEDAR_CHECK(IsFiniteTime(time)) << "scheduling at non-finite time";
  Entry entry;
  entry.time = time;
  entry.seq = next_seq_++;
  entry.handle = next_handle_++;
  entry.callback = std::move(callback);
  uint64_t handle = entry.handle;
  heap_.push(std::move(entry));
  return handle;
}

void EventQueue::Cancel(uint64_t handle) {
  if (handle != 0) {
    cancelled_.insert(handle);
  }
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; move via const_cast is the
    // standard idiom-free workaround — copy the small fields and move the
    // callback out via a pop-after-copy of the shared_ptr-free closure.
    Entry entry = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(entry.handle);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.time;
    entry.callback();
    return true;
  }
  return false;
}

void EventQueue::Run() {
  while (RunOne()) {
  }
}

}  // namespace cedar
