// A QueryRealization is one query's fully-sampled randomness: every edge
// duration in the aggregation tree, pre-drawn from the query's true
// distributions. Pre-sampling decouples the stochastic workload from the
// deterministic simulation so that competing policies can be replayed on
// *identical* realizations — exactly how the paper replays production jobs
// across schemes (Figures 7, 8, 10-16).

#ifndef CEDAR_SRC_SIM_REALIZATION_H_
#define CEDAR_SRC_SIM_REALIZATION_H_

#include <vector>

#include "src/core/policy.h"
#include "src/core/tree.h"
#include "src/stats/rng.h"

namespace cedar {

struct QueryRealization {
  // True per-stage distributions for this query (for Oracle and metrics).
  QueryTruth truth;

  // stage_durations[i][e]: the sampled duration of edge |e| in stage |i|.
  // Stage i has prod_{j >= i} fanout_j edges; edge e of stage i belongs to
  // parent e / fanout_i. Stage 0 edges are leaf process durations, the last
  // stage's edges are top-aggregator-to-root shipping times.
  std::vector<std::vector<double>> stage_durations;

  // Optional per-leaf output weights (weighted-quality extension,
  // Appendix A). Empty means every process output weighs 1.
  std::vector<double> leaf_weights;

  // Sum of leaf weights (or the leaf count when unweighted).
  double TotalWeight() const;
};

// Number of edges in stage |stage| of |tree|: product of fanouts j >= stage.
long long StageEdgeCount(const TreeSpec& tree, int stage);

// Samples a realization of |truth| on the shape of |tree| (fanouts only; the
// tree's own distributions are ignored). Durations of each stage are drawn
// i.i.d. from truth.stage_durations[i].
QueryRealization SampleRealization(const TreeSpec& tree, const QueryTruth& truth, Rng& rng);

// Like SampleRealization but also draws per-leaf weights from |weight_dist|.
QueryRealization SampleWeightedRealization(const TreeSpec& tree, const QueryTruth& truth,
                                           const Distribution& weight_dist, Rng& rng);

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_REALIZATION_H_
