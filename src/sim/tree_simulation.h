// Discrete-event simulation of one aggregation query (Pseudocode 1 executed
// at every aggregator of the tree).
//
// Semantics, matching the paper's model (Figure 5):
//  * All leaf processes are dispatched at time 0; process j under tier-0
//    aggregator a finishes at its sampled stage-0 duration.
//  * Each aggregator consults its WaitPolicy: an initial wait before any
//    arrival, and an updated wait after every arrival. When its timer
//    expires — or all children have reported — it sends its partial result
//    upstream; shipping takes the sampled next-stage duration.
//  * Late child outputs (after the send) are dropped.
//  * The root includes a top-tier aggregator's result iff it arrives by the
//    deadline D; a missed aggregator forfeits all the process outputs it
//    had collected.
//  * Quality = (weight of process outputs included at the root) /
//    (total weight), the paper's §3 metric (Appendix A weighting optional).

#ifndef CEDAR_SRC_SIM_TREE_SIMULATION_H_
#define CEDAR_SRC_SIM_TREE_SIMULATION_H_

#include <memory>
#include <vector>

#include "src/core/policy.h"
#include "src/core/quality.h"
#include "src/core/tree.h"
#include "src/obs/trace.h"
#include "src/sim/realization.h"

namespace cedar {

struct QueryResult {
  // Fraction of (weighted) process outputs included at the root.
  double quality = 0.0;

  // Weighted outputs included / total.
  double included_weight = 0.0;
  double total_weight = 0.0;

  // Top-tier results that reached the root in time / total top-tier nodes.
  long long root_arrivals_in_time = 0;
  long long root_arrivals_late = 0;

  // Mean absolute send time of tier-0 aggregators (diagnostic: what wait the
  // policy effectively chose).
  double mean_tier0_send_time = 0.0;
};

struct TreeSimulationOptions {
  QualityGridOptions grid;

  // Knowledge model for the upper stages (X2..Xn). Aggregator-side
  // operations are standard functions whose duration distributions a
  // production system profiles offline per query class (§4.1 of the paper);
  // when true, the quality curves handed to optimizing policies
  // (ctx.upper_quality) are built from the query's true upper-stage
  // distributions, while the bottom stage X1 remains offline/global and
  // must be learned online. Proportional-split and the other straw-men
  // ignore the curves, so they keep using global means either way. Set to
  // false to model fully-stale upper knowledge.
  bool per_query_upper_knowledge = true;

  // Query-lifecycle trace sink (borrowed, may be null). When null, RunQuery
  // falls back to the process-global ActiveTraceCollector(); when that is
  // also null, tracing is disabled and costs one pointer test per query.
  TraceCollector* trace = nullptr;

  // Wait-table store handed to policies via ctx.table_store (borrowed, may
  // be null = policies use their default). Lets a run pin table sharing to
  // an experiment-scoped store instead of the process Global().
  WaitTableStore* table_store = nullptr;
};

// Shared per-(offline tree, deadline) simulation state: the offline quality
// curves every policy consults. Construct once, run many queries.
class TreeSimulation {
 public:
  TreeSimulation(TreeSpec offline_tree, double deadline, TreeSimulationOptions options = {});

  // Replays |realization| under |policy_prototype| (cloned per aggregator).
  QueryResult RunQuery(const WaitPolicy& policy_prototype,
                       const QueryRealization& realization) const;

  const TreeSpec& offline_tree() const { return offline_tree_; }
  double deadline() const { return deadline_; }
  double epsilon() const { return epsilon_; }

  // Offline q-curve of stages [tier+1, n) — what ctx.upper_quality points at.
  const PiecewiseLinear& UpperQualityCurve(int tier) const;

 private:
  TreeSpec offline_tree_;
  double deadline_;
  TreeSimulationOptions options_;
  double epsilon_;
  std::vector<PiecewiseLinear> curve_stack_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_SIM_TREE_SIMULATION_H_
