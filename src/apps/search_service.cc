#include "src/apps/search_service.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/sim/aggregator_node.h"
#include "src/sim/event_queue.h"

namespace cedar {

SearchService::SearchService(const SearchIndex* index, TreeSpec latency_tree,
                             SearchServiceConfig config)
    : index_(index), latency_tree_(std::move(latency_tree)), config_(config) {
  CEDAR_CHECK(index_ != nullptr);
  CEDAR_CHECK_EQ(latency_tree_.num_stages(), 2) << "search uses a two-level tree (Figure 2)";
  CEDAR_CHECK_EQ(latency_tree_.TotalProcesses(), index_->num_shards())
      << "latency-tree fanouts must cover every index shard";
  CEDAR_CHECK_GT(config_.deadline, 0.0);
  epsilon_ = config_.deadline * config_.grid.epsilon_fraction;
  offline_stack_ = BuildQualityCurveStack(latency_tree_, config_.deadline, config_.grid);
}

SearchQueryOutcome SearchService::RunQuery(const WaitPolicy& policy,
                                           const std::vector<int>& query,
                                           const QueryRealization& realization) const {
  int k1 = latency_tree_.stage(0).fanout;
  int k2 = latency_tree_.stage(1).fanout;
  CEDAR_CHECK_EQ(static_cast<int>(realization.stage_durations[0].size()), k1 * k2);

  // Per-query upper-stage knowledge, as in the simulators.
  std::vector<PiecewiseLinear> query_stack;
  const std::vector<PiecewiseLinear>* stack = &offline_stack_;
  if (config_.per_query_upper_knowledge) {
    TreeSpec truth_tree = realization.truth.OverlayOn(latency_tree_);
    query_stack = BuildQualityCurveStack(truth_tree, config_.deadline, config_.grid);
    stack = &query_stack;
  }

  AggregatorContext ctx;
  ctx.tier = 0;
  ctx.deadline = config_.deadline;
  ctx.start_offset = 0.0;
  ctx.fanout = k1;
  ctx.offline_tree = &latency_tree_;
  ctx.upper_quality = &(*stack)[1];
  ctx.epsilon = epsilon_;

  EventQueue queue;
  std::vector<AggregatorNode> nodes(static_cast<size_t>(k2));
  // Ranked lists collected so far at each aggregator (only while open).
  std::vector<std::vector<std::vector<SearchHit>>> collected(static_cast<size_t>(k2));

  SearchQueryOutcome outcome;
  outcome.total_shards = k1 * k2;
  std::vector<std::vector<SearchHit>> root_lists;

  int aggregator_misses = 0;
  auto send_fn = [&](AggregatorNode& node, double weight) {
    auto agg = static_cast<size_t>(node.index());
    double ship = realization.stage_durations[1][agg];
    if (queue.now() + ship <= config_.deadline) {
      // The aggregator forwards its merged top-K (Figure 2: "sends the top
      // few of them upstream").
      root_lists.push_back(MergeTopK(collected[agg], config_.top_k));
      outcome.shards_included += static_cast<int>(weight);
    } else {
      ++aggregator_misses;
    }
  };

  for (int a = 0; a < k2; ++a) {
    auto node_policy = policy.Clone();
    node_policy->BeginQuery(ctx, &realization.truth);
    nodes[static_cast<size_t>(a)].Init(0, a, std::move(node_policy), &ctx);
    nodes[static_cast<size_t>(a)].Start(queue, send_fn);
  }

  // Shard completions: shard s (owned by aggregator s / k1) delivers its
  // local top-K at its sampled latency.
  for (int s = 0; s < k1 * k2; ++s) {
    auto agg = static_cast<size_t>(s / k1);
    double latency = realization.stage_durations[0][static_cast<size_t>(s)];
    queue.Schedule(latency, [&, s, agg] {
      AggregatorNode& node = nodes[agg];
      if (node.closed()) {
        return;  // aggregator already sent; the shard's output is wasted
      }
      collected[agg].push_back(
          index_->shard(s).TopK(query, config_.top_k, *index_));
      node.OnChildOutput(queue, 1.0);
    });
  }

  queue.Run();

  std::vector<SearchHit> response = MergeTopK(root_lists, config_.top_k);
  std::vector<SearchHit> exact = index_->ExactTopK(query, config_.top_k);
  outcome.recall = RecallAtK(exact, response);
  outcome.fraction_quality =
      static_cast<double>(outcome.shards_included) / static_cast<double>(outcome.total_shards);

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("search.queries").Increment();
    registry.GetCounter("search.deadline_misses").Increment(aggregator_misses);
    registry.GetHistogram("search.recall", {1e-4, 1.0, 40}).Observe(outcome.recall);
    registry.GetHistogram("search.fraction_quality", {1e-4, 1.0, 40})
        .Observe(outcome.fraction_quality);
  }
  return outcome;
}

}  // namespace cedar
