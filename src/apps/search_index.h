// A miniature sharded web-search backend (§2.1, Figure 2): synthetic
// corpus, inverted index partitioned across shards, tf-idf scoring, and
// top-K merging. This is the application layer the paper motivates Cedar
// with — and the substrate for its future-work question of output
// *relevance*: with ranked results, response quality becomes recall of the
// true top-K, not just the fraction of shards heard from.

#ifndef CEDAR_SRC_APPS_SEARCH_INDEX_H_
#define CEDAR_SRC_APPS_SEARCH_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "src/stats/rng.h"

namespace cedar {

// One scored hit.
struct SearchHit {
  int64_t doc_id = 0;
  double score = 0.0;
};

// Synthetic corpus: documents are bags of term ids drawn from a Zipf
// vocabulary (frequent terms appear in many documents, rare terms are
// selective, as in real text).
struct CorpusSpec {
  int64_t num_documents = 10000;
  int vocabulary_size = 2000;
  int terms_per_document = 40;
  double zipf_exponent = 1.1;
  uint64_t seed = 1;
};

class SearchShard;

// An inverted index over a synthetic corpus, partitioned round-robin across
// |num_shards| shards. Immutable after construction.
class SearchIndex {
 public:
  SearchIndex(const CorpusSpec& spec, int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const SearchShard& shard(int i) const;
  int64_t num_documents() const { return spec_.num_documents; }

  // Draws a query of |terms| distinct term ids (Zipf-weighted, like user
  // queries).
  std::vector<int> SampleQuery(int terms, Rng& rng) const;

  // Ground truth: the exact top-|k| over the whole corpus (all shards,
  // no deadline). Ties broken by doc id for determinism.
  std::vector<SearchHit> ExactTopK(const std::vector<int>& query, int k) const;

  // Inverse document frequency of |term| over the whole corpus (shards
  // score with the global idf, as real engines distribute it).
  double Idf(int term) const;

 private:
  CorpusSpec spec_;
  std::vector<SearchShard> shards_;
  std::vector<int64_t> document_frequency_;  // per term, corpus-wide
};

// One shard: posting lists for its document subset.
class SearchShard {
 public:
  // Scores the shard's documents for |query| using tf * idf (idf supplied
  // by the owning index) and returns its local top-|k| (score desc, doc id
  // asc on ties).
  std::vector<SearchHit> TopK(const std::vector<int>& query, int k,
                              const SearchIndex& index) const;

  int64_t num_documents() const { return static_cast<int64_t>(doc_ids_.size()); }

 private:
  friend class SearchIndex;

  // term -> list of (position into doc_ids_, term frequency).
  std::unordered_map<int, std::vector<std::pair<int32_t, int32_t>>> postings_;
  std::vector<int64_t> doc_ids_;
};

// Merges ranked lists into a single top-|k| (the aggregator operation of
// Figure 2). Duplicate doc ids keep their maximum score.
std::vector<SearchHit> MergeTopK(const std::vector<std::vector<SearchHit>>& lists, int k);

// recall@k of |approx| against ground truth |exact|: fraction of exact's
// doc ids present in approx.
double RecallAtK(const std::vector<SearchHit>& exact, const std::vector<SearchHit>& approx);

}  // namespace cedar

#endif  // CEDAR_SRC_APPS_SEARCH_INDEX_H_
