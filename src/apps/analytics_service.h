// A miniature approximate-analytics engine (§2.1, Figure 3): a partitioned
// fact table, AVG(value) GROUP BY group executed as partial aggregates that
// merge up a two-level tree under a deadline. Beyond the §3
// fraction-of-outputs metric, this app measures what the user actually
// cares about: the relative error of the approximate group means against
// the exact answer — the BlinkDB-style accuracy/deadline trade-off.

#ifndef CEDAR_SRC_APPS_ANALYTICS_SERVICE_H_
#define CEDAR_SRC_APPS_ANALYTICS_SERVICE_H_

#include <cstdint>
#include <vector>

#include "src/core/policy.h"
#include "src/core/quality.h"
#include "src/sim/realization.h"
#include "src/stats/rng.h"

namespace cedar {

struct FactTableSpec {
  int64_t rows = 200000;
  int num_groups = 16;
  int num_partitions = 400;
  uint64_t seed = 1;
  // Group means are spread log-uniformly in [mean_low, mean_high]; values
  // are log-normal around their group mean (heavy-tailed measures, as in
  // revenue-like columns).
  double mean_low = 10.0;
  double mean_high = 1000.0;
  double value_sigma = 0.6;
};

// Per-group (sum, count) partials — the unit that flows up the tree.
struct GroupPartial {
  std::vector<double> sums;
  std::vector<int64_t> counts;

  void Accumulate(const GroupPartial& other);
};

// A synthetic partitioned fact table, immutable after construction.
class FactTable {
 public:
  explicit FactTable(const FactTableSpec& spec);

  int num_partitions() const { return spec_.num_partitions; }
  int num_groups() const { return spec_.num_groups; }

  // The partial aggregate of one partition.
  const GroupPartial& PartitionPartial(int partition) const;

  // Exact AVG(value) per group over the full table.
  const std::vector<double>& ExactGroupMeans() const { return exact_means_; }

 private:
  FactTableSpec spec_;
  std::vector<GroupPartial> partials_;
  std::vector<double> exact_means_;
};

struct AnalyticsOutcome {
  // §3 metric: fraction of partition outputs included at the root.
  double fraction_quality = 0.0;
  // Mean over groups of |approx_mean - exact_mean| / exact_mean; a group
  // with no included rows contributes error 1.
  double mean_relative_error = 0.0;
  int partitions_included = 0;
  int groups_answered = 0;
};

struct AnalyticsServiceConfig {
  double deadline = 0.0;
  QualityGridOptions grid;
  bool per_query_upper_knowledge = true;
};

class AnalyticsService {
 public:
  // |latency_tree| fanouts must cover every partition (two levels).
  // |table| must outlive the service.
  AnalyticsService(const FactTable* table, TreeSpec latency_tree,
                   AnalyticsServiceConfig config);

  AnalyticsOutcome RunQuery(const WaitPolicy& policy, const QueryRealization& realization) const;

 private:
  const FactTable* table_;
  TreeSpec latency_tree_;
  AnalyticsServiceConfig config_;
  double epsilon_;
  std::vector<PiecewiseLinear> offline_stack_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_APPS_ANALYTICS_SERVICE_H_
