#include "src/apps/analytics_service.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/sim/aggregator_node.h"
#include "src/sim/event_queue.h"
#include "src/stats/distribution.h"

namespace cedar {

void GroupPartial::Accumulate(const GroupPartial& other) {
  CEDAR_CHECK_EQ(sums.size(), other.sums.size());
  for (size_t g = 0; g < sums.size(); ++g) {
    sums[g] += other.sums[g];
    counts[g] += other.counts[g];
  }
}

FactTable::FactTable(const FactTableSpec& spec) : spec_(spec) {
  CEDAR_CHECK_GE(spec.num_partitions, 1);
  CEDAR_CHECK_GE(spec.num_groups, 1);
  CEDAR_CHECK_GE(spec.rows, spec.num_partitions);

  // Log-uniform group means.
  std::vector<double> group_mu(static_cast<size_t>(spec.num_groups));
  Rng rng(spec.seed);
  for (auto& mu : group_mu) {
    double u = rng.NextDouble();
    mu = std::log(spec.mean_low) + u * (std::log(spec.mean_high) - std::log(spec.mean_low));
  }

  partials_.resize(static_cast<size_t>(spec.num_partitions));
  for (auto& partial : partials_) {
    partial.sums.assign(static_cast<size_t>(spec.num_groups), 0.0);
    partial.counts.assign(static_cast<size_t>(spec.num_groups), 0);
  }

  std::vector<double> total_sums(static_cast<size_t>(spec.num_groups), 0.0);
  std::vector<int64_t> total_counts(static_cast<size_t>(spec.num_groups), 0);
  for (int64_t row = 0; row < spec.rows; ++row) {
    auto group = static_cast<size_t>(rng.NextBounded(static_cast<uint64_t>(spec.num_groups)));
    // Log-normal value around the group's location; the correction keeps
    // the group mean at ~exp(mu): E[lognormal] = exp(mu + sigma^2/2).
    double value = std::exp(group_mu[group] - 0.5 * spec.value_sigma * spec.value_sigma +
                            spec.value_sigma * rng.NextGaussian());
    auto partition = static_cast<size_t>(row % spec.num_partitions);
    partials_[partition].sums[group] += value;
    ++partials_[partition].counts[group];
    total_sums[group] += value;
    ++total_counts[group];
  }

  exact_means_.resize(static_cast<size_t>(spec.num_groups));
  for (size_t g = 0; g < exact_means_.size(); ++g) {
    CEDAR_CHECK_GT(total_counts[g], 0) << "empty group " << g << "; increase rows";
    exact_means_[g] = total_sums[g] / static_cast<double>(total_counts[g]);
  }
}

const GroupPartial& FactTable::PartitionPartial(int partition) const {
  CEDAR_CHECK(partition >= 0 && partition < num_partitions());
  return partials_[static_cast<size_t>(partition)];
}

AnalyticsService::AnalyticsService(const FactTable* table, TreeSpec latency_tree,
                                   AnalyticsServiceConfig config)
    : table_(table), latency_tree_(std::move(latency_tree)), config_(config) {
  CEDAR_CHECK(table_ != nullptr);
  CEDAR_CHECK_EQ(latency_tree_.num_stages(), 2);
  CEDAR_CHECK_EQ(latency_tree_.TotalProcesses(), table_->num_partitions())
      << "latency-tree fanouts must cover every partition";
  CEDAR_CHECK_GT(config_.deadline, 0.0);
  epsilon_ = config_.deadline * config_.grid.epsilon_fraction;
  offline_stack_ = BuildQualityCurveStack(latency_tree_, config_.deadline, config_.grid);
}

AnalyticsOutcome AnalyticsService::RunQuery(const WaitPolicy& policy,
                                            const QueryRealization& realization) const {
  int k1 = latency_tree_.stage(0).fanout;
  int k2 = latency_tree_.stage(1).fanout;
  CEDAR_CHECK_EQ(static_cast<int>(realization.stage_durations[0].size()), k1 * k2);

  std::vector<PiecewiseLinear> query_stack;
  const std::vector<PiecewiseLinear>* stack = &offline_stack_;
  if (config_.per_query_upper_knowledge) {
    TreeSpec truth_tree = realization.truth.OverlayOn(latency_tree_);
    query_stack = BuildQualityCurveStack(truth_tree, config_.deadline, config_.grid);
    stack = &query_stack;
  }

  AggregatorContext ctx;
  ctx.tier = 0;
  ctx.deadline = config_.deadline;
  ctx.fanout = k1;
  ctx.offline_tree = &latency_tree_;
  ctx.upper_quality = &(*stack)[1];
  ctx.epsilon = epsilon_;

  EventQueue queue;
  std::vector<AggregatorNode> nodes(static_cast<size_t>(k2));
  auto empty_partial = [&] {
    GroupPartial partial;
    partial.sums.assign(static_cast<size_t>(table_->num_groups()), 0.0);
    partial.counts.assign(static_cast<size_t>(table_->num_groups()), 0);
    return partial;
  };
  std::vector<GroupPartial> collected(static_cast<size_t>(k2));
  for (auto& partial : collected) {
    partial = empty_partial();
  }

  AnalyticsOutcome outcome;
  GroupPartial root = empty_partial();

  int aggregator_misses = 0;
  auto send_fn = [&](AggregatorNode& node, double weight) {
    auto agg = static_cast<size_t>(node.index());
    double ship = realization.stage_durations[1][agg];
    if (queue.now() + ship <= config_.deadline) {
      root.Accumulate(collected[agg]);
      outcome.partitions_included += static_cast<int>(weight);
    } else {
      ++aggregator_misses;
    }
  };

  for (int a = 0; a < k2; ++a) {
    auto node_policy = policy.Clone();
    node_policy->BeginQuery(ctx, &realization.truth);
    nodes[static_cast<size_t>(a)].Init(0, a, std::move(node_policy), &ctx);
    nodes[static_cast<size_t>(a)].Start(queue, send_fn);
  }

  for (int p = 0; p < k1 * k2; ++p) {
    auto agg = static_cast<size_t>(p / k1);
    double latency = realization.stage_durations[0][static_cast<size_t>(p)];
    queue.Schedule(latency, [&, p, agg] {
      AggregatorNode& node = nodes[agg];
      if (node.closed()) {
        return;
      }
      collected[agg].Accumulate(table_->PartitionPartial(p));
      node.OnChildOutput(queue, 1.0);
    });
  }

  queue.Run();

  const auto& exact = table_->ExactGroupMeans();
  double error_sum = 0.0;
  for (size_t g = 0; g < exact.size(); ++g) {
    if (root.counts[g] > 0) {
      double approx = root.sums[g] / static_cast<double>(root.counts[g]);
      error_sum += std::fabs(approx - exact[g]) / exact[g];
      ++outcome.groups_answered;
    } else {
      error_sum += 1.0;  // unanswered group
    }
  }
  outcome.mean_relative_error = error_sum / static_cast<double>(exact.size());
  outcome.fraction_quality =
      static_cast<double>(outcome.partitions_included) / static_cast<double>(k1 * k2);

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("analytics.queries").Increment();
    registry.GetCounter("analytics.deadline_misses").Increment(aggregator_misses);
    registry.GetHistogram("analytics.mean_relative_error", {1e-6, 10.0, 50})
        .Observe(outcome.mean_relative_error);
    registry.GetHistogram("analytics.fraction_quality", {1e-4, 1.0, 40})
        .Observe(outcome.fraction_quality);
  }
  return outcome;
}

}  // namespace cedar
