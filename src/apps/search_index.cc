#include "src/apps/search_index.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/common/logging.h"

namespace cedar {
namespace {

// Samples a Zipf(exponent)-distributed rank in [0, n) by inverse transform
// over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent) : cumulative_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cumulative_[static_cast<size_t>(i)] = total;
    }
    for (auto& c : cumulative_) {
      c /= total;
    }
  }

  int Sample(Rng& rng) const {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end()) {
      return static_cast<int>(cumulative_.size()) - 1;
    }
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

bool HitLess(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) {
    return a.score > b.score;  // higher scores first
  }
  return a.doc_id < b.doc_id;  // deterministic ties
}

}  // namespace

SearchIndex::SearchIndex(const CorpusSpec& spec, int num_shards) : spec_(spec) {
  CEDAR_CHECK_GE(num_shards, 1);
  CEDAR_CHECK_GE(spec.num_documents, num_shards);
  CEDAR_CHECK_GE(spec.vocabulary_size, 2);
  shards_.resize(static_cast<size_t>(num_shards));
  document_frequency_.assign(static_cast<size_t>(spec.vocabulary_size), 0);

  Rng rng(spec.seed);
  ZipfSampler zipf(spec.vocabulary_size, spec.zipf_exponent);
  // Ordered map: posting lists and document frequencies are insensitive to
  // the iteration order below, but keeping it deterministic is free here
  // (index construction, bounded by terms_per_document).
  std::map<int, int32_t> term_counts;
  for (int64_t doc = 0; doc < spec.num_documents; ++doc) {
    term_counts.clear();
    for (int t = 0; t < spec.terms_per_document; ++t) {
      ++term_counts[zipf.Sample(rng)];
    }
    SearchShard& shard = shards_[static_cast<size_t>(doc % num_shards)];
    auto position = static_cast<int32_t>(shard.doc_ids_.size());
    shard.doc_ids_.push_back(doc);
    for (const auto& [term, tf] : term_counts) {
      shard.postings_[term].emplace_back(position, tf);
      ++document_frequency_[static_cast<size_t>(term)];
    }
  }
}

const SearchShard& SearchIndex::shard(int i) const {
  CEDAR_CHECK(i >= 0 && i < num_shards());
  return shards_[static_cast<size_t>(i)];
}

std::vector<int> SearchIndex::SampleQuery(int terms, Rng& rng) const {
  CEDAR_CHECK_GE(terms, 1);
  CEDAR_CHECK_LE(terms, spec_.vocabulary_size);
  ZipfSampler zipf(spec_.vocabulary_size, spec_.zipf_exponent);
  std::set<int> picked;
  while (static_cast<int>(picked.size()) < terms) {
    picked.insert(zipf.Sample(rng));
  }
  return {picked.begin(), picked.end()};
}

double SearchIndex::Idf(int term) const {
  CEDAR_CHECK(term >= 0 && term < spec_.vocabulary_size);
  double df = static_cast<double>(document_frequency_[static_cast<size_t>(term)]);
  // Smoothed idf; strictly positive even for terms in every document.
  return std::log((static_cast<double>(spec_.num_documents) + 1.0) / (df + 1.0)) + 1e-6;
}

std::vector<SearchHit> SearchIndex::ExactTopK(const std::vector<int>& query, int k) const {
  std::vector<std::vector<SearchHit>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(shard.TopK(query, k, *this));
  }
  return MergeTopK(per_shard, k);
}

std::vector<SearchHit> SearchShard::TopK(const std::vector<int>& query, int k,
                                         const SearchIndex& index) const {
  CEDAR_CHECK_GE(k, 1);
  std::unordered_map<int32_t, double> scores;
  for (int term : query) {
    auto it = postings_.find(term);
    if (it == postings_.end()) {
      continue;
    }
    double idf = index.Idf(term);
    for (const auto& [position, tf] : it->second) {
      scores[position] += static_cast<double>(tf) * idf;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  // HitLess below is a total order (score, then doc_id), so the unordered
  // visit order cannot reach the truncated output.
  for (const auto& [position, score] : scores) {  // cedar-lint: allow(unordered-iter)
    hits.push_back({doc_ids_[static_cast<size_t>(position)], score});
  }
  std::sort(hits.begin(), hits.end(), HitLess);
  if (static_cast<int>(hits.size()) > k) {
    hits.resize(static_cast<size_t>(k));
  }
  return hits;
}

std::vector<SearchHit> MergeTopK(const std::vector<std::vector<SearchHit>>& lists, int k) {
  CEDAR_CHECK_GE(k, 1);
  std::unordered_map<int64_t, double> best;
  for (const auto& list : lists) {
    for (const auto& hit : list) {
      auto [it, inserted] = best.emplace(hit.doc_id, hit.score);
      if (!inserted && hit.score > it->second) {
        it->second = hit.score;
      }
    }
  }
  std::vector<SearchHit> merged;
  merged.reserve(best.size());
  // Total-order sort (HitLess) below; see SearchShard::TopK.
  for (const auto& [doc_id, score] : best) {  // cedar-lint: allow(unordered-iter)
    merged.push_back({doc_id, score});
  }
  std::sort(merged.begin(), merged.end(), HitLess);
  if (static_cast<int>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

double RecallAtK(const std::vector<SearchHit>& exact, const std::vector<SearchHit>& approx) {
  if (exact.empty()) {
    return 1.0;
  }
  std::set<int64_t> approx_ids;
  for (const auto& hit : approx) {
    approx_ids.insert(hit.doc_id);
  }
  int found = 0;
  for (const auto& hit : exact) {
    if (approx_ids.count(hit.doc_id) > 0) {
      ++found;
    }
  }
  return static_cast<double>(found) / static_cast<double>(exact.size());
}

}  // namespace cedar
