// SearchService: end-to-end ranked search over the sharded index under a
// deadline, with policy-driven aggregator waits (Figure 2's silo ->
// aggregator -> super-root flow). Quality is measured two ways per query:
//  * the paper's §3 metric — fraction of shard outputs included;
//  * recall@K of the returned ranking against the exact (no-deadline)
//    top-K — the output-relevance metric of the paper's future work (§7).

#ifndef CEDAR_SRC_APPS_SEARCH_SERVICE_H_
#define CEDAR_SRC_APPS_SEARCH_SERVICE_H_

#include <vector>

#include "src/apps/search_index.h"
#include "src/core/policy.h"
#include "src/core/quality.h"
#include "src/sim/realization.h"

namespace cedar {

struct SearchServiceConfig {
  int top_k = 10;
  double deadline = 0.0;
  QualityGridOptions grid;
  // Same knowledge model as the simulators (see TreeSimulationOptions).
  bool per_query_upper_knowledge = true;
};

struct SearchQueryOutcome {
  // recall@K against the exact full-index ranking.
  double recall = 0.0;
  // The §3 metric: fraction of shard outputs included at the root.
  double fraction_quality = 0.0;
  int shards_included = 0;
  int total_shards = 0;
};

class SearchService {
 public:
  // |latency_tree| supplies the fanouts (stage-0 fanout x stage-1 fanout
  // must equal index->num_shards()) and the offline latency distributions.
  // |index| must outlive the service.
  SearchService(const SearchIndex* index, TreeSpec latency_tree, SearchServiceConfig config);

  // Executes |query| with per-shard/ship latencies from |realization|
  // (sampled on the latency tree's shape) under |policy|.
  SearchQueryOutcome RunQuery(const WaitPolicy& policy, const std::vector<int>& query,
                              const QueryRealization& realization) const;

  const TreeSpec& latency_tree() const { return latency_tree_; }

 private:
  const SearchIndex* index_;
  TreeSpec latency_tree_;
  SearchServiceConfig config_;
  double epsilon_;
  std::vector<PiecewiseLinear> offline_stack_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_APPS_SEARCH_SERVICE_H_
