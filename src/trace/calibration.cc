#include "src/trace/calibration.h"

#include <cmath>

namespace cedar {

double EffectiveMarginalSigma(double sigma0, double mu_spread, double sigma_spread) {
  // ln X = mu_q + sigma_q Z with mu_q ~ N(mu0, mu_spread^2). For fixed
  // sigma the marginal is exactly N(mu0, sigma0^2 + mu_spread^2); the
  // sigma_q jitter adds its variance to second order.
  return std::sqrt(sigma0 * sigma0 + mu_spread * mu_spread + sigma_spread * sigma_spread);
}

}  // namespace cedar
