#include "src/trace/workloads.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/stats/mixture.h"
#include "src/trace/calibration.h"

namespace cedar {

MetaLogNormalWorkload::MetaLogNormalWorkload(std::string name, std::string unit,
                                             std::vector<MetaLogNormalStage> stages,
                                             SharedScaleSpec shared_scale)
    : name_(std::move(name)),
      unit_(std::move(unit)),
      stages_(std::move(stages)),
      shared_scale_(shared_scale) {
  CEDAR_CHECK_GE(stages_.size(), 2u);
  CEDAR_CHECK(shared_scale_.tail_rate == 0.0 || shared_scale_.tail_rate > 1.0)
      << "shared-scale tail rate must be > 1 for a finite marginal mean";
  for (const auto& stage : stages_) {
    CEDAR_CHECK_GT(stage.sigma, 0.0);
    CEDAR_CHECK_GE(stage.fanout, 1);
  }
}

TreeSpec MetaLogNormalWorkload::OfflineTree() const {
  std::vector<StageSpec> specs;
  specs.reserve(stages_.size());
  for (const auto& stage_in : stages_) {
    // Fold the shared scale into the per-stage meta-parameters: the
    // marginal of a stage is the same whether the location spread/tail is
    // stage-local or shared.
    MetaLogNormalStage stage = stage_in;
    stage.mu_spread = std::sqrt(stage.mu_spread * stage.mu_spread +
                                shared_scale_.spread * shared_scale_.spread);
    if (shared_scale_.tail_rate > 1.0) {
      CEDAR_CHECK(stage.mu_tail_rate == 0.0)
          << "combining per-stage and shared exponential tails is not supported";
      stage.mu_tail_rate = shared_scale_.tail_rate;
    }
    double marginal_sigma =
        EffectiveMarginalSigma(stage.sigma, stage.mu_spread, stage.sigma_spread);
    double marginal_mu = stage.mu;
    if (stage.mu_tail_rate > 1.0) {
      // With the exponential tail the marginal has median ~ e^{mu + ln2/rate}
      // and mean e^{mu + spread^2/2} * rate/(rate-1) * e^{sigma_eff^2/2}
      // (MGF of the exponential at 1). Fit the offline log-normal by
      // matching those two moments — mean is what Proportional-split uses,
      // median anchors the shape.
      double rate = stage.mu_tail_rate;
      double log_mean = stage.mu + 0.5 * stage.mu_spread * stage.mu_spread +
                        std::log(rate / (rate - 1.0)) +
                        0.5 * marginal_sigma * marginal_sigma;
      marginal_mu = stage.mu + std::log(2.0) / rate;  // median of the marginal
      marginal_sigma = std::sqrt(std::max(0.01, 2.0 * (log_mean - marginal_mu)));
    }
    specs.emplace_back(std::make_shared<LogNormalDistribution>(marginal_mu, marginal_sigma),
                       stage.fanout);
  }
  return TreeSpec(std::move(specs));
}

QueryTruth MetaLogNormalWorkload::DrawQuery(Rng& rng) const {
  QueryTruth truth;
  truth.stage_durations.reserve(stages_.size());
  double shared_shift = shared_scale_.spread * rng.NextGaussian();
  if (shared_scale_.tail_rate > 1.0) {
    shared_shift += -std::log(rng.NextOpenDouble()) / shared_scale_.tail_rate;
  }
  for (const auto& stage : stages_) {
    double mu_q = stage.mu + shared_shift + stage.mu_spread * rng.NextGaussian();
    if (stage.mu_tail_rate > 1.0) {
      mu_q += -std::log(rng.NextOpenDouble()) / stage.mu_tail_rate;
    }
    double sigma_q =
        std::max(stage.min_sigma, stage.sigma + stage.sigma_spread * rng.NextGaussian());
    truth.stage_durations.push_back(std::make_shared<LogNormalDistribution>(mu_q, sigma_q));
  }
  return truth;
}

MetaLogNormalWorkload MakeFacebookWorkload(int k1, int k2) {
  MetaLogNormalStage map_stage;
  map_stage.mu = kFacebookJobMapMu;
  map_stage.sigma = kFacebookMapSigma;
  map_stage.mu_spread = kFacebookMapMuSpread;
  map_stage.sigma_spread = kFacebookMapSigmaSpread;
  map_stage.mu_tail_rate = kFacebookMapTailRate;
  map_stage.fanout = k1;

  MetaLogNormalStage reduce_stage;
  reduce_stage.mu = kFacebookJobReduceMu;
  reduce_stage.sigma = kFacebookReduceSigma;
  reduce_stage.mu_spread = kFacebookReduceMuSpread;
  reduce_stage.sigma_spread = kFacebookReduceSigmaSpread;
  reduce_stage.fanout = k2;

  return MetaLogNormalWorkload("facebook-mr", "s", {map_stage, reduce_stage});
}

MetaLogNormalWorkload MakeFacebookThreeLevelWorkload(int k1, int k2, int k3) {
  MetaLogNormalWorkload two_level = MakeFacebookWorkload(k1, k2);
  auto stages = two_level.stages();
  MetaLogNormalStage top = stages[1];
  top.fanout = k3;
  stages.push_back(top);
  return MetaLogNormalWorkload("facebook-mr-3level", "s", std::move(stages));
}

MetaLogNormalWorkload MakeInteractiveWorkload(int k1, int k2) {
  // Facebook's map distribution "expressed in ms": same log-normal shape,
  // read in milliseconds, with the production job mix's right-skewed scale
  // spread (a softer tail than the Hadoop replay: interactive backends are
  // better provisioned). [chosen]
  MetaLogNormalStage bottom;
  bottom.mu = kFacebookMapMu;
  bottom.sigma = kFacebookMapSigma;
  bottom.mu_spread = 0.50;
  bottom.sigma_spread = 0.10;
  bottom.mu_tail_rate = 1.20;
  bottom.fanout = k1;

  // Google's distribution, already in ms; upper stages show little
  // variation across queries (§4.1).
  MetaLogNormalStage top;
  top.mu = kGoogleMu;
  top.sigma = kGoogleSigma;
  top.mu_spread = 0.05;
  top.sigma_spread = 0.02;
  top.fanout = k2;

  return MetaLogNormalWorkload("interactive-fb+google", "ms", {bottom, top});
}

StationaryWorkload MakeCosmosWorkload(int k1, int k2) {
  TreeSpec tree = TreeSpec::TwoLevel(
      std::make_shared<LogNormalDistribution>(kCosmosExtractMu, kCosmosExtractSigma), k1,
      std::make_shared<LogNormalDistribution>(kCosmosFullAggMu, kCosmosFullAggSigma), k2);
  return StationaryWorkload("cosmos", "s", std::move(tree));
}

namespace {

MetaLogNormalWorkload MakeSigmaSweepWorkload(const std::string& name, double mu, double sigma2,
                                             double sigma1, int k1, int k2) {
  // X1 shares the trace's mu but uses the swept sigma1; X2 is the trace's
  // published fit. Mild per-query mu jitter keeps online learning relevant
  // without dominating the sweep. [chosen]
  MetaLogNormalStage bottom;
  bottom.mu = mu;
  bottom.sigma = sigma1;
  bottom.mu_spread = 0.30;
  bottom.sigma_spread = 0.05;
  bottom.fanout = k1;

  MetaLogNormalStage top;
  top.mu = mu;
  top.sigma = sigma2;
  top.mu_spread = 0.05;
  top.sigma_spread = 0.02;
  top.fanout = k2;

  return MetaLogNormalWorkload(name, "trace-units", {bottom, top});
}

}  // namespace

MetaLogNormalWorkload MakeBingSigmaWorkload(double sigma1, int k1, int k2) {
  return MakeSigmaSweepWorkload("bing-bing", kBingMu, kBingSigma, sigma1, k1, k2);
}

MetaLogNormalWorkload MakeGoogleSigmaWorkload(double sigma1, int k1, int k2) {
  return MakeSigmaSweepWorkload("google-google", kGoogleMu, kGoogleSigma, sigma1, k1, k2);
}

MetaLogNormalWorkload MakeFacebookSigmaWorkload(double sigma1, int k1, int k2) {
  return MakeSigmaSweepWorkload("facebook-facebook", kFacebookMapMu, kFacebookMapSigma, sigma1,
                                k1, k2);
}

GaussianWorkload::GaussianWorkload(int k1, int k2, double mean_spread)
    : k1_(k1), k2_(k2), mean_spread_(mean_spread) {
  CEDAR_CHECK_GE(k1, 1);
  CEDAR_CHECK_GE(k2, 1);
}

TreeSpec GaussianWorkload::OfflineTree() const {
  // The marginal of Normal(mean_q, sd) with mean_q ~ N(m, s^2) is
  // Normal(m, sqrt(sd^2 + s^2)).
  double bottom_sd = std::sqrt(kGaussianBottomSd * kGaussianBottomSd +
                               mean_spread_ * mean_spread_);
  return TreeSpec::TwoLevel(std::make_shared<NormalDistribution>(kGaussianMeanMs, bottom_sd),
                            k1_,
                            std::make_shared<NormalDistribution>(kGaussianMeanMs, kGaussianTopSd),
                            k2_);
}

QueryTruth GaussianWorkload::DrawQuery(Rng& rng) const {
  QueryTruth truth;
  double mean_q = kGaussianMeanMs + mean_spread_ * rng.NextGaussian();
  // Keep the per-query mean physically sensible (> 0).
  mean_q = std::max(1.0, mean_q);
  truth.stage_durations.push_back(
      std::make_shared<NormalDistribution>(mean_q, kGaussianBottomSd));
  truth.stage_durations.push_back(
      std::make_shared<NormalDistribution>(kGaussianMeanMs, kGaussianTopSd));
  return truth;
}

StragglerWorkload::StragglerWorkload(Options options) : options_(options) {
  CEDAR_CHECK(options_.straggler_fraction > 0.0 && options_.straggler_fraction < 1.0);
  CEDAR_CHECK_GT(options_.straggler_slowdown, 1.0);
}

TreeSpec StragglerWorkload::OfflineTree() const {
  // The offline view is the marginal mixture at the across-query center:
  // what a global fit over history would approximately capture.
  auto body = std::make_shared<LogNormalDistribution>(
      options_.body_mu,
      EffectiveMarginalSigma(options_.body_sigma, options_.mu_spread, 0.0));
  auto straggler = std::make_shared<LogNormalDistribution>(
      options_.body_mu + std::log(options_.straggler_slowdown),
      EffectiveMarginalSigma(options_.straggler_sigma, options_.mu_spread, 0.0));
  auto bottom = std::make_shared<MixtureDistribution>(MixtureDistribution::WithStragglerMode(
      std::move(body), std::move(straggler), options_.straggler_fraction));
  auto upper = std::make_shared<LogNormalDistribution>(
      options_.upper_mu,
      EffectiveMarginalSigma(options_.upper_sigma, options_.upper_mu_spread, 0.0));
  return TreeSpec::TwoLevel(std::move(bottom), options_.k1, std::move(upper), options_.k2);
}

QueryTruth StragglerWorkload::DrawQuery(Rng& rng) const {
  double mu_q = options_.body_mu + options_.mu_spread * rng.NextGaussian();
  auto body = std::make_shared<LogNormalDistribution>(mu_q, options_.body_sigma);
  auto straggler = std::make_shared<LogNormalDistribution>(
      mu_q + std::log(options_.straggler_slowdown), options_.straggler_sigma);
  auto bottom = std::make_shared<MixtureDistribution>(MixtureDistribution::WithStragglerMode(
      std::move(body), std::move(straggler), options_.straggler_fraction));
  double upper_mu_q = options_.upper_mu + options_.upper_mu_spread * rng.NextGaussian();
  QueryTruth truth;
  truth.stage_durations.push_back(std::move(bottom));
  truth.stage_durations.push_back(
      std::make_shared<LogNormalDistribution>(upper_mu_q, options_.upper_sigma));
  return truth;
}

MismatchedOfflineWorkload::MismatchedOfflineWorkload(std::shared_ptr<const Workload> actual,
                                                     TreeSpec stale_offline_tree)
    : actual_(std::move(actual)), stale_tree_(std::move(stale_offline_tree)) {
  CEDAR_CHECK(actual_ != nullptr);
}

std::vector<std::string> KnownWorkloadNames() {
  return {"facebook",  "facebook-3level",  "interactive",
          "cosmos",    "gaussian",         "straggler",
          "bing-sigma:<s1>", "google-sigma:<s1>", "facebook-sigma:<s1>"};
}

std::unique_ptr<Workload> MakeWorkloadByName(const std::string& name, int k1, int k2) {
  if (name == "facebook") {
    return std::make_unique<MetaLogNormalWorkload>(MakeFacebookWorkload(k1, k2));
  }
  if (name == "facebook-3level") {
    return std::make_unique<MetaLogNormalWorkload>(MakeFacebookThreeLevelWorkload(k1, k2, k2));
  }
  if (name == "interactive") {
    return std::make_unique<MetaLogNormalWorkload>(MakeInteractiveWorkload(k1, k2));
  }
  if (name == "cosmos") {
    return std::make_unique<StationaryWorkload>(MakeCosmosWorkload(k1, k2));
  }
  if (name == "gaussian") {
    return std::make_unique<GaussianWorkload>(k1, k2);
  }
  if (name == "straggler") {
    StragglerWorkload::Options options;
    options.k1 = k1;
    options.k2 = k2;
    return std::make_unique<StragglerWorkload>(options);
  }
  auto parse_param = [&](const char* prefix) -> double {
    std::string value = name.substr(std::string(prefix).size());
    char* end = nullptr;
    double sigma1 = std::strtod(value.c_str(), &end);
    CEDAR_CHECK(end != value.c_str() && *end == '\0' && sigma1 > 0.0)
        << "bad sigma parameter in workload name: " << name;
    return sigma1;
  };
  if (name.rfind("bing-sigma:", 0) == 0) {
    return std::make_unique<MetaLogNormalWorkload>(
        MakeBingSigmaWorkload(parse_param("bing-sigma:"), k1, k2));
  }
  if (name.rfind("google-sigma:", 0) == 0) {
    return std::make_unique<MetaLogNormalWorkload>(
        MakeGoogleSigmaWorkload(parse_param("google-sigma:"), k1, k2));
  }
  if (name.rfind("facebook-sigma:", 0) == 0) {
    return std::make_unique<MetaLogNormalWorkload>(
        MakeFacebookSigmaWorkload(parse_param("facebook-sigma:"), k1, k2));
  }
  std::string known;
  for (const auto& known_name : KnownWorkloadNames()) {
    known += " " + known_name;
  }
  CEDAR_LOG(FATAL) << "unknown workload '" << name << "'; known:" << known;
  __builtin_unreachable();
}

}  // namespace cedar
