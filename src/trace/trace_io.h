// Trace persistence: query sets (per-query stage distribution parameters)
// and raw task-duration traces as CSV, plus a replay workload that serves a
// loaded query set in order. This is the substitute for the paper's
// replaying of production job traces.

#ifndef CEDAR_SRC_TRACE_TRACE_IO_H_
#define CEDAR_SRC_TRACE_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/workload.h"
#include "src/stats/distribution.h"

namespace cedar {

// One recorded query: the true DistributionSpec of every stage.
struct QueryRecord {
  std::vector<DistributionSpec> stages;
};

// A materialized trace: fixed fanouts plus per-query records. unit/name are
// carried for reporting.
struct QueryTrace {
  std::string name;
  std::string unit;
  std::vector<int> fanouts;
  std::vector<QueryRecord> queries;
};

// Draws |num_queries| queries from |workload| into a trace (fanouts taken
// from the workload's offline tree).
QueryTrace MaterializeTrace(const Workload& workload, int num_queries, uint64_t seed);

// CSV round-trip. Columns: query, stage, family, p1, p2 (+ header comment
// row carrying name/unit/fanouts).
void SaveQueryTrace(const QueryTrace& trace, const std::string& path);
QueryTrace LoadQueryTrace(const std::string& path);

// Serves the recorded queries in order, cycling when exhausted. OfflineTree
// reports the distributions fitted over ALL recorded queries' samples —
// what a production system would have learned from its history.
class ReplayWorkload final : public Workload {
 public:
  explicit ReplayWorkload(QueryTrace trace);

  std::string name() const override { return trace_.name + "+replay"; }
  std::string time_unit() const override { return trace_.unit; }
  TreeSpec OfflineTree() const override;
  // Serial convenience entry point: advances an internal cursor (not
  // thread-safe). Parallel drivers use DrawQueryAt, which is stateless.
  QueryTruth DrawQuery(Rng& rng) const override;
  QueryTruth DrawQueryAt(uint64_t index, Rng& rng) const override;

  const QueryTrace& trace() const { return trace_; }

 private:
  QueryTrace trace_;
  TreeSpec offline_tree_;
  mutable size_t next_query_ = 0;
};

}  // namespace cedar

#endif  // CEDAR_SRC_TRACE_TRACE_IO_H_
