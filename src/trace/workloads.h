// Concrete workloads modelling the paper's production traces (see
// calibration.h for constants and DESIGN.md for the substitution rationale).

#ifndef CEDAR_SRC_TRACE_WORKLOADS_H_
#define CEDAR_SRC_TRACE_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/workload.h"

namespace cedar {

// One stage of a meta-log-normal workload: per query, mu_q ~ N(mu,
// mu_spread^2) and sigma_q ~ N(sigma, sigma_spread^2) clamped to
// [min_sigma, inf); task durations within the query are i.i.d.
// LogNormal(mu_q, sigma_q). The offline/global view of the stage is the
// marginal fit LogNormal(mu, EffectiveMarginalSigma(...)).
struct MetaLogNormalStage {
  double mu = 0.0;
  double sigma = 1.0;
  double mu_spread = 0.0;
  double sigma_spread = 0.0;
  // Right-skew of the job-scale distribution: when > 1, an Exponential(rate)
  // shift is added to mu_q, modelling the production mix of many moderate
  // jobs plus a heavy tail of much larger ones. The tail inflates the
  // *global mean* the Proportional-split baseline divides the deadline by,
  // while leaving the median job unchanged — exactly the "single
  // distribution misses query-specific variation" failure of §3.2. Must be
  // > 1 for the marginal mean to exist; 0 disables the tail.
  double mu_tail_rate = 0.0;
  double min_sigma = 0.10;
  int fanout = 50;
};

// A per-query scale factor shared by ALL stages: one job is uniformly
// bigger or smaller than another (maps and reduces scale together, as in
// real analytics jobs). The shift s_q ~ N(0, spread^2) + Exp(tail_rate) is
// added to every stage's mu_q. This is what defeats fixed-fraction
// baselines: Proportional-split's fraction stays roughly right, but its
// absolute reserve for the upper stages is scaled for the *global* job mix,
// not for this query's scale.
struct SharedScaleSpec {
  double spread = 0.0;
  double tail_rate = 0.0;  // 0 disables the exponential tail; else must be > 1
};

// General per-query-varying log-normal workload; all the production
// workloads below are instances of it.
class MetaLogNormalWorkload : public Workload {
 public:
  MetaLogNormalWorkload(std::string name, std::string unit,
                        std::vector<MetaLogNormalStage> stages,
                        SharedScaleSpec shared_scale = {});

  std::string name() const override { return name_; }
  std::string time_unit() const override { return unit_; }
  TreeSpec OfflineTree() const override;
  QueryTruth DrawQuery(Rng& rng) const override;

  const std::vector<MetaLogNormalStage>& stages() const { return stages_; }

  const SharedScaleSpec& shared_scale() const { return shared_scale_; }

 private:
  std::string name_;
  std::string unit_;
  std::vector<MetaLogNormalStage> stages_;
  SharedScaleSpec shared_scale_;
};

// Facebook Hadoop replay: map stage (X1) + reduce stage (X2), seconds,
// strong per-query variation. The primary workload of §5.
MetaLogNormalWorkload MakeFacebookWorkload(int k1 = 50, int k2 = 50);

// Three-level Facebook tree (Figure 13): map bottom, reduce for both upper
// stages.
MetaLogNormalWorkload MakeFacebookThreeLevelWorkload(int k1 = 50, int k2 = 50, int k3 = 50);

// Interactive workload of §5.6 / Figure 14: Facebook map distribution
// re-expressed in milliseconds at the bottom, Google's distribution on top.
MetaLogNormalWorkload MakeInteractiveWorkload(int k1 = 50, int k2 = 50);

// Cosmos (Figure 15): stationary — only per-phase statistics exist, so
// every query shares the global distributions and online learning is
// "not in play".
StationaryWorkload MakeCosmosWorkload(int k1 = 50, int k2 = 50);

// Same-distribution-at-both-stages workloads for the Figure 16 sigma
// sweeps: X2 fixed at the trace's published fit; X1 shares mu but uses
// |sigma1| (the x-axis of Figure 16), with mild per-query mu jitter.
MetaLogNormalWorkload MakeBingSigmaWorkload(double sigma1, int k1 = 50, int k2 = 50);
MetaLogNormalWorkload MakeGoogleSigmaWorkload(double sigma1, int k1 = 50, int k2 = 50);
MetaLogNormalWorkload MakeFacebookSigmaWorkload(double sigma1, int k1 = 50, int k2 = 50);

// Gaussian workload of Figure 17: Normal(40, 80) bottom, Normal(40, 10)
// top, milliseconds, with mild per-query mean jitter at the bottom.
class GaussianWorkload final : public Workload {
 public:
  GaussianWorkload(int k1 = 50, int k2 = 50, double mean_spread = 6.0);

  std::string name() const override { return "gaussian"; }
  std::string time_unit() const override { return "ms"; }
  TreeSpec OfflineTree() const override;
  QueryTruth DrawQuery(Rng& rng) const override;

 private:
  int k1_;
  int k2_;
  double mean_spread_;
};

// Straggler workload: within each query, task durations are bimodal — a
// main body plus a straggler mode several times slower (the systemic
// contentions of §2.2). Cedar's learner still fits a log-normal, so this
// exercises robustness to distribution-type mismatch; the straggler mass
// sits beyond the useful wait range, which is why the paper argues the
// imperfect extreme-tail fit does not hurt (§4.2.1).
class StragglerWorkload final : public Workload {
 public:
  struct Options {
    double body_mu = 3.6;           // per-query body center (log scale)
    double body_sigma = 0.45;
    double mu_spread = 0.5;         // across-query location spread
    double straggler_fraction = 0.08;
    double straggler_slowdown = 8.0;  // straggler mode is this much slower
    double straggler_sigma = 0.7;
    int k1 = 50;
    int k2 = 50;
    // Upper stage: same reduce model as the Facebook workload.
    double upper_mu = 4.3;
    double upper_sigma = 0.95;
    double upper_mu_spread = 0.3;
  };

  StragglerWorkload() : StragglerWorkload(Options()) {}
  explicit StragglerWorkload(Options options);

  std::string name() const override { return "straggler-bimodal"; }
  std::string time_unit() const override { return "s"; }
  TreeSpec OfflineTree() const override;
  QueryTruth DrawQuery(Rng& rng) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

// Wraps another workload but reports a stale offline tree: the load-shift
// scenario of Figure 11, where the system's offline knowledge was learned
// before the load changed.
class MismatchedOfflineWorkload final : public Workload {
 public:
  MismatchedOfflineWorkload(std::shared_ptr<const Workload> actual, TreeSpec stale_offline_tree);

  std::string name() const override { return actual_->name() + "+stale-offline"; }
  std::string time_unit() const override { return actual_->time_unit(); }
  TreeSpec OfflineTree() const override { return stale_tree_; }
  QueryTruth DrawQuery(Rng& rng) const override { return actual_->DrawQuery(rng); }

 private:
  std::shared_ptr<const Workload> actual_;
  TreeSpec stale_tree_;
};

// Builds a workload by name for the CLI tools:
//   "facebook", "facebook-3level", "interactive", "cosmos", "gaussian",
//   "straggler", "bing-sigma:<s1>", "google-sigma:<s1>", "facebook-sigma:<s1>".
// Fatal on unknown names (listing the known ones).
std::unique_ptr<Workload> MakeWorkloadByName(const std::string& name, int k1 = 50, int k2 = 50);

// All constructible names (parameterized forms shown with a placeholder).
std::vector<std::string> KnownWorkloadNames();

}  // namespace cedar

#endif  // CEDAR_SRC_TRACE_WORKLOADS_H_
