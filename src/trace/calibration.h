// Calibration constants for the production-trace substitutes.
//
// The paper publishes log-normal fits for three of its four traces and
// qualitative statistics for the rest. Constants marked [paper] are taken
// verbatim from the paper; constants marked [chosen] are our substitution
// choices, documented in DESIGN.md §2, selected to reproduce the described
// qualitative regime (magnitude ordering, variation ratios, deadline
// ranges).

#ifndef CEDAR_SRC_TRACE_CALIBRATION_H_
#define CEDAR_SRC_TRACE_CALIBRATION_H_

namespace cedar {

// ----------------------------------------------------------------- Facebook
// Hadoop cluster, task durations in SECONDS. Map-task fit published in
// Figure 9's caption. Reduce parameters chosen so aggregator work is of the
// same order but longer on average, as in MapReduce practice.
// Reference per-query map-task fit, published in Figure 9's caption.
inline constexpr double kFacebookMapMu = 2.77;     // [paper]
inline constexpr double kFacebookMapSigma = 0.84;  // [paper]

// Across-job meta-distribution for the replay workload. The paper prunes
// the trace to jobs with > 2500 map tasks — large jobs whose stage scales
// are commensurate with its 500-3000 s deadline axis — and reports task
// durations varying by ~1600x across the trace. The job-level location
// centers and spreads below reproduce that regime: a typical job's map fit
// has the published sigma, job means span roughly e^{4*1.3} ~ 180x, and the
// overall duration range exceeds 1000x. [chosen]
inline constexpr double kFacebookJobMapMu = 5.00;
inline constexpr double kFacebookJobReduceMu = 4.30;
inline constexpr double kFacebookReduceSigma = 0.95;  // [chosen]
inline constexpr double kFacebookMapMuSpread = 0.50;
inline constexpr double kFacebookMapSigmaSpread = 0.15;
// Right-skew of map-stage job scales: most jobs are moderate, a heavy tail
// is much larger (see MetaLogNormalStage::mu_tail_rate). This inflates the
// global mean Proportional-split divides by, reproducing §3.2's failure
// mode. [chosen]
inline constexpr double kFacebookMapTailRate = 1.15;
// Reduce durations also vary strongly across jobs in the trace; unlike the
// map stage, their per-job distribution is treated as offline-profiled
// knowledge (standard aggregation operators, §4.1), not learned online.
// [chosen]
inline constexpr double kFacebookReduceMuSpread = 0.40;
inline constexpr double kFacebookReduceSigmaSpread = 0.12;

// ------------------------------------------------------------------- Google
// Search cluster, durations in MILLISECONDS (median 19 ms, p99 > 65 ms).
inline constexpr double kGoogleMu = 2.94;     // [paper]
inline constexpr double kGoogleSigma = 0.55;  // [paper]

// --------------------------------------------------------------------- Bing
// RTTs in MICROSECONDS (median 330 us, p90 1.1 ms, p99 14 ms).
inline constexpr double kBingMu = 5.9;      // [paper]
inline constexpr double kBingSigma = 1.25;  // [paper]
// Published percentiles of Figure 4, for fitting demonstrations.
inline constexpr double kBingMedianUs = 330.0;  // [paper]
inline constexpr double kBingP90Us = 1100.0;    // [paper]
inline constexpr double kBingP99Us = 14000.0;   // [paper]

// ------------------------------------------------------------------- Cosmos
// Analytics cluster, SECONDS. Only per-phase statistics were available to
// the authors (no per-job durations, §5.6), so the workload is stationary;
// parameters chosen for variation larger than Google's, comparable to
// Facebook's. [chosen]
inline constexpr double kCosmosExtractMu = 3.0;
inline constexpr double kCosmosExtractSigma = 1.60;
inline constexpr double kCosmosFullAggMu = 1.8;
inline constexpr double kCosmosFullAggSigma = 0.50;

// ------------------------------------------------------------- Figure 17
// Gaussian experiment, MILLISECONDS: mean 40 at both levels, sd 80 bottom /
// 10 top. [paper]
inline constexpr double kGaussianMeanMs = 40.0;
inline constexpr double kGaussianBottomSd = 80.0;
inline constexpr double kGaussianTopSd = 10.0;

// Default fanout used throughout the evaluation (from Bing's cluster). [paper]
inline constexpr int kDefaultFanout = 50;

// The effective sigma of the across-query marginal of a log-normal mixture
// whose per-query mu is N(mu0, mu_spread) and sigma is ~sigma0: what a
// global offline fit over completed queries would learn.
double EffectiveMarginalSigma(double sigma0, double mu_spread, double sigma_spread);

}  // namespace cedar

#endif  // CEDAR_SRC_TRACE_CALIBRATION_H_
