#include "src/trace/trace_io.h"

#include <cmath>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace cedar {

QueryTrace MaterializeTrace(const Workload& workload, int num_queries, uint64_t seed) {
  CEDAR_CHECK_GT(num_queries, 0);
  QueryTrace trace;
  trace.name = workload.name();
  trace.unit = workload.time_unit();
  TreeSpec offline = workload.OfflineTree();
  for (const auto& stage : offline.stages()) {
    trace.fanouts.push_back(stage.fanout);
  }
  Rng rng(seed);
  trace.queries.reserve(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    QueryTruth truth = workload.DrawQuery(rng);
    QueryRecord record;
    for (const auto& dist : truth.stage_durations) {
      DistributionSpec spec;
      spec.family = dist->family();
      switch (dist->family()) {
        case DistributionFamily::kLogNormal: {
          const auto* ln = static_cast<const LogNormalDistribution*>(dist.get());
          spec.p1 = ln->mu();
          spec.p2 = ln->sigma();
          break;
        }
        case DistributionFamily::kNormal:
          spec.p1 = dist->Mean();
          spec.p2 = dist->StdDev();
          break;
        case DistributionFamily::kExponential:
          spec.p1 = 1.0 / dist->Mean();
          spec.p2 = 0.0;
          break;
        default:
          CEDAR_LOG(FATAL) << "MaterializeTrace: unsupported stage family "
                           << DistributionFamilyName(dist->family());
      }
      record.stages.push_back(spec);
    }
    trace.queries.push_back(std::move(record));
  }
  return trace;
}

void SaveQueryTrace(const QueryTrace& trace, const std::string& path) {
  CsvWriter writer(path);
  writer.Header({"name", "unit", "fanouts", "query", "stage", "family", "p1", "p2"});
  std::ostringstream fanouts;
  for (size_t i = 0; i < trace.fanouts.size(); ++i) {
    if (i != 0) {
      fanouts << '|';
    }
    fanouts << trace.fanouts[i];
  }
  for (size_t q = 0; q < trace.queries.size(); ++q) {
    const auto& record = trace.queries[q];
    for (size_t s = 0; s < record.stages.size(); ++s) {
      const auto& spec = record.stages[s];
      std::ostringstream p1;
      std::ostringstream p2;
      p1.precision(17);
      p2.precision(17);
      p1 << spec.p1;
      p2 << spec.p2;
      writer.Row({trace.name, trace.unit, fanouts.str(), std::to_string(q), std::to_string(s),
                  DistributionFamilyName(spec.family), p1.str(), p2.str()});
    }
  }
}

QueryTrace LoadQueryTrace(const std::string& path) {
  CsvDocument doc = ReadCsvFile(path);
  QueryTrace trace;
  int name_col = doc.ColumnIndex("name");
  int unit_col = doc.ColumnIndex("unit");
  int fanouts_col = doc.ColumnIndex("fanouts");
  int query_col = doc.ColumnIndex("query");
  int stage_col = doc.ColumnIndex("stage");
  int family_col = doc.ColumnIndex("family");
  int p1_col = doc.ColumnIndex("p1");
  int p2_col = doc.ColumnIndex("p2");
  CEDAR_CHECK(name_col >= 0 && unit_col >= 0 && fanouts_col >= 0 && query_col >= 0 &&
              stage_col >= 0 && family_col >= 0 && p1_col >= 0 && p2_col >= 0)
      << "malformed trace CSV: " << path;
  CEDAR_CHECK(!doc.rows.empty()) << "empty trace: " << path;

  trace.name = doc.rows[0][static_cast<size_t>(name_col)];
  trace.unit = doc.rows[0][static_cast<size_t>(unit_col)];
  {
    const std::string& field = doc.rows[0][static_cast<size_t>(fanouts_col)];
    std::string token;
    std::istringstream in(field);
    while (std::getline(in, token, '|')) {
      trace.fanouts.push_back(std::stoi(token));
    }
  }
  for (const auto& row : doc.rows) {
    auto q = static_cast<size_t>(std::stoul(row[static_cast<size_t>(query_col)]));
    auto s = static_cast<size_t>(std::stoul(row[static_cast<size_t>(stage_col)]));
    if (trace.queries.size() <= q) {
      trace.queries.resize(q + 1);
    }
    auto& record = trace.queries[q];
    if (record.stages.size() <= s) {
      record.stages.resize(s + 1);
    }
    DistributionSpec spec;
    spec.family = DistributionFamilyFromName(row[static_cast<size_t>(family_col)]);
    spec.p1 = std::stod(row[static_cast<size_t>(p1_col)]);
    spec.p2 = std::stod(row[static_cast<size_t>(p2_col)]);
    record.stages[s] = spec;
  }
  for (const auto& record : trace.queries) {
    CEDAR_CHECK_EQ(record.stages.size(), trace.fanouts.size()) << "ragged trace: " << path;
  }
  return trace;
}

namespace {

// Fits one global spec per stage over all recorded queries: the marginal a
// production system would learn from its history. Exact moment matching for
// the location-scale families; other families fall back to the first
// record.
DistributionSpec GlobalStageFit(const QueryTrace& trace, size_t stage) {
  const DistributionSpec& first = trace.queries[0].stages[stage];
  for (const auto& record : trace.queries) {
    if (record.stages[stage].family != first.family) {
      return first;  // mixed families: no meaningful global fit
    }
  }
  if (first.family != DistributionFamily::kLogNormal &&
      first.family != DistributionFamily::kNormal) {
    return first;
  }
  // Location mixes as E[p1]; squared scale as E[p2^2] + Var(p1).
  double sum_loc = 0.0;
  double sum_loc_sq = 0.0;
  double sum_scale_sq = 0.0;
  auto n = static_cast<double>(trace.queries.size());
  for (const auto& record : trace.queries) {
    const auto& spec = record.stages[stage];
    sum_loc += spec.p1;
    sum_loc_sq += spec.p1 * spec.p1;
    sum_scale_sq += spec.p2 * spec.p2;
  }
  double mean_loc = sum_loc / n;
  double var_loc = std::max(0.0, sum_loc_sq / n - mean_loc * mean_loc);
  DistributionSpec global;
  global.family = first.family;
  global.p1 = mean_loc;
  global.p2 = std::sqrt(sum_scale_sq / n + var_loc);
  return global;
}

}  // namespace

ReplayWorkload::ReplayWorkload(QueryTrace trace) : trace_(std::move(trace)) {
  CEDAR_CHECK(!trace_.queries.empty());
  CEDAR_CHECK(!trace_.fanouts.empty());
  std::vector<StageSpec> stages;
  for (size_t s = 0; s < trace_.fanouts.size(); ++s) {
    DistributionSpec global = GlobalStageFit(trace_, s);
    stages.emplace_back(std::shared_ptr<const Distribution>(MakeDistribution(global)),
                        trace_.fanouts[s]);
  }
  offline_tree_ = TreeSpec(std::move(stages));
}

TreeSpec ReplayWorkload::OfflineTree() const { return offline_tree_; }

QueryTruth ReplayWorkload::DrawQuery(Rng& rng) const {
  QueryTruth truth = DrawQueryAt(next_query_, rng);
  next_query_ = (next_query_ + 1) % trace_.queries.size();
  return truth;
}

QueryTruth ReplayWorkload::DrawQueryAt(uint64_t index, Rng& rng) const {
  (void)rng;
  const QueryRecord& record = trace_.queries[index % trace_.queries.size()];
  QueryTruth truth;
  for (const auto& spec : record.stages) {
    truth.stage_durations.push_back(std::shared_ptr<const Distribution>(MakeDistribution(spec)));
  }
  return truth;
}

}  // namespace cedar
