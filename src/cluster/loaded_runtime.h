// LoadedClusterRuntime: many concurrent queries sharing one slot pool.
//
// Queries arrive as a Poisson process and contend for the cluster's slots;
// tasks are started FIFO across queries. Each query gets its own
// aggregation tree (with its arrival time as its time origin) and its own
// relative deadline. This extends the paper's one-query-at-a-time
// deployment to the loaded regime: as utilization rises, queueing delays
// inflate the effective bottom-stage durations, and the experiment measures
// how each wait policy's quality degrades with load.

#ifndef CEDAR_SRC_CLUSTER_LOADED_RUNTIME_H_
#define CEDAR_SRC_CLUSTER_LOADED_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_runtime.h"
#include "src/common/sample_set.h"
#include "src/sim/workload.h"

namespace cedar {

struct LoadedRunConfig {
  ClusterSpec cluster;
  // Per-query relative deadline D.
  double deadline = 0.0;
  // Mean query inter-arrival time (exponential); smaller = heavier load.
  double mean_interarrival = 0.0;
  int num_queries = 50;
  uint64_t seed = 42;
  QualityGridOptions grid;
  // Same knowledge model as the single-query runtimes.
  bool per_query_upper_knowledge = true;

  // Query-lifecycle trace sink, with the same fallback-to-global contract
  // as TreeSimulationOptions::trace. Spans are placed at each query's
  // arrival time, so a loaded trace shows the overlapping jobs.
  TraceCollector* trace = nullptr;

  // Wait-table store handed to policies via ctx.table_store, with the same
  // contract as TreeSimulationOptions::table_store.
  WaitTableStore* table_store = nullptr;
};

struct LoadedRunResult {
  // Quality of each query, in arrival order.
  SampleSet per_query_quality;
  // Mean time a task spent queued before getting a slot.
  double mean_queue_delay = 0.0;
  // Fraction of slot-time busy over the whole run.
  double utilization = 0.0;
  // Last event time.
  double makespan = 0.0;

  double MeanQuality() const { return per_query_quality.empty() ? 0.0 : per_query_quality.Mean(); }
};

// Runs |config.num_queries| queries of |workload| through a shared cluster
// under |policy|. Deterministic for a given seed.
LoadedRunResult RunLoadedCluster(const Workload& workload, const WaitPolicy& policy,
                                 const LoadedRunConfig& config);

}  // namespace cedar

#endif  // CEDAR_SRC_CLUSTER_LOADED_RUNTIME_H_
