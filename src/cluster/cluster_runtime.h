// ClusterRuntime: a slot-scheduled partition-aggregate execution engine —
// the substitute for the paper's Spark deployment on 80 quad-core EC2
// machines (320 process slots, §5.1).
//
// Differences from the analytic TreeSimulation:
//  * Leaf processes are *tasks* that occupy slots. Tasks are placed FIFO
//    over the cluster's slots; when there are more tasks than slots the job
//    runs in waves, so arrival times at aggregators include queueing delay
//    (a dynamic the analytic model does not capture — this is what makes
//    the engine a deployment stand-in).
//  * Optional speculative execution (straggler mitigation, §7): when slots
//    go idle at the end of a stage, the longest-running task is cloned with
//    a freshly drawn duration; the earlier copy wins and the other is
//    killed, as in the production clusters the traces come from (§2.2).
//
// Aggregators run the same WaitPolicy machinery (Pseudocode 1 via
// AggregatorNode); they are modelled as long-running reducers that do not
// consume process slots, matching the paper's 320-slots-for-320-processes
// setup (fanout 20 x 16).

#ifndef CEDAR_SRC_CLUSTER_CLUSTER_RUNTIME_H_
#define CEDAR_SRC_CLUSTER_CLUSTER_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/policy.h"
#include "src/core/quality.h"
#include "src/core/tree.h"
#include "src/sim/realization.h"
#include "src/sim/tree_simulation.h"

namespace cedar {

struct ClusterSpec {
  int machines = 80;
  int slots_per_machine = 4;

  // Heterogeneity / hot spots (§2.2: contention makes some machines slow).
  // The first floor(machines * slow_machine_fraction) machines run every
  // task slow_machine_factor times longer. Speculative clones can land on
  // healthy machines, which is where speculation actually pays off.
  double slow_machine_fraction = 0.0;
  double slow_machine_factor = 1.0;

  int TotalSlots() const { return machines * slots_per_machine; }

  // Number of machines marked slow.
  int SlowMachines() const;

  // Duration multiplier for a task placed on |slot|.
  double SlotSpeedFactor(int slot) const;
};

struct SpeculationOptions {
  bool enabled = false;
  // A clone is launched for the longest-running task once slots are idle
  // and the task has run at least |slowdown_threshold| times the median
  // completed duration of its stage.
  double slowdown_threshold = 2.0;
  // At most this many clones in flight per stage.
  int max_clones = 8;
};

struct ClusterRunOptions {
  QualityGridOptions grid;
  // Same knowledge model as TreeSimulationOptions (see there).
  bool per_query_upper_knowledge = true;
  SpeculationOptions speculation;
  // Seed for runtime-internal randomness (speculative clone durations).
  uint64_t runtime_seed = 1;

  // Query-lifecycle trace sink, with the same fallback-to-global contract
  // as TreeSimulationOptions::trace.
  TraceCollector* trace = nullptr;

  // Wait-table store handed to policies via ctx.table_store, with the same
  // contract as TreeSimulationOptions::table_store.
  WaitTableStore* table_store = nullptr;
};

struct ClusterQueryResult {
  double quality = 0.0;
  double included_weight = 0.0;
  double total_weight = 0.0;
  long long root_arrivals_in_time = 0;
  long long root_arrivals_late = 0;

  // Engine diagnostics.
  int waves = 0;               // ceil(tasks / slots) actually observed
  double makespan = 0.0;       // last event time
  long long tasks_launched = 0;  // including speculative clones
  long long clones_launched = 0;
  long long clones_won = 0;  // clones that finished before the original
};

class ClusterRuntime {
 public:
  // |offline_tree| supplies fanouts and the offline/global stage
  // distributions, exactly as in TreeSimulation.
  ClusterRuntime(ClusterSpec cluster, TreeSpec offline_tree, double deadline,
                 ClusterRunOptions options = {});

  // Replays one query under |policy_prototype|. realization.stage_durations
  // supply task *service* durations; queueing is added by the engine.
  ClusterQueryResult RunQuery(const WaitPolicy& policy_prototype,
                              const QueryRealization& realization) const;

  const TreeSpec& offline_tree() const { return offline_tree_; }
  const ClusterSpec& cluster() const { return cluster_; }
  double deadline() const { return deadline_; }

 private:
  ClusterSpec cluster_;
  TreeSpec offline_tree_;
  double deadline_;
  ClusterRunOptions options_;
  double epsilon_;
  std::vector<PiecewiseLinear> curve_stack_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CLUSTER_CLUSTER_RUNTIME_H_
