// Cluster-engine experiment runner: the deployment-side counterpart of
// src/sim/experiment.h. Replays workload queries through the slot-scheduled
// ClusterRuntime under several policies on identical realizations.

#ifndef CEDAR_SRC_CLUSTER_EXPERIMENT_H_
#define CEDAR_SRC_CLUSTER_EXPERIMENT_H_

#include <vector>

#include "src/cluster/cluster_runtime.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {

struct ClusterExperimentConfig {
  ClusterSpec cluster;
  double deadline = 0.0;
  int num_queries = 100;
  uint64_t seed = 42;
  ClusterRunOptions run;
};

struct ClusterExperimentResult {
  std::vector<PolicyOutcome> outcomes;
  // Engine aggregates over all queries of the last policy run (identical
  // scheduling across policies except timer-driven aggregation).
  long long total_clones_launched = 0;
  long long total_clones_won = 0;
  int waves = 0;

  const PolicyOutcome& Outcome(const std::string& policy_name) const;
  double ImprovementPercent(const std::string& baseline, const std::string& treatment) const;
};

ClusterExperimentResult RunClusterExperiment(const Workload& workload,
                                             const std::vector<const WaitPolicy*>& policies,
                                             const ClusterExperimentConfig& config);

}  // namespace cedar

#endif  // CEDAR_SRC_CLUSTER_EXPERIMENT_H_
