// Cluster-engine experiment runner: the deployment-side counterpart of
// src/sim/experiment.h. Replays workload queries through the slot-scheduled
// ClusterRuntime under several policies on identical realizations, sharded
// across the same parallel engine as the analytic driver.

#ifndef CEDAR_SRC_CLUSTER_EXPERIMENT_H_
#define CEDAR_SRC_CLUSTER_EXPERIMENT_H_

#include <initializer_list>
#include <memory>
#include <vector>

#include "src/cluster/cluster_runtime.h"
#include "src/sim/experiment.h"
#include "src/sim/workload.h"

namespace cedar {

struct ClusterExperimentConfig : ExperimentDriverConfig {
  ClusterSpec cluster;
  ClusterRunOptions run;
};

// Shares Outcome() / ImprovementPercent() / PerQueryImprovementPercent()
// with the analytic driver's result via the ExperimentResult base.
struct ClusterExperimentResult : ExperimentResult {
  // Engine aggregates over all queries of the last policy run (identical
  // scheduling across policies except timer-driven aggregation).
  long long total_clones_launched = 0;
  long long total_clones_won = 0;
  int waves = 0;
};

// Same contract as RunExperiment (see there for the ownership rule): the
// prototypes are only read during the call; workers fork detached replicas.
ClusterExperimentResult RunClusterExperiment(const Workload& workload,
                                             const std::vector<const WaitPolicy*>& policies,
                                             const ClusterExperimentConfig& config);

ClusterExperimentResult RunClusterExperiment(
    const Workload& workload, const std::vector<std::unique_ptr<WaitPolicy>>& policies,
    const ClusterExperimentConfig& config);

// Exact match for brace-list call sites (see RunExperiment).
inline ClusterExperimentResult RunClusterExperiment(
    const Workload& workload, std::initializer_list<const WaitPolicy*> policies,
    const ClusterExperimentConfig& config) {
  return RunClusterExperiment(workload, std::vector<const WaitPolicy*>(policies), config);
}

}  // namespace cedar

#endif  // CEDAR_SRC_CLUSTER_EXPERIMENT_H_
