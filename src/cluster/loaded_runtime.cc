#include "src/cluster/loaded_runtime.h"

#include <cmath>
#include <deque>
#include <functional>
#include <memory>

#include "src/common/logging.h"
#include "src/obs/query_trace.h"
#include "src/sim/aggregator_node.h"
#include "src/sim/event_queue.h"
#include "src/sim/realization.h"

namespace cedar {
namespace {

// All the per-query state: its realization, its aggregation tree, and its
// progress counters. Heap-allocated so addresses stay stable while the
// deque of jobs grows.
struct JobState {
  double arrival = 0.0;
  QueryRealization realization;
  std::vector<PiecewiseLinear> curve_stack;  // per-query upper knowledge
  std::vector<AggregatorContext> contexts;
  std::vector<std::vector<AggregatorNode>> nodes;
  double included_weight = 0.0;
  double total_weight = 0.0;
  long long tasks_remaining_to_deliver = 0;
  // Owned per job: events span the job's lifetime, flushed after the run.
  std::unique_ptr<QueryTraceBuilder> trace;
};

struct PendingTask {
  JobState* job = nullptr;
  long long task_index = 0;
};

}  // namespace

LoadedRunResult RunLoadedCluster(const Workload& workload, const WaitPolicy& policy,
                                 const LoadedRunConfig& config) {
  CEDAR_CHECK_GT(config.deadline, 0.0);
  CEDAR_CHECK_GT(config.mean_interarrival, 0.0);
  CEDAR_CHECK_GT(config.num_queries, 0);
  CEDAR_CHECK_GE(config.cluster.TotalSlots(), 1);

  TreeSpec offline_tree = workload.OfflineTree();
  int tiers = offline_tree.num_aggregator_tiers();
  double epsilon = config.deadline * config.grid.epsilon_fraction;
  auto offline_stack = BuildQualityCurveStack(offline_tree, config.deadline, config.grid);

  EventQueue queue;
  Rng rng(config.seed);
  uint64_t next_sequence = (config.seed << 20) + 1;

  std::deque<std::unique_ptr<JobState>> jobs;
  std::deque<PendingTask> pending;
  int free_slots = config.cluster.TotalSlots();
  int k0 = offline_tree.stage(0).fanout;

  LoadedRunResult result;
  double queue_delay_sum = 0.0;
  long long tasks_started = 0;
  double busy_time = 0.0;

  std::function<void()> fill_slots;

  // Builds the upstream send chain for one job, mirroring ClusterRuntime.
  auto make_send_fn = [&](JobState* job, int tier) {
    return [&, job, tier](AggregatorNode& node, double weight) {
      long long index = node.index();
      double ship = job->realization
                        .stage_durations[static_cast<size_t>(tier + 1)][static_cast<size_t>(index)];
      double arrive_at = queue.now() + ship;
      if (tier + 1 == tiers) {
        bool in_time = arrive_at <= job->arrival + config.deadline;
        if (in_time) {
          job->included_weight += weight;
        }
        if (job->trace != nullptr && job->trace->active()) {
          job->trace->RecordRootArrival(arrive_at - job->arrival, in_time);
        }
        return;
      }
      long long parent = index / offline_tree.stage(tier + 1).fanout;
      AggregatorNode& parent_node =
          job->nodes[static_cast<size_t>(tier + 1)][static_cast<size_t>(parent)];
      queue.Schedule(arrive_at,
                     [&queue, &parent_node, weight] { parent_node.OnChildOutput(queue, weight); });
    };
  };

  TraceCollector* collector =
      config.trace != nullptr ? config.trace : ActiveTraceCollector();

  auto start_job = [&](QueryTruth truth) {
    auto job = std::make_unique<JobState>();
    job->arrival = queue.now();
    Rng realization_rng = rng.Fork();
    job->realization = SampleRealization(offline_tree, truth, realization_rng);
    job->total_weight = job->realization.TotalWeight();
    job->tasks_remaining_to_deliver =
        static_cast<long long>(job->realization.stage_durations[0].size());
    job->trace = std::make_unique<QueryTraceBuilder>(
        collector, job->realization.truth.sequence, policy.name(), "loaded", job->arrival);
    QueryTraceBuilder* trace_ptr = job->trace->active() ? job->trace.get() : nullptr;

    const std::vector<PiecewiseLinear>* stack = &offline_stack;
    if (config.per_query_upper_knowledge) {
      TreeSpec truth_tree = job->realization.truth.OverlayOn(offline_tree);
      job->curve_stack = BuildQualityCurveStack(truth_tree, config.deadline, config.grid);
      stack = &job->curve_stack;
    }

    job->contexts.resize(static_cast<size_t>(tiers));
    double offset = 0.0;
    for (int tier = 0; tier < tiers; ++tier) {
      AggregatorContext& ctx = job->contexts[static_cast<size_t>(tier)];
      ctx.tier = tier;
      ctx.deadline = config.deadline;
      ctx.start_offset = offset;
      ctx.fanout = offline_tree.stage(tier).fanout;
      ctx.offline_tree = &offline_tree;
      ctx.upper_quality = &(*stack)[static_cast<size_t>(tier + 1)];
      ctx.epsilon = epsilon;
      ctx.table_store = config.table_store;
      if (trace_ptr != nullptr) {
        trace_ptr->RecordTierPlan(tier, offset);
      }
      if (tier + 1 < tiers) {
        auto scratch = policy.Clone();
        scratch->BeginQuery(ctx, &job->realization.truth);
        offset = scratch->DecideInitialWait(ctx);
      }
    }

    job->nodes.resize(static_cast<size_t>(tiers));
    for (int tier = 0; tier < tiers; ++tier) {
      long long count = StageEdgeCount(offline_tree, tier + 1);
      job->nodes[static_cast<size_t>(tier)] =
          std::vector<AggregatorNode>(static_cast<size_t>(count));
      for (long long i = 0; i < count; ++i) {
        auto node_policy = policy.Clone();
        node_policy->BeginQuery(job->contexts[static_cast<size_t>(tier)],
                                &job->realization.truth);
        job->nodes[static_cast<size_t>(tier)][static_cast<size_t>(i)].Init(
            tier, i, std::move(node_policy), &job->contexts[static_cast<size_t>(tier)],
            job->arrival, trace_ptr);
      }
    }
    JobState* raw = job.get();
    for (int tier = 0; tier < tiers; ++tier) {
      auto send_fn = make_send_fn(raw, tier);
      for (auto& node : raw->nodes[static_cast<size_t>(tier)]) {
        node.Start(queue, send_fn);
      }
    }

    // Enqueue all map tasks FIFO behind earlier jobs' tasks.
    for (long long t = 0; t < raw->tasks_remaining_to_deliver; ++t) {
      pending.push_back({raw, t});
    }
    jobs.push_back(std::move(job));
    fill_slots();
  };

  fill_slots = [&]() {
    while (free_slots > 0 && !pending.empty()) {
      PendingTask task = pending.front();
      pending.pop_front();
      --free_slots;
      ++tasks_started;
      queue_delay_sum += queue.now() - task.job->arrival;
      double duration =
          task.job->realization.stage_durations[0][static_cast<size_t>(task.task_index)];
      busy_time += duration;
      JobState* job = task.job;
      long long index = task.task_index;
      queue.Schedule(queue.now() + duration, [&, job, index, duration] {
        (void)duration;
        ++free_slots;
        double weight = job->realization.leaf_weights.empty()
                            ? 1.0
                            : job->realization.leaf_weights[static_cast<size_t>(index)];
        job->nodes[0][static_cast<size_t>(index / k0)].OnChildOutput(queue, weight);
        result.makespan = queue.now();
        fill_slots();
      });
    }
  };

  // Poisson arrivals.
  std::function<void(int)> schedule_arrival = [&](int remaining) {
    if (remaining <= 0) {
      return;
    }
    double gap = -std::log(rng.NextOpenDouble()) * config.mean_interarrival;
    queue.Schedule(queue.now() + gap, [&, remaining] {
      QueryTruth truth = workload.DrawQuery(rng);
      truth.sequence = next_sequence++;
      start_job(std::move(truth));
      schedule_arrival(remaining - 1);
    });
  };
  schedule_arrival(config.num_queries);

  queue.Run();

  for (const auto& job : jobs) {
    double quality =
        job->total_weight > 0.0 ? job->included_weight / job->total_weight : 0.0;
    result.per_query_quality.Add(quality);
    if (job->trace->active()) {
      job->trace->Finish(config.deadline, quality,
                         {TraceArg::Num("arrival", job->arrival)});
    }
  }
  result.mean_queue_delay =
      tasks_started > 0 ? queue_delay_sum / static_cast<double>(tasks_started) : 0.0;
  result.utilization =
      result.makespan > 0.0
          ? busy_time / (result.makespan * static_cast<double>(config.cluster.TotalSlots()))
          : 0.0;
  return result;
}

}  // namespace cedar
