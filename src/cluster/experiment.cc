#include "src/cluster/experiment.h"

#include <set>

#include "src/common/logging.h"

namespace cedar {

const PolicyOutcome& ClusterExperimentResult::Outcome(const std::string& policy_name) const {
  for (const auto& outcome : outcomes) {
    if (outcome.policy_name == policy_name) {
      return outcome;
    }
  }
  CEDAR_LOG(FATAL) << "no outcome for policy '" << policy_name << "'";
  __builtin_unreachable();
}

double ClusterExperimentResult::ImprovementPercent(const std::string& baseline,
                                                   const std::string& treatment) const {
  return PercentImprovement(Outcome(baseline).MeanQuality(), Outcome(treatment).MeanQuality());
}

ClusterExperimentResult RunClusterExperiment(const Workload& workload,
                                             const std::vector<const WaitPolicy*>& policies,
                                             const ClusterExperimentConfig& config) {
  CEDAR_CHECK(!policies.empty());
  CEDAR_CHECK_GT(config.num_queries, 0);
  CEDAR_CHECK_GT(config.deadline, 0.0);

  ClusterExperimentResult result;
  result.outcomes.resize(policies.size());
  {
    std::set<std::string> names;
    for (size_t p = 0; p < policies.size(); ++p) {
      result.outcomes[p].policy_name = policies[p]->name();
      CEDAR_CHECK(names.insert(policies[p]->name()).second)
          << "duplicate policy name '" << policies[p]->name() << "'";
    }
  }

  TreeSpec offline_tree = workload.OfflineTree();
  ClusterRuntime runtime(config.cluster, offline_tree, config.deadline, config.run);

  Rng rng(config.seed);
  uint64_t next_sequence = (config.seed << 20) + 1;
  for (int q = 0; q < config.num_queries; ++q) {
    QueryTruth truth = workload.DrawQuery(rng);
    truth.sequence = next_sequence++;
    Rng realization_rng = rng.Fork();
    QueryRealization realization = SampleRealization(offline_tree, truth, realization_rng);
    for (size_t p = 0; p < policies.size(); ++p) {
      ClusterQueryResult query_result = runtime.RunQuery(*policies[p], realization);
      result.outcomes[p].quality.Add(query_result.quality);
      result.outcomes[p].root_arrivals_late += query_result.root_arrivals_late;
      result.total_clones_launched += query_result.clones_launched;
      result.total_clones_won += query_result.clones_won;
      result.waves = query_result.waves;
    }
  }
  return result;
}

}  // namespace cedar
