#include "src/cluster/experiment.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/sim/experiment_engine.h"

namespace cedar {

ClusterExperimentResult RunClusterExperiment(const Workload& workload,
                                             const std::vector<const WaitPolicy*>& policies,
                                             const ClusterExperimentConfig& config) {
  CEDAR_CHECK(!policies.empty());
  CEDAR_CHECK_GT(config.num_queries, 0);
  CEDAR_CHECK_GT(config.deadline, 0.0);

  ClusterExperimentResult result;
  result.outcomes.resize(policies.size());
  AssignOutcomeNames(policies, result.outcomes);

  TreeSpec offline_tree = workload.OfflineTree();
  ClusterRunOptions run_options = config.run;
  if (config.wait_table_store != nullptr) {
    run_options.table_store = config.wait_table_store;
  }
  ClusterRuntime runtime(config.cluster, offline_tree, config.deadline, run_options);

  std::vector<ClusterQueryResult> grid = RunExperimentGrid<ClusterQueryResult>(
      workload, offline_tree, policies, config,
      [&runtime](const WaitPolicy& policy, const QueryRealization& realization) {
        return runtime.RunQuery(policy, realization);
      });

  const size_t num_policies = policies.size();
  for (int q = 0; q < config.num_queries; ++q) {
    for (size_t p = 0; p < num_policies; ++p) {
      const ClusterQueryResult& query_result = grid[static_cast<size_t>(q) * num_policies + p];
      result.outcomes[p].quality.Add(query_result.quality);
      result.outcomes[p].root_arrivals_late += query_result.root_arrivals_late;
      result.total_clones_launched += query_result.clones_launched;
      result.total_clones_won += query_result.clones_won;
      result.waves = query_result.waves;
    }
  }

  // Folded after the deterministic merge, same contract as the sim driver.
  if (MetricsEnabled()) {
    // Per-deadline labeled series alongside the unlabeled totals, mirroring
    // the sim driver (ROADMAP: metric labels).
    MetricsRegistry& registry = MetricsRegistry::Global();
    const auto labeled = [&](const char* name) {
      return LabeledMetricName(name, "deadline_ms", config.deadline);
    };
    registry.GetCounter("cluster.experiments").Increment();
    registry.GetCounter("cluster.queries").Increment(config.num_queries);
    registry.GetCounter(labeled("cluster.queries")).Increment(config.num_queries);
    registry.GetCounter("cluster.clones_launched").Increment(result.total_clones_launched);
    registry.GetCounter("cluster.clones_won").Increment(result.total_clones_won);
    Histogram& quality =
        registry.GetHistogram("cluster.query_quality", {1e-4, 1.0, 40});
    Histogram& quality_labeled =
        registry.GetHistogram(labeled("cluster.query_quality"), {1e-4, 1.0, 40});
    Counter& late = registry.GetCounter("cluster.root_arrivals_late");
    Counter& late_labeled = registry.GetCounter(labeled("cluster.root_arrivals_late"));
    for (const auto& outcome : result.outcomes) {
      for (double value : outcome.quality.values()) {
        quality.Observe(value);
        quality_labeled.Observe(value);
      }
      late.Increment(outcome.root_arrivals_late);
      late_labeled.Increment(outcome.root_arrivals_late);
    }
  }
  return result;
}

ClusterExperimentResult RunClusterExperiment(
    const Workload& workload, const std::vector<std::unique_ptr<WaitPolicy>>& policies,
    const ClusterExperimentConfig& config) {
  return RunClusterExperiment(workload, PolicyPointers(policies), config);
}

}  // namespace cedar
