#include "src/cluster/cluster_runtime.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/query_trace.h"
#include "src/sim/aggregator_node.h"
#include "src/sim/event_queue.h"

namespace cedar {
namespace {

// Bookkeeping for one logical map task, which may have several racing
// copies (original + speculative clones).
struct TaskState {
  double first_launch_time = 0.0;
  bool launched = false;
  bool completed = false;
  int copies_in_flight = 0;
  // Parallel arrays: the pending completion event and occupied slot of each
  // in-flight copy.
  std::vector<uint64_t> completion_handles;
  std::vector<int> copy_slots;
};

}  // namespace

int ClusterSpec::SlowMachines() const {
  return static_cast<int>(static_cast<double>(machines) * slow_machine_fraction);
}

double ClusterSpec::SlotSpeedFactor(int slot) const {
  CEDAR_CHECK(slot >= 0 && slot < TotalSlots());
  int machine = slot / slots_per_machine;
  return machine < SlowMachines() ? slow_machine_factor : 1.0;
}

ClusterRuntime::ClusterRuntime(ClusterSpec cluster, TreeSpec offline_tree, double deadline,
                               ClusterRunOptions options)
    : cluster_(cluster),
      offline_tree_(std::move(offline_tree)),
      deadline_(deadline),
      options_(options) {
  CEDAR_CHECK_GT(deadline, 0.0);
  CEDAR_CHECK_GE(offline_tree_.num_stages(), 2);
  CEDAR_CHECK_GE(cluster_.TotalSlots(), 1);
  epsilon_ = deadline_ * options_.grid.epsilon_fraction;
  curve_stack_ = BuildQualityCurveStack(offline_tree_, deadline_, options_.grid);
}

ClusterQueryResult ClusterRuntime::RunQuery(const WaitPolicy& policy_prototype,
                                            const QueryRealization& realization) const {
  int n = offline_tree_.num_stages();
  int tiers = offline_tree_.num_aggregator_tiers();
  CEDAR_CHECK_EQ(static_cast<int>(realization.stage_durations.size()), n);

  TraceCollector* collector =
      options_.trace != nullptr ? options_.trace : ActiveTraceCollector();
  QueryTraceBuilder trace(collector, realization.truth.sequence,
                          policy_prototype.name(), "cluster");
  QueryTraceBuilder* trace_ptr = trace.active() ? &trace : nullptr;

  // Quality-curve knowledge, as in TreeSimulation.
  std::vector<PiecewiseLinear> query_stack;
  const std::vector<PiecewiseLinear>* stack = &curve_stack_;
  if (options_.per_query_upper_knowledge) {
    TreeSpec truth_tree = realization.truth.OverlayOn(offline_tree_);
    query_stack = BuildQualityCurveStack(truth_tree, deadline_, options_.grid);
    stack = &query_stack;
  }

  std::vector<AggregatorContext> contexts(static_cast<size_t>(tiers));
  {
    double offset = 0.0;
    for (int tier = 0; tier < tiers; ++tier) {
      AggregatorContext& ctx = contexts[static_cast<size_t>(tier)];
      ctx.tier = tier;
      ctx.deadline = deadline_;
      ctx.start_offset = offset;
      ctx.fanout = offline_tree_.stage(tier).fanout;
      ctx.offline_tree = &offline_tree_;
      ctx.upper_quality = &(*stack)[static_cast<size_t>(tier + 1)];
      ctx.epsilon = epsilon_;
      ctx.table_store = options_.table_store;
      if (trace_ptr != nullptr) {
        trace_ptr->RecordTierPlan(tier, offset);
      }
      if (tier + 1 < tiers) {
        auto scratch = policy_prototype.Clone();
        scratch->BeginQuery(ctx, &realization.truth);
        offset = scratch->DecideInitialWait(ctx);
      }
    }
  }

  std::vector<std::vector<AggregatorNode>> nodes(static_cast<size_t>(tiers));
  for (int tier = 0; tier < tiers; ++tier) {
    long long count = StageEdgeCount(offline_tree_, tier + 1);
    nodes[static_cast<size_t>(tier)] = std::vector<AggregatorNode>(static_cast<size_t>(count));
    for (long long i = 0; i < count; ++i) {
      auto policy = policy_prototype.Clone();
      policy->BeginQuery(contexts[static_cast<size_t>(tier)], &realization.truth);
      nodes[static_cast<size_t>(tier)][static_cast<size_t>(i)].Init(
          tier, i, std::move(policy), &contexts[static_cast<size_t>(tier)], 0.0, trace_ptr);
    }
  }

  EventQueue queue;
  ClusterQueryResult result;
  result.total_weight = realization.TotalWeight();

  auto make_send_fn = [&](int tier) {
    return [&, tier](AggregatorNode& node, double weight) {
      long long index = node.index();
      double ship =
          realization.stage_durations[static_cast<size_t>(tier + 1)][static_cast<size_t>(index)];
      double arrive_at = queue.now() + ship;
      if (tier + 1 == tiers) {
        bool in_time = arrive_at <= deadline_;
        if (in_time) {
          result.included_weight += weight;
          ++result.root_arrivals_in_time;
        } else {
          ++result.root_arrivals_late;
        }
        if (trace_ptr != nullptr) {
          trace_ptr->RecordRootArrival(arrive_at, in_time);
        }
        return;
      }
      long long parent = index / offline_tree_.stage(tier + 1).fanout;
      AggregatorNode& parent_node =
          nodes[static_cast<size_t>(tier + 1)][static_cast<size_t>(parent)];
      queue.Schedule(arrive_at,
                     [&queue, &parent_node, weight] { parent_node.OnChildOutput(queue, weight); });
    };
  };

  for (int tier = 0; tier < tiers; ++tier) {
    auto send_fn = make_send_fn(tier);
    for (auto& node : nodes[static_cast<size_t>(tier)]) {
      node.Start(queue, send_fn);
    }
  }

  // ---- Slot-scheduled leaf (map) stage ----
  const auto& durations = realization.stage_durations[0];
  auto total_tasks = static_cast<long long>(durations.size());
  int k0 = offline_tree_.stage(0).fanout;
  int slots = cluster_.TotalSlots();
  result.waves = static_cast<int>((total_tasks + slots - 1) / slots);

  std::vector<TaskState> tasks(static_cast<size_t>(total_tasks));
  long long next_pending = 0;
  // Explicit slot identities so heterogeneity can scale task durations by
  // placement.
  std::vector<int> free_slot_ids(static_cast<size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    free_slot_ids[static_cast<size_t>(s)] = s;
  }
  // The scheduler does not know which machines are slow; shuffle the
  // placement order (deterministically per query) so hot spots are hit in
  // proportion to their share of the cluster.
  {
    Rng placement_rng(options_.runtime_seed ^
                      (realization.truth.sequence * 0x9E3779B97F4A7C15ull) ^ 0xBEEF);
    for (size_t i = free_slot_ids.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(placement_rng.NextBounded(i));
      std::swap(free_slot_ids[i - 1], free_slot_ids[j]);
    }
  }
  std::vector<double> completed_durations;
  completed_durations.reserve(static_cast<size_t>(total_tasks));
  long long clones_total = 0;

  // Clone durations are runtime randomness (a speculative copy re-executes
  // the work), seeded per query for reproducibility.
  Rng clone_rng(options_.runtime_seed ^ (realization.truth.sequence * 0x9E3779B97F4A7C15ull) ^
                0xC0FFEE);

  // Forward declarations via std::function so the completion handler can
  // start follow-up work.
  std::function<void()> fill_slots;

  auto launch_copy = [&](long long task_index, double service_duration) {
    TaskState& task = tasks[static_cast<size_t>(task_index)];
    CEDAR_CHECK(!free_slot_ids.empty());
    int slot = free_slot_ids.back();
    free_slot_ids.pop_back();
    double duration = service_duration * cluster_.SlotSpeedFactor(slot);
    ++result.tasks_launched;
    ++task.copies_in_flight;
    if (!task.launched) {
      task.launched = true;
      task.first_launch_time = queue.now();
    }
    bool is_clone = task.copies_in_flight > 1;
    uint64_t handle =
        queue.Schedule(queue.now() + duration, [&, task_index, duration, is_clone, slot] {
          TaskState& t = tasks[static_cast<size_t>(task_index)];
          --t.copies_in_flight;
          free_slot_ids.push_back(slot);
          for (size_t ci = 0; ci < t.copy_slots.size(); ++ci) {
            if (t.copy_slots[ci] == slot) {
              t.copy_slots.erase(t.copy_slots.begin() + static_cast<long>(ci));
              t.completion_handles.erase(t.completion_handles.begin() + static_cast<long>(ci));
              break;
            }
          }
          if (!t.completed) {
            t.completed = true;
            if (is_clone) {
              ++result.clones_won;
            }
            completed_durations.push_back(duration);
            // Kill the losing copies: cancel their completions, free slots.
            for (uint64_t h : t.completion_handles) {
              queue.Cancel(h);
            }
            for (int losing_slot : t.copy_slots) {
              free_slot_ids.push_back(losing_slot);
            }
            t.copies_in_flight = 0;
            t.completion_handles.clear();
            t.copy_slots.clear();
            // Deliver the output to the owning tier-0 aggregator.
            double weight = realization.leaf_weights.empty()
                                ? 1.0
                                : realization.leaf_weights[static_cast<size_t>(task_index)];
            AggregatorNode& agg = nodes[0][static_cast<size_t>(task_index / k0)];
            agg.OnChildOutput(queue, weight);
          }
          result.makespan = queue.now();
          fill_slots();
        });
    task.completion_handles.push_back(handle);
    task.copy_slots.push_back(slot);
  };

  bool spec_check_scheduled = false;

  auto try_speculate = [&]() -> bool {
    if (!options_.speculation.enabled || free_slot_ids.empty()) {
      return false;
    }
    if (clones_total >= options_.speculation.max_clones || completed_durations.empty()) {
      return false;
    }
    std::vector<double> sorted = completed_durations;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(sorted.size() / 2),
                     sorted.end());
    double median = sorted[sorted.size() / 2];
    // Longest-running un-cloned task exceeding the slowdown threshold.
    long long candidate = -1;
    double longest = 0.0;
    for (long long i = 0; i < total_tasks; ++i) {
      const TaskState& t = tasks[static_cast<size_t>(i)];
      if (t.launched && !t.completed && t.copies_in_flight == 1) {
        double elapsed = queue.now() - t.first_launch_time;
        if (elapsed > longest) {
          longest = elapsed;
          candidate = i;
        }
      }
    }
    if (candidate < 0) {
      return false;
    }
    double threshold = options_.speculation.slowdown_threshold * median;
    if (longest < threshold) {
      // Not slow enough yet. A straggler crosses the threshold without any
      // completion event firing, so poll again when the current
      // longest-runner would qualify.
      if (!spec_check_scheduled) {
        spec_check_scheduled = true;
        double check_at = std::max(queue.now() + 1e-9,
                                   tasks[static_cast<size_t>(candidate)].first_launch_time +
                                       threshold);
        queue.Schedule(check_at, [&] {
          spec_check_scheduled = false;
          fill_slots();
        });
      }
      return false;
    }
    ++clones_total;
    ++result.clones_launched;
    double clone_duration = realization.truth.stage_durations[0]->Sample(clone_rng);
    launch_copy(candidate, clone_duration);
    return true;
  };

  fill_slots = [&]() {
    while (!free_slot_ids.empty() && next_pending < total_tasks) {
      long long task_index = next_pending++;
      launch_copy(task_index, durations[static_cast<size_t>(task_index)]);
    }
    while (try_speculate()) {
    }
  };

  fill_slots();
  queue.Run();

  result.quality = result.total_weight > 0.0 ? result.included_weight / result.total_weight : 0.0;
  if (trace_ptr != nullptr) {
    trace_ptr->Finish(
        std::max(result.makespan, deadline_), result.quality,
        {TraceArg::Num("waves", result.waves),
         TraceArg::Num("tasks_launched", static_cast<double>(result.tasks_launched)),
         TraceArg::Num("clones_launched", static_cast<double>(result.clones_launched)),
         TraceArg::Num("clones_won", static_cast<double>(result.clones_won)),
         TraceArg::Num("root_late", static_cast<double>(result.root_arrivals_late))});
  }
  return result;
}

}  // namespace cedar
