// RealtimeAggregator: a wall-clock implementation of Pseudocode 1 for real
// services — the endhost deployment path the paper emphasizes ("Cedar can
// be implemented entirely at the endhosts", §1).
//
// Worker threads deliver outputs with Offer() from any thread; an internal
// timer thread enforces the policy's (continuously re-optimized) wait; the
// completion callback fires exactly once — when the wait expires, when all
// fanout outputs have arrived, or when Flush() is called. All time is in
// seconds on std::chrono::steady_clock, measured from Start().
//
// Threading contract: Offer/Flush/Join are thread-safe; the callback runs
// on the timer thread with no locks held; the WaitPolicy is only ever
// invoked under the internal mutex (policies are not thread-safe
// themselves). The referenced AggregatorContext pointers (offline tree,
// upper curve) must outlive the aggregator.

#ifndef CEDAR_SRC_RT_REALTIME_AGGREGATOR_H_
#define CEDAR_SRC_RT_REALTIME_AGGREGATOR_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/core/policy.h"

namespace cedar {

template <typename Output>
class RealtimeAggregator {
 public:
  struct Result {
    std::vector<Output> outputs;
    // Seconds from Start() to the send.
    double send_time = 0.0;
    // True if the send happened because all fanout outputs arrived.
    bool sent_early = false;
    // Arrival times (seconds from Start) of the included outputs.
    std::vector<double> arrival_times;
  };

  // |ctx| must describe this aggregator (fanout, deadline, curves); |policy|
  // is owned. |on_send| is invoked exactly once, on the timer thread.
  RealtimeAggregator(std::unique_ptr<WaitPolicy> policy, const AggregatorContext& ctx,
                     std::function<void(Result)> on_send)
      : policy_(std::move(policy)), ctx_(ctx), on_send_(std::move(on_send)) {
    CEDAR_CHECK(policy_ != nullptr);
    CEDAR_CHECK(on_send_ != nullptr);
    CEDAR_CHECK_GE(ctx_.fanout, 1);
  }

  ~RealtimeAggregator() { Join(); }

  RealtimeAggregator(const RealtimeAggregator&) = delete;
  RealtimeAggregator& operator=(const RealtimeAggregator&) = delete;

  // Begins the query: consults the policy for the initial wait and starts
  // the timer thread. Must be called exactly once.
  void Start() {
    std::lock_guard<std::mutex> lock(mutex_);
    CEDAR_CHECK(!started_) << "Start() called twice";
    started_ = true;
    start_time_ = Clock::now();
    policy_->BeginQuery(ctx_, nullptr);
    current_wait_ = policy_->DecideInitialWait(ctx_);
    timer_ = std::thread([this] { TimerLoop(); });
  }

  // Delivers one worker output. Returns false (and drops the output) if the
  // result was already sent. Thread-safe.
  bool Offer(Output output) {
    std::unique_lock<std::mutex> lock(mutex_);
    CEDAR_CHECK(started_) << "Offer() before Start()";
    if (sent_) {
      return false;
    }
    double now = Elapsed();
    outputs_.push_back(std::move(output));
    arrivals_.push_back(now);
    if (static_cast<int>(arrivals_.size()) >= ctx_.fanout) {
      all_arrived_ = true;
    } else {
      current_wait_ = policy_->DecideOnArrival(ctx_, now, arrivals_);
    }
    lock.unlock();
    cv_.notify_all();
    return true;
  }

  // Forces an immediate send (e.g. external cancellation). Safe to call
  // multiple times and concurrently with Offer.
  void Flush() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      flush_requested_ = true;
    }
    cv_.notify_all();
  }

  // Blocks until the result has been sent and the timer thread exited.
  void Join() {
    if (timer_.joinable()) {
      timer_.join();
    }
  }

  // True once the callback has fired.
  bool sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sent_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_time_).count();
  }

  void TimerLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (all_arrived_ || flush_requested_) {
        break;
      }
      double wait = current_wait_;
      if (Elapsed() >= wait) {
        break;  // timer expired (possibly re-armed into the past)
      }
      auto fire_at = start_time_ + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(wait));
      // Wake early if an arrival re-armed the timer or finished the fanout.
      cv_.wait_until(lock, fire_at, [&] {
        return all_arrived_ || flush_requested_ || current_wait_ != wait;
      });
    }
    sent_ = true;
    Result result;
    result.outputs = std::move(outputs_);
    result.arrival_times = arrivals_;
    result.send_time = Elapsed();
    result.sent_early = all_arrived_;
    lock.unlock();
    on_send_(std::move(result));
  }

  std::unique_ptr<WaitPolicy> policy_;
  AggregatorContext ctx_;
  std::function<void(Result)> on_send_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread timer_;
  Clock::time_point start_time_;
  bool started_ = false;
  bool sent_ = false;
  bool all_arrived_ = false;
  bool flush_requested_ = false;
  double current_wait_ = 0.0;
  std::vector<Output> outputs_;
  std::vector<double> arrivals_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_RT_REALTIME_AGGREGATOR_H_
