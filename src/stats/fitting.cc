#include "src/stats/fitting.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/common/logging.h"
#include "src/common/math_util.h"
#include "src/stats/normal_math.h"

namespace cedar {
namespace {

// Ordinary least squares y = a + b x. Returns false if x has no spread.
bool LinearRegress(const std::vector<double>& x, const std::vector<double>& y, double* a,
                   double* b) {
  CEDAR_CHECK_EQ(x.size(), y.size());
  size_t n = x.size();
  if (n < 2) {
    return false;
  }
  double sx = 0.0;
  double sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0.0) {
    return false;
  }
  *b = sxy / sxx;
  *a = my - *b * mx;
  return true;
}

// Regression through the origin: y = b x.
bool OriginRegress(const std::vector<double>& x, const std::vector<double>& y, double* b) {
  CEDAR_CHECK_EQ(x.size(), y.size());
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  if (sxx <= 0.0) {
    return false;
  }
  *b = sxy / sxx;
  return true;
}

std::optional<DistributionSpec> FitFamily(DistributionFamily family,
                                          const std::vector<PercentilePoint>& points) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  DistributionSpec spec;
  spec.family = family;

  switch (family) {
    case DistributionFamily::kLogNormal: {
      // ln q = mu + sigma * Phi^-1(p)
      for (const auto& pt : points) {
        if (pt.value <= 0.0) {
          return std::nullopt;
        }
        xs.push_back(NormalQuantile(pt.p));
        ys.push_back(std::log(pt.value));
      }
      double mu;
      double sigma;
      if (!LinearRegress(xs, ys, &mu, &sigma) || sigma <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = mu;
      spec.p2 = sigma;
      return spec;
    }
    case DistributionFamily::kNormal: {
      // q = mean + sd * Phi^-1(p)
      for (const auto& pt : points) {
        xs.push_back(NormalQuantile(pt.p));
        ys.push_back(pt.value);
      }
      double mean;
      double sd;
      if (!LinearRegress(xs, ys, &mean, &sd) || sd <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = mean;
      spec.p2 = sd;
      return spec;
    }
    case DistributionFamily::kExponential: {
      // q = (1/lambda) * (-ln(1-p)); regression through the origin.
      for (const auto& pt : points) {
        if (pt.value < 0.0) {
          return std::nullopt;
        }
        xs.push_back(-std::log1p(-pt.p));
        ys.push_back(pt.value);
      }
      double inv_lambda;
      if (!OriginRegress(xs, ys, &inv_lambda) || inv_lambda <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = 1.0 / inv_lambda;
      spec.p2 = 0.0;
      return spec;
    }
    case DistributionFamily::kPareto: {
      // ln q = ln xm - (1/alpha) ln(1-p)
      for (const auto& pt : points) {
        if (pt.value <= 0.0) {
          return std::nullopt;
        }
        xs.push_back(-std::log1p(-pt.p));
        ys.push_back(std::log(pt.value));
      }
      double ln_xm;
      double inv_alpha;
      if (!LinearRegress(xs, ys, &ln_xm, &inv_alpha) || inv_alpha <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = std::exp(ln_xm);
      spec.p2 = 1.0 / inv_alpha;
      return spec;
    }
    case DistributionFamily::kWeibull: {
      // ln(-ln(1-p)) = shape * ln q - shape * ln scale
      for (const auto& pt : points) {
        if (pt.value <= 0.0) {
          return std::nullopt;
        }
        xs.push_back(std::log(pt.value));
        ys.push_back(std::log(-std::log1p(-pt.p)));
      }
      double intercept;
      double shape;
      if (!LinearRegress(xs, ys, &intercept, &shape) || shape <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = shape;
      spec.p2 = std::exp(-intercept / shape);
      return spec;
    }
    case DistributionFamily::kUniform: {
      // q = a + (b - a) p
      for (const auto& pt : points) {
        xs.push_back(pt.p);
        ys.push_back(pt.value);
      }
      double a;
      double range;
      if (!LinearRegress(xs, ys, &a, &range) || range <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = a;
      spec.p2 = a + range;
      return spec;
    }
    case DistributionFamily::kEmpirical:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

DistributionFit EvaluateFit(const DistributionSpec& spec,
                            const std::vector<PercentilePoint>& points) {
  auto dist = MakeDistribution(spec);
  DistributionFit fit;
  fit.spec = spec;
  double ss = 0.0;
  double worst = 0.0;
  for (const auto& pt : points) {
    double predicted = dist->Quantile(pt.p);
    double denom = std::fabs(pt.value) > 0.0 ? std::fabs(pt.value) : 1.0;
    double rel = (predicted - pt.value) / denom;
    ss += rel * rel;
    worst = std::max(worst, std::fabs(rel));
  }
  fit.relative_rms_error = std::sqrt(ss / static_cast<double>(points.size()));
  fit.max_relative_error = worst;
  return fit;
}

DistributionFitter::DistributionFitter()
    : candidates_({DistributionFamily::kLogNormal, DistributionFamily::kNormal,
                   DistributionFamily::kExponential, DistributionFamily::kPareto,
                   DistributionFamily::kWeibull, DistributionFamily::kUniform}) {}

void DistributionFitter::SetCandidates(std::vector<DistributionFamily> families) {
  CEDAR_CHECK(!families.empty());
  candidates_ = std::move(families);
}

std::vector<DistributionFit> DistributionFitter::FitPercentiles(
    const std::vector<PercentilePoint>& points) const {
  CEDAR_CHECK_GE(points.size(), 2u) << "need at least two percentile points";
  for (const auto& pt : points) {
    CEDAR_CHECK(pt.p > 0.0 && pt.p < 1.0) << "percentile out of (0,1): " << pt.p;
  }
  std::vector<DistributionFit> fits;
  for (DistributionFamily family : candidates_) {
    auto spec = FitFamily(family, points);
    if (spec.has_value()) {
      fits.push_back(EvaluateFit(*spec, points));
    }
  }
  std::sort(fits.begin(), fits.end(), [](const DistributionFit& a, const DistributionFit& b) {
    return a.relative_rms_error < b.relative_rms_error;
  });
  return fits;
}

std::vector<DistributionFit> DistributionFitter::FitSamples(
    const std::vector<double>& samples, const std::vector<double>& grid) const {
  CEDAR_CHECK_GE(samples.size(), 2u);
  std::vector<double> percentiles = grid;
  if (percentiles.empty()) {
    percentiles = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<PercentilePoint> points;
  points.reserve(percentiles.size());
  for (double p : percentiles) {
    PercentilePoint pt;
    pt.p = p;
    pt.value = QuantileOfSorted(sorted, p);
    points.push_back(pt);
  }
  return FitPercentiles(points);
}

double KolmogorovSmirnovStatistic(std::vector<double> samples, const Distribution& dist) {
  CEDAR_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double ks = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double cdf = dist.Cdf(samples[i]);
    double ecdf_above = static_cast<double>(i + 1) / n;  // ECDF just right of x_i
    double ecdf_below = static_cast<double>(i) / n;      // ECDF just left of x_i
    ks = std::max({ks, std::fabs(ecdf_above - cdf), std::fabs(cdf - ecdf_below)});
  }
  return ks;
}

DistributionFit DistributionFitter::BestFit(const std::vector<PercentilePoint>& points) const {
  auto fits = FitPercentiles(points);
  CEDAR_CHECK(!fits.empty()) << "no candidate family fits the percentile data";
  return fits.front();
}

}  // namespace cedar
