// Order-statistic scores for the Cedar estimator (§4.2.2 of the paper).
//
// Given k i.i.d. draws from a distribution, the i-th order statistic is the
// i-th smallest. Cedar's insight is that the i-th *arrival* at an aggregator
// is a draw from the i-th order statistic of the k process durations — not
// from the duration distribution itself — and fitting against the expected
// order-statistic scores removes the bias of only observing early finishers.
//
// For location-scale families (normal; log-normal after taking logs) the
// expected i-th order statistic is mu + sigma * m_{i,k}, where m_{i,k} is the
// expected i-th order statistic of the *standard* distribution. This module
// computes the standard-normal scores m_{i,k} two ways:
//
//   * kExact — numerical integration of
//       E[Z_(i)] = k * C(k-1, i-1) * Integral z phi(z) Phi(z)^{i-1}
//                  (1 - Phi(z))^{k-i} dz
//     (adaptive Simpson on [-9, 9]); accurate to ~1e-9.
//   * kBlom — Blom's classical approximation
//       Phi^{-1}((i - 0.375) / (k + 0.25)),
//     within ~1% of exact, O(1) per score.
//
// Scores are cached per (k, method) behind a mutex; lookups after the first
// are lock-then-pointer-read.

#ifndef CEDAR_SRC_STATS_ORDER_STATISTICS_H_
#define CEDAR_SRC_STATS_ORDER_STATISTICS_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace cedar {

enum class OrderScoreMethod {
  kExact,  // numerical integration (default)
  kBlom,   // Blom's approximation
};

// Blom's approximate expected i-th (1-based) standard-normal order statistic
// out of k.
double BlomNormalScore(int i, int k);

// Exact (numerically integrated) expected i-th standard-normal order
// statistic out of k. 1 <= i <= k.
double ExactNormalScore(int i, int k);

// Expected i-th order statistic of Exponential(1): sum_{j=0}^{i-1} 1/(k-j).
// Closed form; used by the exponential estimator.
double ExponentialScore(int i, int k);

// Cached table of all k standard-normal scores for a sample size.
class NormalOrderScoreTable {
 public:
  // Returns the shared table for |k| (computing and caching on first use).
  // The returned reference lives for the program duration.
  static const std::vector<double>& Get(int k, OrderScoreMethod method = OrderScoreMethod::kExact);

  // Drops all cached tables (test hook).
  static void ClearCacheForTesting();
};

// Monte-Carlo estimate of the expected i-th order statistic of |k| standard
// normal draws, using |trials| simulated samples. Test / cross-check utility
// (the paper notes the scores "can be computed quite accurately using a
// simple simulation").
std::vector<double> MonteCarloNormalScores(int k, int trials, uint64_t seed);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_ORDER_STATISTICS_H_
