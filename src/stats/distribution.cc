#include "src/stats/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/math_util.h"
#include "src/stats/normal_math.h"

namespace cedar {

std::string DistributionFamilyName(DistributionFamily family) {
  switch (family) {
    case DistributionFamily::kLogNormal:
      return "lognormal";
    case DistributionFamily::kNormal:
      return "normal";
    case DistributionFamily::kExponential:
      return "exponential";
    case DistributionFamily::kPareto:
      return "pareto";
    case DistributionFamily::kWeibull:
      return "weibull";
    case DistributionFamily::kUniform:
      return "uniform";
    case DistributionFamily::kEmpirical:
      return "empirical";
  }
  return "unknown";
}

DistributionFamily DistributionFamilyFromName(const std::string& name) {
  for (DistributionFamily family :
       {DistributionFamily::kLogNormal, DistributionFamily::kNormal,
        DistributionFamily::kExponential, DistributionFamily::kPareto,
        DistributionFamily::kWeibull, DistributionFamily::kUniform,
        DistributionFamily::kEmpirical}) {
    if (DistributionFamilyName(family) == name) {
      return family;
    }
  }
  CEDAR_LOG(FATAL) << "unknown distribution family: " << name;
  __builtin_unreachable();
}

namespace {

std::string FormatParams(const std::string& name, double p1, double p2, const char* n1,
                         const char* n2) {
  std::ostringstream s;
  s << name << "(" << n1 << "=" << p1 << ", " << n2 << "=" << p2 << ")";
  return s.str();
}

}  // namespace

// ---------------------------------------------------------------- LogNormal

LogNormalDistribution::LogNormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  CEDAR_CHECK_GT(sigma, 0.0) << "lognormal sigma must be positive";
}

double LogNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return NormalCdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  double z = (std::log(x) - mu_) / sigma_;
  return NormalPdf(z) / (x * sigma_);
}

double LogNormalDistribution::Quantile(double p) const {
  return std::exp(mu_ + sigma_ * NormalQuantile(p));
}

double LogNormalDistribution::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.NextGaussian());
}

double LogNormalDistribution::Mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormalDistribution::StdDev() const {
  return Mean() * std::sqrt(std::expm1(sigma_ * sigma_));
}

std::string LogNormalDistribution::ToString() const {
  return FormatParams("lognormal", mu_, sigma_, "mu", "sigma");
}

std::unique_ptr<Distribution> LogNormalDistribution::Clone() const {
  return std::make_unique<LogNormalDistribution>(*this);
}

// ------------------------------------------------------------------- Normal

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  CEDAR_CHECK_GT(stddev, 0.0) << "normal stddev must be positive";
}

double NormalDistribution::Cdf(double x) const { return NormalCdf((x - mean_) / stddev_); }

double NormalDistribution::Pdf(double x) const {
  return NormalPdf((x - mean_) / stddev_) / stddev_;
}

double NormalDistribution::Quantile(double p) const {
  return mean_ + stddev_ * NormalQuantile(p);
}

double NormalDistribution::Sample(Rng& rng) const {
  // Durations are nonnegative; clamp the (possibly negative) draw at zero.
  return std::max(0.0, mean_ + stddev_ * rng.NextGaussian());
}

std::string NormalDistribution::ToString() const {
  return FormatParams("normal", mean_, stddev_, "mean", "sd");
}

std::unique_ptr<Distribution> NormalDistribution::Clone() const {
  return std::make_unique<NormalDistribution>(*this);
}

// -------------------------------------------------------------- Exponential

ExponentialDistribution::ExponentialDistribution(double lambda) : lambda_(lambda) {
  CEDAR_CHECK_GT(lambda, 0.0) << "exponential rate must be positive";
}

double ExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-lambda_ * x);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) {
    return 0.0;
  }
  return lambda_ * std::exp(-lambda_ * x);
}

double ExponentialDistribution::Quantile(double p) const {
  CEDAR_CHECK(p > 0.0 && p < 1.0);
  return -std::log1p(-p) / lambda_;
}

double ExponentialDistribution::Sample(Rng& rng) const {
  return -std::log(rng.NextOpenDouble()) / lambda_;
}

std::string ExponentialDistribution::ToString() const {
  std::ostringstream s;
  s << "exponential(lambda=" << lambda_ << ")";
  return s.str();
}

std::unique_ptr<Distribution> ExponentialDistribution::Clone() const {
  return std::make_unique<ExponentialDistribution>(*this);
}

// ------------------------------------------------------------------- Pareto

ParetoDistribution::ParetoDistribution(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  CEDAR_CHECK_GT(xm, 0.0);
  CEDAR_CHECK_GT(alpha, 0.0);
}

double ParetoDistribution::Cdf(double x) const {
  if (x <= xm_) {
    return 0.0;
  }
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double ParetoDistribution::Pdf(double x) const {
  if (x < xm_) {
    return 0.0;
  }
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double ParetoDistribution::Quantile(double p) const {
  CEDAR_CHECK(p > 0.0 && p < 1.0);
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double ParetoDistribution::Sample(Rng& rng) const {
  return xm_ * std::pow(rng.NextOpenDouble(), -1.0 / alpha_);
}

double ParetoDistribution::Mean() const {
  if (alpha_ <= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDistribution::StdDev() const {
  if (alpha_ <= 2.0) {
    return std::numeric_limits<double>::infinity();
  }
  return xm_ / (alpha_ - 1.0) * std::sqrt(alpha_ / (alpha_ - 2.0));
}

std::string ParetoDistribution::ToString() const {
  return FormatParams("pareto", xm_, alpha_, "xm", "alpha");
}

std::unique_ptr<Distribution> ParetoDistribution::Clone() const {
  return std::make_unique<ParetoDistribution>(*this);
}

// ------------------------------------------------------------------ Weibull

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  CEDAR_CHECK_GT(shape, 0.0);
  CEDAR_CHECK_GT(scale, 0.0);
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double WeibullDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  double z = x / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) * std::exp(-std::pow(z, shape_));
}

double WeibullDistribution::Quantile(double p) const {
  CEDAR_CHECK(p > 0.0 && p < 1.0);
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double WeibullDistribution::Sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.NextOpenDouble()), 1.0 / shape_);
}

double WeibullDistribution::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDistribution::StdDev() const {
  double g1 = std::tgamma(1.0 + 1.0 / shape_);
  double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * std::sqrt(std::max(0.0, g2 - g1 * g1));
}

std::string WeibullDistribution::ToString() const {
  return FormatParams("weibull", shape_, scale_, "shape", "scale");
}

std::unique_ptr<Distribution> WeibullDistribution::Clone() const {
  return std::make_unique<WeibullDistribution>(*this);
}

// ------------------------------------------------------------------ Uniform

UniformDistribution::UniformDistribution(double a, double b) : a_(a), b_(b) {
  CEDAR_CHECK_LT(a, b) << "uniform requires a < b";
}

double UniformDistribution::Cdf(double x) const {
  return Clamp((x - a_) / (b_ - a_), 0.0, 1.0);
}

double UniformDistribution::Pdf(double x) const {
  return (x >= a_ && x <= b_) ? 1.0 / (b_ - a_) : 0.0;
}

double UniformDistribution::Quantile(double p) const { return a_ + p * (b_ - a_); }

double UniformDistribution::Sample(Rng& rng) const { return a_ + rng.NextDouble() * (b_ - a_); }

double UniformDistribution::StdDev() const { return (b_ - a_) / std::sqrt(12.0); }

std::string UniformDistribution::ToString() const {
  return FormatParams("uniform", a_, b_, "a", "b");
}

std::unique_ptr<Distribution> UniformDistribution::Clone() const {
  return std::make_unique<UniformDistribution>(*this);
}

// ---------------------------------------------------------------- Empirical

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  CEDAR_CHECK_GE(sorted_.size(), 2u) << "empirical distribution needs >= 2 samples";
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0.0;
  for (double v : sorted_) {
    sum += v;
  }
  mean_ = sum / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (double v : sorted_) {
    ss += (v - mean_) * (v - mean_);
  }
  stddev_ = std::sqrt(ss / static_cast<double>(sorted_.size() - 1));
}

double EmpiricalDistribution::Cdf(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::Pdf(double x) const {
  // Central finite difference of the ECDF over a data-scaled window.
  double h = std::max(1e-12, 0.01 * (sorted_.back() - sorted_.front()));
  return (Cdf(x + h) - Cdf(x - h)) / (2.0 * h);
}

double EmpiricalDistribution::Quantile(double p) const { return QuantileOfSorted(sorted_, p); }

double EmpiricalDistribution::Sample(Rng& rng) const {
  return QuantileOfSorted(sorted_, rng.NextDouble());
}

double EmpiricalDistribution::Mean() const { return mean_; }

double EmpiricalDistribution::StdDev() const { return stddev_; }

std::string EmpiricalDistribution::ToString() const {
  std::ostringstream s;
  s << "empirical(n=" << sorted_.size() << ", mean=" << mean_ << ", sd=" << stddev_ << ")";
  return s.str();
}

std::unique_ptr<Distribution> EmpiricalDistribution::Clone() const {
  return std::make_unique<EmpiricalDistribution>(*this);
}

// --------------------------------------------------------------------- Spec

std::string DistributionSpec::ToString() const {
  std::ostringstream s;
  s << DistributionFamilyName(family) << "(" << p1 << ", " << p2 << ")";
  return s.str();
}

std::unique_ptr<Distribution> MakeDistribution(const DistributionSpec& spec) {
  switch (spec.family) {
    case DistributionFamily::kLogNormal:
      return std::make_unique<LogNormalDistribution>(spec.p1, spec.p2);
    case DistributionFamily::kNormal:
      return std::make_unique<NormalDistribution>(spec.p1, spec.p2);
    case DistributionFamily::kExponential:
      return std::make_unique<ExponentialDistribution>(spec.p1);
    case DistributionFamily::kPareto:
      return std::make_unique<ParetoDistribution>(spec.p1, spec.p2);
    case DistributionFamily::kWeibull:
      return std::make_unique<WeibullDistribution>(spec.p1, spec.p2);
    case DistributionFamily::kUniform:
      return std::make_unique<UniformDistribution>(spec.p1, spec.p2);
    case DistributionFamily::kEmpirical:
      CEDAR_LOG(FATAL) << "DistributionSpec cannot describe an empirical distribution";
  }
  return nullptr;
}

}  // namespace cedar
