// Finite mixture distribution: weighted components with exact CDF/PDF,
// quantile by bisection, and component-then-value sampling.
//
// Motivation: real per-job task-duration distributions are often bimodal —
// a main mode plus a straggler mode (§2.2's systemic contentions). The
// mixture lets workloads model that shape while Cedar's learner still fits
// a log-normal, exercising the model-mismatch robustness the paper claims
// (§4.2.1: the fit "does seem to falter near the extreme tail" without
// hurting the result).

#ifndef CEDAR_SRC_STATS_MIXTURE_H_
#define CEDAR_SRC_STATS_MIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/stats/distribution.h"

namespace cedar {

class MixtureDistribution final : public Distribution {
 public:
  struct Component {
    double weight = 0.0;
    std::shared_ptr<const Distribution> distribution;
  };

  // Weights must be positive; they are normalized to sum to 1.
  explicit MixtureDistribution(std::vector<Component> components);

  // Convenience: two-component mixture (1-straggler_fraction) * body +
  // straggler_fraction * straggler.
  static MixtureDistribution WithStragglerMode(std::shared_ptr<const Distribution> body,
                                               std::shared_ptr<const Distribution> straggler,
                                               double straggler_fraction);

  DistributionFamily family() const override { return DistributionFamily::kEmpirical; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_MIXTURE_H_
