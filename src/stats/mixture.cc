#include "src/stats/mixture.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace cedar {

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)) {
  CEDAR_CHECK(!components_.empty()) << "mixture needs at least one component";
  double total = 0.0;
  for (const auto& component : components_) {
    CEDAR_CHECK(component.distribution != nullptr);
    CEDAR_CHECK_GT(component.weight, 0.0) << "component weights must be positive";
    total += component.weight;
  }
  for (auto& component : components_) {
    component.weight /= total;
  }
}

MixtureDistribution MixtureDistribution::WithStragglerMode(
    std::shared_ptr<const Distribution> body, std::shared_ptr<const Distribution> straggler,
    double straggler_fraction) {
  CEDAR_CHECK(straggler_fraction > 0.0 && straggler_fraction < 1.0)
      << "straggler fraction must be in (0,1): " << straggler_fraction;
  std::vector<Component> components;
  components.push_back({1.0 - straggler_fraction, std::move(body)});
  components.push_back({straggler_fraction, std::move(straggler)});
  return MixtureDistribution(std::move(components));
}

double MixtureDistribution::Cdf(double x) const {
  double cdf = 0.0;
  for (const auto& component : components_) {
    cdf += component.weight * component.distribution->Cdf(x);
  }
  return cdf;
}

double MixtureDistribution::Pdf(double x) const {
  double pdf = 0.0;
  for (const auto& component : components_) {
    pdf += component.weight * component.distribution->Pdf(x);
  }
  return pdf;
}

double MixtureDistribution::Quantile(double p) const {
  CEDAR_CHECK(p > 0.0 && p < 1.0);
  // Bracket using the extreme component quantiles, then bisect the CDF.
  double lo = components_[0].distribution->Quantile(p);
  double hi = lo;
  for (const auto& component : components_) {
    double q = component.distribution->Quantile(p);
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  if (hi - lo < 1e-300) {
    return lo;
  }
  // Widen slightly: the mixture quantile lies within [min, max] of the
  // component quantiles, but guard against boundary round-off.
  double pad = 1e-9 * (std::fabs(hi) + 1.0);
  lo -= pad;
  hi += pad;
  return FindRootBisect([&](double x) { return Cdf(x) - p; }, lo, hi,
                        1e-12 * (std::fabs(hi) + 1.0));
}

double MixtureDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double cumulative = 0.0;
  for (const auto& component : components_) {
    cumulative += component.weight;
    if (u < cumulative) {
      return component.distribution->Sample(rng);
    }
  }
  return components_.back().distribution->Sample(rng);
}

double MixtureDistribution::Mean() const {
  double mean = 0.0;
  for (const auto& component : components_) {
    mean += component.weight * component.distribution->Mean();
  }
  return mean;
}

double MixtureDistribution::StdDev() const {
  // Var = sum w_i (var_i + mean_i^2) - mean^2.
  double mean = Mean();
  double second_moment = 0.0;
  for (const auto& component : components_) {
    double m = component.distribution->Mean();
    double s = component.distribution->StdDev();
    second_moment += component.weight * (s * s + m * m);
  }
  return std::sqrt(std::max(0.0, second_moment - mean * mean));
}

std::string MixtureDistribution::ToString() const {
  std::ostringstream out;
  out << "mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i != 0) {
      out << " + ";
    }
    out << components_[i].weight << "*" << components_[i].distribution->ToString();
  }
  out << ")";
  return out.str();
}

std::unique_ptr<Distribution> MixtureDistribution::Clone() const {
  return std::make_unique<MixtureDistribution>(*this);
}

}  // namespace cedar
