// Special functions for the standard normal distribution: density, CDF, and
// quantile (inverse CDF). The quantile uses Acklam's rational approximation
// refined by one Halley step, giving ~1e-15 relative accuracy — these feed
// the order-statistic scores and all percentile fitting, so precision
// matters.

#ifndef CEDAR_SRC_STATS_NORMAL_MATH_H_
#define CEDAR_SRC_STATS_NORMAL_MATH_H_

namespace cedar {

// Standard normal density phi(x).
double NormalPdf(double x);

// Standard normal CDF Phi(x), accurate in both tails (erfc based).
double NormalCdf(double x);

// Inverse standard normal CDF; p must be in (0, 1).
double NormalQuantile(double p);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_NORMAL_MATH_H_
