// Deterministic pseudo-random number generation.
//
// All stochastic components in the repository draw from an explicitly seeded
// Rng so that every simulation, test and figure is bit-reproducible. The
// generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64;
// it is fast, has a 256-bit state and passes BigCrush.

#ifndef CEDAR_SRC_STATS_RNG_H_
#define CEDAR_SRC_STATS_RNG_H_

#include <cstdint>

namespace cedar {

class Rng {
 public:
  // Seeds the full state from |seed| via SplitMix64 (never all-zero).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in (0, 1): never returns exactly 0 (safe for log/quantile
  // transforms of unbounded distributions).
  double NextOpenDouble();

  // Uniform integer in [0, bound) without modulo bias. |bound| must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Standard normal deviate (Box–Muller with a cached spare).
  double NextGaussian();

  // Derives an independent child generator; used to give each simulated
  // query / machine its own stream without coupling their draws.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

// Deterministically derives the seed of substream |stream| of |seed| via two
// SplitMix64 rounds. Unlike Rng::Fork(), this never touches shared generator
// state, so callers can seed stream k without materializing streams 0..k-1 —
// the property the parallel experiment engine relies on to make per-query
// randomness independent of thread count and execution order.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_RNG_H_
