// Probability distributions of stage durations.
//
// The Cedar algorithm only ever touches distributions through this interface
// (CDF for the quality recursion, quantile/sampling for workload generation,
// moments for the Proportional-split baseline), which is what makes the
// system agnostic to the cause of performance variation (§1 of the paper).
//
// Families implemented: log-normal (the best fit for all four production
// traces, §4.2.1), normal (Figure 17), exponential, Pareto (tail model
// discussed in §4.2.1), Weibull and uniform (fitting candidates), and an
// empirical distribution backed by trace samples.

#ifndef CEDAR_SRC_STATS_DISTRIBUTION_H_
#define CEDAR_SRC_STATS_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/stats/rng.h"

namespace cedar {

enum class DistributionFamily {
  kLogNormal,
  kNormal,
  kExponential,
  kPareto,
  kWeibull,
  kUniform,
  kEmpirical,
};

// Human-readable family name ("lognormal", "normal", ...).
std::string DistributionFamilyName(DistributionFamily family);

// Inverse of DistributionFamilyName; fatal on unknown names.
DistributionFamily DistributionFamilyFromName(const std::string& name);

// Abstract duration distribution. Implementations are immutable and
// thread-compatible; Sample() mutates only the caller's Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual DistributionFamily family() const = 0;

  // P[X <= x].
  virtual double Cdf(double x) const = 0;

  // Density at x (finite-difference approximation for empirical).
  virtual double Pdf(double x) const = 0;

  // Inverse CDF; p must be in (0, 1).
  virtual double Quantile(double p) const = 0;

  // One random draw.
  virtual double Sample(Rng& rng) const = 0;

  virtual double Mean() const = 0;
  virtual double StdDev() const = 0;
  double Median() const { return Quantile(0.5); }

  // "lognormal(mu=2.77, sigma=0.84)" — used in logs and fitting reports.
  virtual std::string ToString() const = 0;

  virtual std::unique_ptr<Distribution> Clone() const = 0;
};

// Log-normal: ln X ~ N(mu, sigma^2).
class LogNormalDistribution final : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma);

  DistributionFamily family() const override { return DistributionFamily::kLogNormal; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

// Normal(mean, sd). Durations cannot be negative, so Sample() clamps at zero
// (Figure 17 uses sd twice the mean). For x >= 0 the clamped CDF equals the
// unclamped one, so the quality recursion stays exact.
class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mean, double stddev);

  DistributionFamily family() const override { return DistributionFamily::kNormal; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }
  double StdDev() const override { return stddev_; }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double mean_;
  double stddev_;
};

// Exponential with rate lambda.
class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double lambda);

  DistributionFamily family() const override { return DistributionFamily::kExponential; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return 1.0 / lambda_; }
  double StdDev() const override { return 1.0 / lambda_; }
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail; the model the
// paper cites for the extreme tail beyond p99.5).
class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double xm, double alpha);

  DistributionFamily family() const override { return DistributionFamily::kPareto; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;    // infinite for alpha <= 1
  double StdDev() const override;  // infinite for alpha <= 2
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double xm_;
  double alpha_;
};

// Weibull with shape k and scale lambda.
class WeibullDistribution final : public Distribution {
 public:
  WeibullDistribution(double shape, double scale);

  DistributionFamily family() const override { return DistributionFamily::kWeibull; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double shape_;
  double scale_;
};

// Uniform on [a, b].
class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(double a, double b);

  DistributionFamily family() const override { return DistributionFamily::kUniform; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override { return 0.5 * (a_ + b_); }
  double StdDev() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

 private:
  double a_;
  double b_;
};

// Distribution backed by observed samples (trace replay). CDF is the ECDF,
// quantiles interpolate between closest ranks, and Sample() draws by smooth
// inverse-transform so repeated values do not create atoms.
class EmpiricalDistribution final : public Distribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> samples);

  DistributionFamily family() const override { return DistributionFamily::kEmpirical; }
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string ToString() const override;
  std::unique_ptr<Distribution> Clone() const override;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_;
  double stddev_;
};

// A value-type description of a two-parameter distribution, convertible to a
// Distribution object. Used by policies and trace generators to pass learned
// or calibrated parameters around without heap traffic.
struct DistributionSpec {
  DistributionFamily family = DistributionFamily::kLogNormal;
  // Meaning per family: lognormal (mu, sigma) | normal (mean, sd) |
  // exponential (lambda, unused) | pareto (xm, alpha) | weibull (shape,
  // scale) | uniform (a, b). kEmpirical is not representable here.
  double p1 = 0.0;
  double p2 = 1.0;

  std::string ToString() const;
};

// Instantiates the distribution described by |spec| (fatal for kEmpirical).
std::unique_ptr<Distribution> MakeDistribution(const DistributionSpec& spec);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_DISTRIBUTION_H_
