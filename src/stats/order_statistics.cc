#include "src/stats/order_statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/logging.h"
#include "src/common/math_util.h"
#include "src/stats/normal_math.h"
#include "src/stats/rng.h"

namespace cedar {

double BlomNormalScore(int i, int k) {
  CEDAR_CHECK(i >= 1 && i <= k) << "order statistic index " << i << " out of range for k=" << k;
  constexpr double kAlpha = 0.375;
  double p = (static_cast<double>(i) - kAlpha) / (static_cast<double>(k) + 1.0 - 2.0 * kAlpha);
  return NormalQuantile(p);
}

double ExactNormalScore(int i, int k) {
  CEDAR_CHECK(i >= 1 && i <= k) << "order statistic index " << i << " out of range for k=" << k;
  // Symmetry: E[Z_(i);k] = -E[Z_(k+1-i);k]; the median of an odd sample is 0.
  if (2 * i - 1 == k) {
    return 0.0;
  }
  if (2 * i > k + 1) {
    return -ExactNormalScore(k + 1 - i, k);
  }

  double log_coeff = std::log(static_cast<double>(k)) + LogBinomial(k - 1, i - 1);
  auto integrand = [&](double z) {
    double cdf = NormalCdf(z);
    if (cdf <= 0.0 || cdf >= 1.0) {
      return 0.0;
    }
    double log_term = (i - 1) * std::log(cdf) + (k - i) * std::log1p(-cdf);
    double density = std::exp(log_coeff + log_term) * NormalPdf(z);
    return z * density;
  };

  // The order-statistic density is a narrow peak; blind adaptive quadrature
  // over a wide interval can sample only zeros and return 0. Integrate with
  // composite Simpson over the peak's effective support instead: the peak
  // sits near the Blom score and its standard deviation is approximately
  // sqrt(p(1-p)/(k+2)) / phi(peak) (delta method on the Beta(i, k-i+1)
  // fraction).
  double peak = BlomNormalScore(i, k);
  double p = static_cast<double>(i) / static_cast<double>(k + 1);
  double sd = std::sqrt(p * (1.0 - p) / static_cast<double>(k + 2)) / NormalPdf(peak);
  double lo = std::max(-9.0, peak - 14.0 * sd);
  double hi = std::min(9.0, peak + 14.0 * sd);
  constexpr int kIntervals = 4096;  // even; ~1e-10 accurate for smooth peaks
  double h = (hi - lo) / kIntervals;
  double sum = integrand(lo) + integrand(hi);
  for (int j = 1; j < kIntervals; ++j) {
    sum += integrand(lo + h * j) * ((j % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double ExponentialScore(int i, int k) {
  CEDAR_CHECK(i >= 1 && i <= k);
  double sum = 0.0;
  for (int j = 0; j < i; ++j) {
    sum += 1.0 / static_cast<double>(k - j);
  }
  return sum;
}

namespace {

std::mutex g_table_mutex;
std::map<std::pair<int, int>, std::unique_ptr<std::vector<double>>>& TableCache() {
  // Intentionally leaked process-lifetime cache (see g_table_mutex).
  static auto* cache =  // cedar-lint: allow(raw-new)
      new std::map<std::pair<int, int>, std::unique_ptr<std::vector<double>>>();
  return *cache;
}

}  // namespace

const std::vector<double>& NormalOrderScoreTable::Get(int k, OrderScoreMethod method) {
  CEDAR_CHECK_GE(k, 1);
  auto key = std::make_pair(k, static_cast<int>(method));
  {
    std::lock_guard<std::mutex> lock(g_table_mutex);
    auto it = TableCache().find(key);
    if (it != TableCache().end()) {
      return *it->second;
    }
  }
  // Compute outside the lock (exact integration for large k takes a moment);
  // a racing duplicate computation is harmless, first insert wins.
  auto table = std::make_unique<std::vector<double>>();
  table->reserve(static_cast<size_t>(k));
  for (int i = 1; i <= k; ++i) {
    table->push_back(method == OrderScoreMethod::kExact ? ExactNormalScore(i, k)
                                                        : BlomNormalScore(i, k));
  }
  std::lock_guard<std::mutex> lock(g_table_mutex);
  auto [it, inserted] = TableCache().emplace(key, std::move(table));
  return *it->second;
}

void NormalOrderScoreTable::ClearCacheForTesting() {
  std::lock_guard<std::mutex> lock(g_table_mutex);
  TableCache().clear();
}

std::vector<double> MonteCarloNormalScores(int k, int trials, uint64_t seed) {
  CEDAR_CHECK_GE(k, 1);
  CEDAR_CHECK_GE(trials, 1);
  Rng rng(seed);
  std::vector<double> sums(static_cast<size_t>(k), 0.0);
  std::vector<double> draw(static_cast<size_t>(k));
  for (int t = 0; t < trials; ++t) {
    for (auto& v : draw) {
      v = rng.NextGaussian();
    }
    std::sort(draw.begin(), draw.end());
    for (int i = 0; i < k; ++i) {
      sums[static_cast<size_t>(i)] += draw[static_cast<size_t>(i)];
    }
  }
  for (auto& s : sums) {
    s /= static_cast<double>(trials);
  }
  return sums;
}

}  // namespace cedar
