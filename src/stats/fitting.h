// Offline distribution-type fitting from percentile values (§4.2.1).
//
// The paper periodically fits percentile values of completed queries with the
// rriskDistributions R package to choose the distribution *type*; parameters
// are then learned online per query. This module reproduces that step: given
// (percentile, value) pairs, each candidate family is fitted by least squares
// in a linearizing transform of its quantile function, and families are
// ranked by relative RMS error of the reproduced percentile values.

#ifndef CEDAR_SRC_STATS_FITTING_H_
#define CEDAR_SRC_STATS_FITTING_H_

#include <string>
#include <vector>

#include "src/stats/distribution.h"

namespace cedar {

// One (p, value) observation: the p-quantile of the data is |value|.
struct PercentilePoint {
  double p = 0.0;      // in (0, 1)
  double value = 0.0;  // observed quantile
};

// A fitted candidate.
struct DistributionFit {
  DistributionSpec spec;
  // Relative RMS error across the input percentiles:
  // sqrt(mean(((fitted_quantile - value) / value)^2)).
  double relative_rms_error = 0.0;
  // Worst single-percentile relative error.
  double max_relative_error = 0.0;
};

class DistributionFitter {
 public:
  DistributionFitter();

  // Restricts candidates (default: lognormal, normal, exponential, pareto,
  // weibull, uniform).
  void SetCandidates(std::vector<DistributionFamily> families);

  // Fits every candidate family to the percentile points and returns fits
  // sorted by ascending relative RMS error. Families whose constraints are
  // violated by the data (e.g. nonpositive values for log-normal) are
  // omitted. Requires >= 2 points with p in (0,1) and distinct values.
  std::vector<DistributionFit> FitPercentiles(const std::vector<PercentilePoint>& points) const;

  // Convenience: extracts a standard percentile grid from raw samples and
  // fits it. |grid| defaults to {1,5,10,25,50,75,90,95,99}th percentiles.
  std::vector<DistributionFit> FitSamples(const std::vector<double>& samples,
                                          const std::vector<double>& grid = {}) const;

  // Best fit or fatal if nothing fits.
  DistributionFit BestFit(const std::vector<PercentilePoint>& points) const;

 private:
  std::vector<DistributionFamily> candidates_;
};

// Evaluates how well |spec| reproduces the percentile points (same error
// metrics as DistributionFit). Exposed for tests and EXPERIMENTS.md tables.
DistributionFit EvaluateFit(const DistributionSpec& spec,
                            const std::vector<PercentilePoint>& points);

// Kolmogorov-Smirnov statistic of |samples| against |dist|:
// sup_x |ECDF(x) - CDF(x)|. Used as the fit-quality check of the offline
// type-fitting step (and by tests to validate the synthetic workloads).
double KolmogorovSmirnovStatistic(std::vector<double> samples, const Distribution& dist);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_FITTING_H_
