// Parameter estimators for stage-duration distributions (§4.2.2).
//
// Two kinds:
//  * Order-statistics estimators (Cedar): fit the first r arrival times out
//    of k against expected order-statistic scores, removing early-finisher
//    bias. Log-normal and normal use the pairwise location-scale method from
//    the paper; exponential uses normalized spacings.
//  * Empirical estimators (the baseline Figure 9/10 compares against): plain
//    sample moments of the observed arrivals, which are biased low because
//    only the fastest r of k processes have reported.

#ifndef CEDAR_SRC_STATS_ESTIMATORS_H_
#define CEDAR_SRC_STATS_ESTIMATORS_H_

#include <optional>
#include <vector>

#include "src/stats/distribution.h"
#include "src/stats/order_statistics.h"

namespace cedar {

// A fitted location/scale pair. For log-normal these are (mu, sigma) of the
// log; for normal, (mean, sd); for exponential, (1/lambda, 1/lambda).
struct LocationScaleEstimate {
  double location = 0.0;
  double scale = 0.0;

  // Number of (time, score) pairs that contributed.
  int pairs_used = 0;
};

// Cedar's estimator for log-normal X: given the first |r| = times.size()
// order-statistic observations (ascending arrival times t_1 <= ... <= t_r)
// out of |k| processes, solves ln t_i = mu + sigma * m_{i,k} for each
// adjacent pair and averages the per-pair estimates (§4.2.2). Requires
// r >= 2 and strictly positive times; returns nullopt if fewer than one
// usable pair remains (e.g. all adjacent scores equal). Estimated sigma is
// clamped to be nonnegative.
std::optional<LocationScaleEstimate> EstimateLogNormalOrderStats(
    const std::vector<double>& times, int k,
    OrderScoreMethod method = OrderScoreMethod::kExact);

// Same pairwise method without the logarithm: fits Normal(mean, sd).
std::optional<LocationScaleEstimate> EstimateNormalOrderStats(
    const std::vector<double>& times, int k,
    OrderScoreMethod method = OrderScoreMethod::kExact);

// Exponential-rate estimator from the first r of k order statistics, using
// the Sukhatme–Rényi normalized spacings: D_i = (k - i + 1)(t_i - t_{i-1})
// are i.i.d. Exp(lambda), so lambda_hat = r / sum(D_i). Requires r >= 1.
// Returns the estimate as LocationScaleEstimate{1/lambda, 1/lambda}.
std::optional<LocationScaleEstimate> EstimateExponentialOrderStats(
    const std::vector<double>& times, int k);

// Biased baseline: sample mean / sd of ln(times) (log-normal) or of times
// (normal). Requires >= 2 samples; sd uses the n-1 denominator.
std::optional<LocationScaleEstimate> EstimateLogNormalEmpirical(const std::vector<double>& times);
std::optional<LocationScaleEstimate> EstimateNormalEmpirical(const std::vector<double>& times);

// Convenience dispatcher used by the online learner: order-statistics fit of
// |family| (kLogNormal, kNormal, or kExponential). Other families fall back
// to log-normal, matching the paper's observation that log-normal fits all
// production traces.
std::optional<DistributionSpec> FitSpecFromOrderStats(
    DistributionFamily family, const std::vector<double>& times, int k,
    OrderScoreMethod method = OrderScoreMethod::kExact);

// Dispatcher for the biased empirical baseline.
std::optional<DistributionSpec> FitSpecEmpirical(DistributionFamily family,
                                                 const std::vector<double>& times);

}  // namespace cedar

#endif  // CEDAR_SRC_STATS_ESTIMATORS_H_
