#include "src/stats/estimators.h"

#include <cmath>

#include "src/common/logging.h"

namespace cedar {
namespace {

// Shared pairwise location-scale fit against precomputed scores m_{i,k}.
// |values| are the (possibly log-transformed) observations.
std::optional<LocationScaleEstimate> PairwiseFit(const std::vector<double>& values,
                                                 const std::vector<double>& scores) {
  if (values.size() < 2) {
    return std::nullopt;
  }
  CEDAR_CHECK_LE(values.size(), scores.size());

  double location_sum = 0.0;
  double scale_sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    double dm = scores[i + 1] - scores[i];
    if (dm <= 0.0) {
      // Adjacent scores can coincide only through numeric degeneracy;
      // skip such pairs rather than dividing by ~0.
      continue;
    }
    double sigma_i = (values[i + 1] - values[i]) / dm;
    double mu_i = values[i] - sigma_i * scores[i];
    scale_sum += sigma_i;
    location_sum += mu_i;
    ++pairs;
  }
  if (pairs == 0) {
    return std::nullopt;
  }
  LocationScaleEstimate estimate;
  estimate.location = location_sum / pairs;
  // Ties in arrival times can drive individual sigma_i to 0; the average can
  // still be 0 if all observations are identical. Clamp to nonnegative.
  estimate.scale = std::max(0.0, scale_sum / pairs);
  estimate.pairs_used = pairs;
  return estimate;
}

bool IsSortedAscending(const std::vector<double>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<LocationScaleEstimate> EstimateLogNormalOrderStats(const std::vector<double>& times,
                                                                 int k, OrderScoreMethod method) {
  if (times.size() < 2 || static_cast<int>(times.size()) > k) {
    return std::nullopt;
  }
  CEDAR_CHECK(IsSortedAscending(times)) << "arrival times must be ascending";
  std::vector<double> logs;
  logs.reserve(times.size());
  for (double t : times) {
    if (t <= 0.0) {
      return std::nullopt;  // log-normal support is (0, inf)
    }
    logs.push_back(std::log(t));
  }
  return PairwiseFit(logs, NormalOrderScoreTable::Get(k, method));
}

std::optional<LocationScaleEstimate> EstimateNormalOrderStats(const std::vector<double>& times,
                                                              int k, OrderScoreMethod method) {
  if (times.size() < 2 || static_cast<int>(times.size()) > k) {
    return std::nullopt;
  }
  CEDAR_CHECK(IsSortedAscending(times)) << "arrival times must be ascending";
  return PairwiseFit(times, NormalOrderScoreTable::Get(k, method));
}

std::optional<LocationScaleEstimate> EstimateExponentialOrderStats(
    const std::vector<double>& times, int k) {
  if (times.empty() || static_cast<int>(times.size()) > k) {
    return std::nullopt;
  }
  CEDAR_CHECK(IsSortedAscending(times)) << "arrival times must be ascending";
  // Normalized spacings D_i = (k - i + 1)(t_(i) - t_(i-1)), t_(0) = 0, are
  // i.i.d. Exponential(lambda); the MLE from r of them is r / sum D_i.
  double total = 0.0;
  double prev = 0.0;
  int r = static_cast<int>(times.size());
  for (int i = 1; i <= r; ++i) {
    double spacing = times[static_cast<size_t>(i - 1)] - prev;
    if (spacing < 0.0) {
      return std::nullopt;
    }
    total += static_cast<double>(k - i + 1) * spacing;
    prev = times[static_cast<size_t>(i - 1)];
  }
  if (total <= 0.0) {
    return std::nullopt;
  }
  double mean = total / static_cast<double>(r);
  LocationScaleEstimate estimate;
  estimate.location = mean;  // 1/lambda
  estimate.scale = mean;
  estimate.pairs_used = r;
  return estimate;
}

namespace {

std::optional<LocationScaleEstimate> MomentsFit(const std::vector<double>& values) {
  if (values.size() < 2) {
    return std::nullopt;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) {
    ss += (v - mean) * (v - mean);
  }
  LocationScaleEstimate estimate;
  estimate.location = mean;
  estimate.scale = std::sqrt(ss / static_cast<double>(values.size() - 1));
  estimate.pairs_used = static_cast<int>(values.size());
  return estimate;
}

}  // namespace

std::optional<LocationScaleEstimate> EstimateLogNormalEmpirical(const std::vector<double>& times) {
  std::vector<double> logs;
  logs.reserve(times.size());
  for (double t : times) {
    if (t <= 0.0) {
      return std::nullopt;
    }
    logs.push_back(std::log(t));
  }
  return MomentsFit(logs);
}

std::optional<LocationScaleEstimate> EstimateNormalEmpirical(const std::vector<double>& times) {
  return MomentsFit(times);
}

namespace {

constexpr double kMinScale = 1e-9;

std::optional<DistributionSpec> ToSpec(DistributionFamily family,
                                       const std::optional<LocationScaleEstimate>& est) {
  if (!est.has_value()) {
    return std::nullopt;
  }
  DistributionSpec spec;
  spec.family = family;
  switch (family) {
    case DistributionFamily::kExponential:
      if (est->location <= 0.0) {
        return std::nullopt;
      }
      spec.p1 = 1.0 / est->location;
      spec.p2 = 0.0;
      break;
    default:
      spec.p1 = est->location;
      // A zero scale (identical observations) would make the distribution a
      // point mass the CDF machinery cannot represent; keep a tiny floor.
      spec.p2 = std::max(est->scale, kMinScale);
      break;
  }
  return spec;
}

}  // namespace

std::optional<DistributionSpec> FitSpecFromOrderStats(DistributionFamily family,
                                                      const std::vector<double>& times, int k,
                                                      OrderScoreMethod method) {
  switch (family) {
    case DistributionFamily::kNormal:
      return ToSpec(family, EstimateNormalOrderStats(times, k, method));
    case DistributionFamily::kExponential:
      return ToSpec(family, EstimateExponentialOrderStats(times, k));
    case DistributionFamily::kLogNormal:
    default:
      // The paper's traces all fit log-normal best (§4.2.1); unknown families
      // fall back to it.
      return ToSpec(DistributionFamily::kLogNormal,
                    EstimateLogNormalOrderStats(times, k, method));
  }
}

std::optional<DistributionSpec> FitSpecEmpirical(DistributionFamily family,
                                                 const std::vector<double>& times) {
  switch (family) {
    case DistributionFamily::kNormal:
      return ToSpec(family, EstimateNormalEmpirical(times));
    case DistributionFamily::kExponential: {
      auto est = EstimateNormalEmpirical(times);
      return ToSpec(DistributionFamily::kExponential, est);
    }
    case DistributionFamily::kLogNormal:
    default:
      return ToSpec(DistributionFamily::kLogNormal, EstimateLogNormalEmpirical(times));
  }
}

}  // namespace cedar
