#include "src/stats/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace cedar {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
  // xoshiro requires a non-zero state; SplitMix64 output of any seed gives
  // four words that are all zero with probability ~2^-256, but be explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ull;
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** step.
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextOpenDouble() {
  double u = NextDouble();
  // Map 0 to the smallest representable step so quantile transforms of
  // unbounded distributions never see exactly 0 or 1.
  if (u <= 0.0) {
    return 0x1.0p-53;
  }
  return u;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CEDAR_CHECK_GT(bound, 0u);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller on open uniforms.
  double u1 = NextOpenDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // First round mixes the root seed, second round folds the stream id in;
  // the Rng constructor adds a further SplitMix64 expansion on top.
  uint64_t state = seed;
  uint64_t mixed = SplitMix64(state);
  state = mixed ^ (stream + 0xD1B54A32D192ED03ull);
  return SplitMix64(state);
}

}  // namespace cedar
