// CSV reading and writing for trace files and bench output.
//
// The dialect is deliberately simple (comma separator, no embedded commas or
// quotes in fields) because all files are produced by this repository's own
// tools; the reader rejects anything it cannot round-trip.

#ifndef CEDAR_SRC_COMMON_CSV_H_
#define CEDAR_SRC_COMMON_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace cedar {

// An in-memory CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Index of |column| in the header, or -1 if absent.
  int ColumnIndex(const std::string& column) const;
};

// Writes rows of string or double cells, one Row() call per line.
class CsvWriter {
 public:
  // Writes to |path|; fatal if the file cannot be opened.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void Header(const std::vector<std::string>& columns);
  void Row(const std::vector<std::string>& cells);
  void NumericRow(const std::vector<double>& cells);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  size_t width_ = 0;
  bool header_written_ = false;
};

// Parses the whole file; fatal on missing file or ragged rows.
CsvDocument ReadCsvFile(const std::string& path);

// Parses CSV content from a string (used by tests).
CsvDocument ParseCsv(const std::string& content);

// Splits one CSV line on commas (no quoting support by design).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_CSV_H_
