// Time representation shared by the Cedar library, simulators and benches.
//
// The paper's workloads span three units (Facebook jobs in seconds, Google in
// milliseconds, Bing in microseconds). Rather than fixing a unit globally,
// all durations are plain doubles in *workload-defined* units; a workload's
// definition states its unit and every figure harness prints it. This mirrors
// the paper, which also switches units per workload.

#ifndef CEDAR_SRC_COMMON_TIME_TYPES_H_
#define CEDAR_SRC_COMMON_TIME_TYPES_H_

#include <limits>

namespace cedar {

// A point in simulated time or a duration, in workload-defined units.
using SimTime = double;

// Sentinel for "never" / unset timers.
inline constexpr SimTime kSimTimeInfinity = std::numeric_limits<double>::infinity();

// Returns true if |t| is a usable finite timestamp.
inline bool IsFiniteTime(SimTime t) {
  return t < kSimTimeInfinity && t > -kSimTimeInfinity;
}

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_TIME_TYPES_H_
