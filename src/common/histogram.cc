#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "src/common/logging.h"

namespace cedar {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  CEDAR_CHECK_LT(lo, hi);
  CEDAR_CHECK_GE(bins, 1);
  counts_.assign(static_cast<size_t>(bins), 0);
}

Histogram Histogram::Logarithmic(double lo, double hi, int bins) {
  CEDAR_CHECK_GT(lo, 0.0) << "log-spaced bins need lo > 0";
  CEDAR_CHECK_LT(lo, hi);
  CEDAR_CHECK_GE(bins, 1);
  Histogram histogram;
  histogram.logarithmic_ = true;
  histogram.lo_ = lo;
  histogram.hi_ = hi;
  histogram.counts_.assign(static_cast<size_t>(bins), 0);
  return histogram;
}

void Histogram::Add(double value) {
  ++total_;
  double position;
  if (logarithmic_) {
    if (value < lo_) {
      ++underflow_;
      return;
    }
    position = std::log(value / lo_) / std::log(hi_ / lo_);
  } else {
    position = (value - lo_) / (hi_ - lo_);
  }
  if (position < 0.0) {
    ++underflow_;
    return;
  }
  if (position >= 1.0) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<size_t>(position * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double value : values) {
    Add(value);
  }
}

long long Histogram::bin_count(int bin) const {
  CEDAR_CHECK(bin >= 0 && bin < num_bins());
  return counts_[static_cast<size_t>(bin)];
}

std::pair<double, double> Histogram::bin_bounds(int bin) const {
  CEDAR_CHECK(bin >= 0 && bin < num_bins());
  double f0 = static_cast<double>(bin) / num_bins();
  double f1 = static_cast<double>(bin + 1) / num_bins();
  if (logarithmic_) {
    double ratio = hi_ / lo_;
    return {lo_ * std::pow(ratio, f0), lo_ * std::pow(ratio, f1)};
  }
  return {lo_ + f0 * (hi_ - lo_), lo_ + f1 * (hi_ - lo_)};
}

void Histogram::Print(std::ostream& out, int width) const {
  long long max_count = 1;
  for (long long count : counts_) {
    max_count = std::max(max_count, count);
  }
  if (underflow_ > 0) {
    out << "      < " << std::setw(10) << lo_ << "  " << underflow_ << "\n";
  }
  for (int bin = 0; bin < num_bins(); ++bin) {
    auto [lower, upper] = bin_bounds(bin);
    long long count = bin_count(bin);
    int bar = static_cast<int>(static_cast<double>(count) * width / max_count);
    out << std::setw(10) << std::setprecision(4) << lower << " - " << std::setw(10) << upper
        << "  " << std::string(static_cast<size_t>(bar), '#') << " " << count << "\n";
  }
  if (overflow_ > 0) {
    out << "     >= " << std::setw(10) << hi_ << "  " << overflow_ << "\n";
  }
}

}  // namespace cedar
