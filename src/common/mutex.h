// Annotated mutex wrappers: cedar::Mutex / cedar::MutexLock / cedar::CondVar.
//
// std::mutex carries no clang `capability` attribute, so members cannot be
// CEDAR_GUARDED_BY a std::mutex without -Wthread-safety-attributes noise.
// These thin wrappers add the attributes (and nothing else: Mutex is
// BasicLockable, so standard lock machinery still composes) and are the
// sanctioned lock types for Cedar's concurrent subsystems; DESIGN.md §12.
//
// CondVar deliberately has no predicate-taking Wait overload: clang analyzes
// a predicate lambda as a separate function, so guarded reads inside it
// would warn. Callers write the loop explicitly —
//
//   MutexLock lock(mutex_);
//   while (!condition_) {
//     cv_.Wait(lock);
//   }
//
// — which the analysis (and the lockgraph pass) reads naturally.

#ifndef CEDAR_SRC_COMMON_MUTEX_H_
#define CEDAR_SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace cedar {

class CondVar;

// A std::mutex annotated as a clang thread-safety capability. Lowercase
// lock/unlock/try_lock keep it BasicLockable for std::unique_lock.
class CEDAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CEDAR_ACQUIRE() { raw_.lock(); }
  void unlock() CEDAR_RELEASE() { raw_.unlock(); }
  bool try_lock() CEDAR_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

// RAII lock for Mutex, annotated as a scoped capability so clang tracks the
// held set across the guard's lifetime.
class CEDAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CEDAR_ACQUIRE(mutex) : lock_(mutex) {}
  ~MutexLock() CEDAR_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<Mutex> lock_;
};

// Condition variable over Mutex (condition_variable_any: Mutex is
// BasicLockable but not std::mutex). Wait atomically releases and reacquires
// the lock the MutexLock holds; the capability stays held from the analyzer's
// point of view, which is exactly the while-loop contract above.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_MUTEX_H_
