#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"

namespace cedar {

TablePrinter::TablePrinter(std::vector<std::string> columns) : columns_(std::move(columns)) {
  CEDAR_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CEDAR_CHECK_EQ(cells.size(), columns_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  std::ostringstream s;
  if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 1e15) {
    s << static_cast<long long>(value);
  } else {
    s << std::fixed << std::setprecision(precision) << value;
  }
  return s.str();
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    text.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(text));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 != cells.size()) {
        out << "  ";
      }
    }
    out << '\n';
  };

  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBanner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace cedar
