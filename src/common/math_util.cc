#include "src/common/math_util.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cedar {

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

double Clamp(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

double LogBinomial(int n, int k) {
  CEDAR_CHECK(k >= 0 && k <= n) << "LogBinomial(" << n << ", " << k << ")";
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

namespace {

double SimpsonRule(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRecurse(const std::function<double(double)>& f, double a, double fa,
                              double b, double fb, double m, double fm, double whole, double tol,
                              int depth) {
  double lm = 0.5 * (a + m);
  double rm = 0.5 * (m + b);
  double flm = f(lm);
  double frm = f(rm);
  double left = SimpsonRule(a, fa, m, fm, flm);
  double right = SimpsonRule(m, fm, b, fb, frm);
  double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpsonRecurse(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         AdaptiveSimpsonRecurse(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double IntegrateAdaptiveSimpson(const std::function<double(double)>& f, double a, double b,
                                double tol, int max_depth) {
  if (a == b) {
    return 0.0;
  }
  double fa = f(a);
  double fb = f(b);
  double m = 0.5 * (a + b);
  double fm = f(m);
  double whole = SimpsonRule(a, fa, b, fb, fm);
  return AdaptiveSimpsonRecurse(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double FindRootBisect(const std::function<double(double)>& f, double lo, double hi, double tol,
                      int max_iters) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) {
    return lo;
  }
  if (fhi == 0.0) {
    return hi;
  }
  CEDAR_CHECK(flo * fhi < 0.0) << "FindRootBisect: no sign change on [" << lo << ", " << hi
                               << "] (f=" << flo << ", " << fhi << ")";
  for (int i = 0; i < max_iters && hi - lo > tol; ++i) {
    double mid = 0.5 * (lo + hi);
    double fmid = f(mid);
    if (fmid == 0.0) {
      return mid;
    }
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  CEDAR_CHECK_EQ(xs_.size(), ys_.size());
  CEDAR_CHECK(!xs_.empty());
  for (size_t i = 1; i < xs_.size(); ++i) {
    CEDAR_CHECK_LT(xs_[i - 1], xs_[i]) << "PiecewiseLinear grid must be strictly ascending";
  }
}

PiecewiseLinear PiecewiseLinear::FromUniform(double x0, double step, std::vector<double> ys) {
  CEDAR_CHECK_GT(step, 0.0);
  CEDAR_CHECK(!ys.empty());
  PiecewiseLinear p;
  p.uniform_ = true;
  p.x0_ = x0;
  p.step_ = step;
  p.ys_ = std::move(ys);
  return p;
}

double PiecewiseLinear::min_x() const {
  CEDAR_CHECK(!ys_.empty());
  return uniform_ ? x0_ : xs_.front();
}

double PiecewiseLinear::max_x() const {
  CEDAR_CHECK(!ys_.empty());
  return uniform_ ? x0_ + step_ * static_cast<double>(ys_.size() - 1) : xs_.back();
}

double PiecewiseLinear::operator()(double x) const {
  CEDAR_CHECK(!ys_.empty()) << "evaluating empty PiecewiseLinear";
  if (uniform_) {
    if (x <= x0_) {
      return ys_.front();
    }
    double pos = (x - x0_) / step_;
    auto idx = static_cast<size_t>(pos);
    if (idx + 1 >= ys_.size()) {
      return ys_.back();
    }
    double frac = pos - static_cast<double>(idx);
    return Lerp(ys_[idx], ys_[idx + 1], frac);
  }
  if (x <= xs_.front()) {
    return ys_.front();
  }
  if (x >= xs_.back()) {
    return ys_.back();
  }
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  size_t hi = static_cast<size_t>(it - xs_.begin());
  size_t lo = hi - 1;
  double frac = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return Lerp(ys_[lo], ys_[hi], frac);
}

double QuantileOfSorted(const std::vector<double>& sorted, double p) {
  CEDAR_CHECK(!sorted.empty());
  CEDAR_CHECK(p >= 0.0 && p <= 1.0) << "quantile p out of range: " << p;
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double pos = p * static_cast<double>(sorted.size() - 1);
  auto idx = static_cast<size_t>(pos);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  double frac = pos - static_cast<double>(idx);
  return Lerp(sorted[idx], sorted[idx + 1], frac);
}

}  // namespace cedar
