// Minimal leveled logging and check macros.
//
// Usage:
//   CEDAR_LOG(INFO) << "queries=" << n;
//   CEDAR_CHECK(x > 0) << "x must be positive, got " << x;
//   CEDAR_CHECK_NEAR(a, b, 1e-9);
//
// CHECK failures print the message and abort: they guard programming errors,
// not recoverable conditions (Core Guidelines E.12 / I.6).

#ifndef CEDAR_SRC_COMMON_LOGGING_H_
#define CEDAR_SRC_COMMON_LOGGING_H_

#include <cmath>
#include <cstdlib>
#include <iosfwd>
#include <sstream>
#include <string>

namespace cedar {

enum class LogSeverity {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum severity that is actually emitted (atomic: any thread may
// read or flip it). Defaults to kInfo, or to $CEDAR_LOG_LEVEL when that env
// var holds a valid level at the first log call.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Parses a severity name ("debug", "info", "warning", "error", "fatal",
// case-insensitive, or the numeric value 0-4). Returns |fallback| for null
// or unrecognized input.
LogSeverity ParseLogSeverity(const char* text, LogSeverity fallback);

// One in-flight log statement. Flushes (and aborts for kFatal) in the
// destructor, so the streaming form composes naturally.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the severity is below the threshold.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace cedar

#define CEDAR_LOG_SEVERITY_DEBUG ::cedar::LogSeverity::kDebug
#define CEDAR_LOG_SEVERITY_INFO ::cedar::LogSeverity::kInfo
#define CEDAR_LOG_SEVERITY_WARNING ::cedar::LogSeverity::kWarning
#define CEDAR_LOG_SEVERITY_ERROR ::cedar::LogSeverity::kError
#define CEDAR_LOG_SEVERITY_FATAL ::cedar::LogSeverity::kFatal

#define CEDAR_LOG(severity)                                             \
  (CEDAR_LOG_SEVERITY_##severity < ::cedar::GetMinLogSeverity())        \
      ? (void)0                                                         \
      : ::cedar::LogMessageVoidify() &                                  \
            ::cedar::LogMessage(CEDAR_LOG_SEVERITY_##severity, __FILE__, __LINE__).stream()

#define CEDAR_CHECK(condition)                                                       \
  (condition) ? (void)0                                                              \
              : ::cedar::LogMessageVoidify() &                                       \
                    ::cedar::LogMessage(::cedar::LogSeverity::kFatal, __FILE__, __LINE__) \
                        .stream()                                                    \
                        << "Check failed: " #condition " "

#define CEDAR_CHECK_EQ(a, b) CEDAR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_NE(a, b) CEDAR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_LT(a, b) CEDAR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_LE(a, b) CEDAR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_GT(a, b) CEDAR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_GE(a, b) CEDAR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CEDAR_CHECK_NEAR(a, b, tol) \
  CEDAR_CHECK(std::fabs((a) - (b)) <= (tol)) << "(" << (a) << " vs " << (b) << ") "

#endif  // CEDAR_SRC_COMMON_LOGGING_H_
