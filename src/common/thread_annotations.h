// Clang thread-safety-analysis annotation macros (DESIGN.md §12).
//
// These wrap the capability attributes understood by clang's -Wthread-safety
// so Cedar's concurrency-heavy subsystems (ThreadPool, MetricsRegistry,
// TraceCollector, WaitTableStore) can declare which mutex guards which field
// and which functions require a lock to be held. Under clang with the
// CEDAR_THREAD_SAFETY CMake option the compiler verifies the discipline at
// compile time; under every other compiler the macros expand to nothing.
//
// The homegrown cross-TU `lockgraph` pass (tools/lint/lockgraph.h) reads
// CEDAR_REQUIRES annotations *lexically*, so they inform both analyzers:
// clang checks each TU precisely, lockgraph checks lock ordering globally.
//
// Annotate with the cedar::Mutex / cedar::MutexLock / cedar::CondVar wrappers
// from src/common/mutex.h — std::mutex itself carries no capability
// attribute, so GUARDED_BY(a_std_mutex) would warn under clang.

#ifndef CEDAR_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define CEDAR_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CEDAR_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CEDAR_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

// On a class: instances are lockable capabilities ("mutex" names the kind).
#define CEDAR_CAPABILITY(x) CEDAR_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On a class: RAII object that acquires a capability in its constructor and
// releases it in its destructor (lock_guard-shaped types).
#define CEDAR_SCOPED_CAPABILITY CEDAR_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On a data member: reads and writes require holding the given mutex.
#define CEDAR_GUARDED_BY(x) CEDAR_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On a pointer member: the pointed-to data is guarded by the given mutex.
#define CEDAR_PT_GUARDED_BY(x) CEDAR_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On a function: the caller must hold the listed mutexes when calling.
#define CEDAR_REQUIRES(...) \
  CEDAR_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the listed mutexes (empty list on a
// scoped-capability method means "whatever this object holds").
#define CEDAR_ACQUIRE(...) \
  CEDAR_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CEDAR_RELEASE(...) \
  CEDAR_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// On a function returning bool: acquires the mutex when returning the given
// value.
#define CEDAR_TRY_ACQUIRE(...) \
  CEDAR_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed mutexes (deadlock
// documentation for functions that acquire them internally).
#define CEDAR_EXCLUDES(...) CEDAR_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the given mutex.
#define CEDAR_RETURN_CAPABILITY(x) CEDAR_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: turns the analysis off for one function (initialization and
// teardown paths where the discipline is enforced by construction).
#define CEDAR_NO_THREAD_SAFETY_ANALYSIS \
  CEDAR_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CEDAR_SRC_COMMON_THREAD_ANNOTATIONS_H_
