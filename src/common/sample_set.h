// SampleSet: accumulates scalar observations and answers summary queries
// (mean, stddev, percentiles, ECDF). Used by the metric collectors and the
// figure harnesses.

#ifndef CEDAR_SRC_COMMON_SAMPLE_SET_H_
#define CEDAR_SRC_COMMON_SAMPLE_SET_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace cedar {

class SampleSet {
 public:
  SampleSet() = default;
  explicit SampleSet(std::vector<double> values);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  double Min() const;
  double Max() const;
  double Sum() const;

  // p in [0, 1]; linear interpolation between closest ranks.
  double Quantile(double p) const;
  double Median() const { return Quantile(0.5); }

  // Empirical CDF evaluated at |x|: fraction of samples <= x.
  double Ecdf(double x) const;

  // Returns (value, cumulative fraction) pairs suitable for printing a CDF
  // with at most |max_points| points (subsampled evenly by rank).
  std::vector<std::pair<double, double>> CdfPoints(size_t max_points = 100) const;

  // All values in insertion order (not sorted).
  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_SAMPLE_SET_H_
