#include "src/common/csv.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "src/common/logging.h"

namespace cedar {

int CsvDocument::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
  CEDAR_CHECK(impl_->out.good()) << "cannot open CSV output: " << path;
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::Header(const std::vector<std::string>& columns) {
  CEDAR_CHECK(!header_written_) << "CSV header written twice";
  header_written_ = true;
  width_ = columns.size();
  Row(columns);
  header_written_ = true;  // Row() does not reset it; keep the invariant clear.
}

void CsvWriter::Row(const std::vector<std::string>& cells) {
  if (width_ != 0) {
    CEDAR_CHECK_EQ(cells.size(), width_) << "ragged CSV row";
  } else {
    width_ = cells.size();
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    CEDAR_CHECK(cells[i].find(',') == std::string::npos &&
                cells[i].find('\n') == std::string::npos)
        << "CSV cell contains separator: " << cells[i];
    if (i != 0) {
      impl_->out << ',';
    }
    impl_->out << cells[i];
  }
  impl_->out << '\n';
}

void CsvWriter::NumericRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream s;
    s.precision(12);
    s << v;
    text.push_back(s.str());
  }
  Row(text);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

CsvDocument ParseCsv(const std::string& content) {
  CsvDocument doc;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    auto cells = SplitCsvLine(line);
    if (first) {
      doc.header = std::move(cells);
      first = false;
      continue;
    }
    CEDAR_CHECK_EQ(cells.size(), doc.header.size()) << "ragged CSV row: " << line;
    doc.rows.push_back(std::move(cells));
  }
  return doc;
}

CsvDocument ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  CEDAR_CHECK(in.good()) << "cannot open CSV input: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace cedar
