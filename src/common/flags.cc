#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"

namespace cedar {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

FlagSet::FlagSet(std::string program_doc) : program_doc_(std::move(program_doc)) {}

double* FlagSet::AddDouble(const std::string& name, double default_value, const std::string& help) {
  double_storage_.push_back(std::make_unique<double>(default_value));
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.default_text = std::to_string(default_value);
  flag.double_value = double_storage_.back().get();
  flags_[name] = flag;
  return flag.double_value;
}

int64_t* FlagSet::AddInt(const std::string& name, int64_t default_value, const std::string& help) {
  int_storage_.push_back(std::make_unique<int64_t>(default_value));
  Flag flag;
  flag.type = Type::kInt;
  flag.help = help;
  flag.default_text = std::to_string(default_value);
  flag.int_value = int_storage_.back().get();
  flags_[name] = flag;
  return flag.int_value;
}

bool* FlagSet::AddBool(const std::string& name, bool default_value, const std::string& help) {
  bool_storage_.push_back(std::make_unique<bool>(default_value));
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.default_text = default_value ? "true" : "false";
  flag.bool_value = bool_storage_.back().get();
  flags_[name] = flag;
  return flag.bool_value;
}

std::string* FlagSet::AddString(const std::string& name, const std::string& default_value,
                                const std::string& help) {
  string_storage_.push_back(std::make_unique<std::string>(default_value));
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.default_text = default_value.empty() ? "\"\"" : default_value;
  flag.string_value = string_storage_.back().get();
  flags_[name] = flag;
  return flag.string_value;
}

void FlagSet::SetFlagValue(const std::string& name, Flag& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      CEDAR_CHECK(end != value.c_str() && *end == '\0' && errno == 0)
          << "bad double for --" << name << ": " << value;
      *flag.double_value = v;
      break;
    }
    case Type::kInt: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      CEDAR_CHECK(end != value.c_str() && *end == '\0' && errno == 0)
          << "bad int for --" << name << ": " << value;
      *flag.int_value = static_cast<int64_t>(v);
      break;
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        *flag.bool_value = false;
      } else {
        CEDAR_LOG(FATAL) << "bad bool for --" << name << ": " << value;
      }
      break;
    }
    case Type::kString:
      *flag.string_value = value;
      break;
  }
}

std::vector<std::string> FlagSet::Parse(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "cedar";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      std::exit(0);
    }
    if (!StartsWith(arg, "--")) {
      positional.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = flags_.find(name);
    if (it == flags_.end() && !has_value && StartsWith(name, "no")) {
      // --noflag for booleans.
      auto no_it = flags_.find(name.substr(2));
      if (no_it != flags_.end() && no_it->second.type == Type::kBool) {
        *no_it->second.bool_value = false;
        continue;
      }
    }
    CEDAR_CHECK(it != flags_.end()) << "unknown flag --" << name << "\n" << Usage();

    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        *flag.bool_value = true;
        continue;
      }
      CEDAR_CHECK(i + 1 < argc) << "flag --" << name << " needs a value";
      value = argv[++i];
    }
    SetFlagValue(name, flag, value);
  }
  return positional;
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  out << program_doc_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_text << ")\n      " << flag.help
        << "\n";
  }
  return out.str();
}

}  // namespace cedar
