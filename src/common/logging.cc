#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cedar {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
std::mutex g_log_mutex;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogSeverity GetMinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace cedar
