#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cedar {
namespace {

// Initialized from $CEDAR_LOG_LEVEL once, before any logging happens.
LogSeverity InitialSeverity() {
  return ParseLogSeverity(std::getenv("CEDAR_LOG_LEVEL"), LogSeverity::kInfo);
}

std::atomic<LogSeverity> g_min_severity{InitialSeverity()};
std::mutex g_log_mutex;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogSeverity GetMinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogSeverity ParseLogSeverity(const char* text, LogSeverity fallback) {
  if (text == nullptr) {
    return fallback;
  }
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") {
    return LogSeverity::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogSeverity::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogSeverity::kWarning;
  }
  if (lower == "error" || lower == "3") {
    return LogSeverity::kError;
  }
  if (lower == "fatal" || lower == "4") {
    return LogSeverity::kFatal;
  }
  return fallback;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace cedar
