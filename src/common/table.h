// Aligned console tables for the figure-reproduction harnesses.
//
// Every bench binary prints the paper's rows/series through this printer so
// the output format is uniform and diffable:
//
//   TablePrinter t({"deadline_s", "baseline", "cedar", "ideal", "improvement_%"});
//   t.AddRow({"500", "0.21", "0.42", "0.43", "100.0"});
//   t.Print(std::cout);

#ifndef CEDAR_SRC_COMMON_TABLE_H_
#define CEDAR_SRC_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace cedar {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  // Adds a pre-formatted row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with |precision| significant decimals.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  // Writes the aligned table, header underlined with dashes.
  void Print(std::ostream& out) const;

  size_t row_count() const { return rows_.size(); }

  // Formats one double the same way AddNumericRow does (for mixed rows).
  static std::string FormatDouble(double value, int precision = 4);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner ("== Figure 7: ... ==") so multi-table benches
// stay readable when concatenated in bench_output.txt.
void PrintBanner(std::ostream& out, const std::string& title);

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_TABLE_H_
