#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace cedar {

ThreadPool::ThreadPool(int num_threads) {
  CEDAR_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& thread : threads_) {
    thread.join();
  }
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::Submit(std::function<void()> task) {
  CEDAR_CHECK(task != nullptr);
  size_t target;
  {
    MutexLock lock(state_mutex_);
    CEDAR_CHECK(!stopping_) << "Submit after shutdown began";
    target = next_submit_;
    next_submit_ = (next_submit_ + 1) % workers_.size();
  }
  {
    MutexLock lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  // The task must be findable in a deque *before* pending_ rises: a worker
  // whose wait predicate sees pending_ > 0 will go looking for it.
  {
    MutexLock lock(state_mutex_);
    ++outstanding_;
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  stat_submitted_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.NotifyOne();
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.submitted = stat_submitted_.load(std::memory_order_relaxed);
  stats.executed_local = stat_executed_local_.load(std::memory_order_relaxed);
  stats.stolen = stat_stolen_.load(std::memory_order_relaxed);
  stats.idle_waits = stat_idle_waits_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::Wait() {
  MutexLock lock(state_mutex_);
  while (outstanding_ != 0) {
    idle_cv_.Wait(lock);
  }
}

std::function<void()> ThreadPool::TakeTask(size_t worker_index) {
  // Own deque first: LIFO for locality.
  {
    Worker& self = *workers_[worker_index];
    MutexLock lock(self.mutex);
    if (!self.tasks.empty()) {
      auto task = std::move(self.tasks.back());
      self.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      stat_executed_local_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal the oldest task of the first non-empty victim, scanning from the
  // next worker so contention spreads.
  for (size_t step = 1; step < workers_.size(); ++step) {
    Worker& victim = *workers_[(worker_index + step) % workers_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      stat_stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> task = TakeTask(worker_index);
    if (task == nullptr) {
      stat_idle_waits_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(state_mutex_);
      // No lost wakeups: any submitted-but-untaken task keeps pending_ > 0,
      // and pending_ only rises under state_mutex_, so a worker cannot slip
      // into Wait() between the push and the notify without seeing it.
      while (!stopping_ && pending_.load(std::memory_order_relaxed) <= 0) {
        work_cv_.Wait(lock);
      }
      if (stopping_) {
        return;
      }
      continue;
    }
    task();
    {
      MutexLock lock(state_mutex_);
      --outstanding_;
      if (outstanding_ == 0) {
        idle_cv_.NotifyAll();
      }
    }
  }
}

int ResolveThreadCount(int requested) {
  return requested >= 1 ? requested : ThreadPool::HardwareThreads();
}

void ParallelForChunks(ThreadPool& pool, long long total, int chunks,
                       const std::function<void(long long, long long, int)>& body) {
  CEDAR_CHECK_GE(total, 0);
  CEDAR_CHECK_GE(chunks, 1);
  if (total == 0) {
    return;
  }
  long long n_chunks = std::min<long long>(chunks, total);
  long long base = total / n_chunks;
  long long remainder = total % n_chunks;
  long long begin = 0;
  for (long long c = 0; c < n_chunks; ++c) {
    long long size = base + (c < remainder ? 1 : 0);
    long long end = begin + size;
    pool.Submit([&body, begin, end, c] { body(begin, end, static_cast<int>(c)); });
    begin = end;
  }
  pool.Wait();
}

void ParallelForChunksShared(ThreadPool* pool, long long total, int chunks,
                             const std::function<void(long long, long long, int)>& body) {
  CEDAR_CHECK_GE(total, 0);
  CEDAR_CHECK_GE(chunks, 1);
  if (total == 0) {
    return;
  }
  const long long n_chunks = std::min<long long>(chunks, total);
  const long long base = total / n_chunks;
  const long long remainder = total % n_chunks;
  if (pool == nullptr || pool->num_threads() <= 1 || n_chunks <= 1) {
    long long begin = 0;
    for (long long c = 0; c < n_chunks; ++c) {
      long long end = begin + base + (c < remainder ? 1 : 0);
      body(begin, end, static_cast<int>(c));
      begin = end;
    }
    return;
  }

  // Helpers may be scheduled after the caller has already finished every
  // chunk (a busy pool runs them arbitrarily late), so the shared state is
  // refcounted and late helpers see next >= n_chunks and return untouched.
  struct State {
    std::function<void(long long, long long, int)> body;
    long long n_chunks = 0;
    long long base = 0;
    long long remainder = 0;
    std::atomic<long long> next{0};
    Mutex mutex;
    CondVar done_cv;
    long long done CEDAR_GUARDED_BY(mutex) = 0;  // chunks fully executed
  };
  auto state = std::make_shared<State>();
  state->body = body;
  state->n_chunks = n_chunks;
  state->base = base;
  state->remainder = remainder;

  auto run_chunks = [](State& s) {
    for (;;) {
      const long long c = s.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.n_chunks) {
        return;
      }
      const long long begin = c * s.base + std::min(c, s.remainder);
      const long long end = begin + s.base + (c < s.remainder ? 1 : 0);
      s.body(begin, end, static_cast<int>(c));
      MutexLock lock(s.mutex);
      if (++s.done == s.n_chunks) {
        s.done_cv.NotifyAll();
      }
    }
  };

  // n_chunks - 1 helpers at most: the caller is itself a full participant.
  const int helpers =
      static_cast<int>(std::min<long long>(pool->num_threads(), n_chunks - 1));
  for (int i = 0; i < helpers; ++i) {
    pool->Submit([state, run_chunks] { run_chunks(*state); });
  }
  run_chunks(*state);
  MutexLock lock(state->mutex);
  while (state->done != state->n_chunks) {
    state->done_cv.Wait(lock);
  }
}

}  // namespace cedar
