#include "src/common/sample_set.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace cedar {

SampleSet::SampleSet(std::vector<double> values) : values_(std::move(values)) {}

void SampleSet::Add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

void SampleSet::AddAll(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_valid_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::Mean() const {
  CEDAR_CHECK(!values_.empty());
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double SampleSet::StdDev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double ss = 0.0;
  for (double v : values_) {
    ss += (v - mean) * (v - mean);
  }
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double SampleSet::Min() const {
  EnsureSorted();
  CEDAR_CHECK(!sorted_.empty());
  return sorted_.front();
}

double SampleSet::Max() const {
  EnsureSorted();
  CEDAR_CHECK(!sorted_.empty());
  return sorted_.back();
}

double SampleSet::Sum() const {
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum;
}

double SampleSet::Quantile(double p) const {
  EnsureSorted();
  return QuantileOfSorted(sorted_, p);
}

double SampleSet::Ecdf(double x) const {
  EnsureSorted();
  CEDAR_CHECK(!sorted_.empty());
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> SampleSet::CdfPoints(size_t max_points) const {
  EnsureSorted();
  std::vector<std::pair<double, double>> points;
  if (sorted_.empty()) {
    return points;
  }
  size_t n = sorted_.size();
  size_t count = std::min(max_points, n);
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Evenly spaced ranks, always including the max.
    size_t rank = (count == 1) ? n - 1 : i * (n - 1) / (count - 1);
    points.emplace_back(sorted_[rank], static_cast<double>(rank + 1) / static_cast<double>(n));
  }
  return points;
}

}  // namespace cedar
