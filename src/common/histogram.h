// Fixed-bin histogram with text rendering, used by the CLI tools and
// examples to visualize duration and quality distributions in the terminal.

#ifndef CEDAR_SRC_COMMON_HISTOGRAM_H_
#define CEDAR_SRC_COMMON_HISTOGRAM_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace cedar {

class Histogram {
 public:
  // Uniform bins over [lo, hi); values outside are counted in the two
  // overflow buckets.
  Histogram(double lo, double hi, int bins);

  // Log-spaced bins over [lo, hi), lo > 0 — the natural choice for
  // long-tailed durations.
  static Histogram Logarithmic(double lo, double hi, int bins);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  long long count() const { return total_; }
  long long underflow() const { return underflow_; }
  long long overflow() const { return overflow_; }
  long long bin_count(int bin) const;
  // [lower, upper) bounds of a bin.
  std::pair<double, double> bin_bounds(int bin) const;
  int num_bins() const { return static_cast<int>(counts_.size()); }

  // Renders an ASCII bar chart, |width| characters for the largest bin.
  void Print(std::ostream& out, int width = 50) const;

 private:
  Histogram() = default;

  bool logarithmic_ = false;
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<long long> counts_;
  long long underflow_ = 0;
  long long overflow_ = 0;
  long long total_ = 0;
};

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_HISTOGRAM_H_
