// Shared numerical primitives: interpolation, adaptive quadrature, root
// finding, and combinatorial helpers. Everything here is deterministic and
// header-declared so tests can exercise it directly.

#ifndef CEDAR_SRC_COMMON_MATH_UTIL_H_
#define CEDAR_SRC_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace cedar {

// Linear interpolation between |a| and |b| at fraction |t| in [0, 1].
double Lerp(double a, double b, double t);

// Clamps |v| into [lo, hi].
double Clamp(double v, double lo, double hi);

// Natural log of the binomial coefficient C(n, k) via lgamma; exact enough
// for the order-statistic densities (n up to a few thousand).
double LogBinomial(int n, int k);

// Adaptive Simpson quadrature of |f| over [a, b] to absolute tolerance |tol|.
// |max_depth| bounds recursion; the result error is typically far below tol.
double IntegrateAdaptiveSimpson(const std::function<double(double)>& f, double a, double b,
                                double tol = 1e-10, int max_depth = 24);

// Finds a root of |f| in [lo, hi] by bisection, assuming f(lo) and f(hi)
// bracket one (fatal otherwise). Stops when the interval is below |tol|.
double FindRootBisect(const std::function<double(double)>& f, double lo, double hi,
                      double tol = 1e-12, int max_iters = 200);

// A tabulated function y(x) on an ascending grid with linear interpolation
// and flat extrapolation beyond the ends. Used for the quality curves q_n.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  // |xs| must be strictly ascending and the same length as |ys|.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  // Builds from a uniform grid [x0, x0 + step*(n-1)].
  static PiecewiseLinear FromUniform(double x0, double step, std::vector<double> ys);

  double operator()(double x) const;

  bool empty() const { return ys_.empty(); }
  size_t size() const { return ys_.size(); }
  double min_x() const;
  double max_x() const;

  const std::vector<double>& ys() const { return ys_; }

 private:
  // Uniform-grid representation (used when built via FromUniform).
  bool uniform_ = false;
  double x0_ = 0.0;
  double step_ = 0.0;

  std::vector<double> xs_;  // empty when uniform_
  std::vector<double> ys_;
};

// Returns the p-quantile (p in [0,1]) of |sorted| using linear interpolation
// between closest ranks (type-7, the numpy/R default). |sorted| must be
// ascending and non-empty.
double QuantileOfSorted(const std::vector<double>& sorted, double p);

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_MATH_UTIL_H_
