// A tiny command-line flag parser for the bench harnesses and examples.
//
// Flags are registered on a FlagSet with a default value and a help string,
// then bound by Parse(). Accepted syntaxes: --name=value, --name value, and
// --name / --noname for booleans. Unknown flags are fatal (benches should not
// silently ignore typos); "--help" prints usage and exits.

#ifndef CEDAR_SRC_COMMON_FLAGS_H_
#define CEDAR_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cedar {

class FlagSet {
 public:
  // |program_doc| is printed at the top of --help output.
  explicit FlagSet(std::string program_doc);

  // Registration. The returned pointer stays valid for the FlagSet lifetime
  // and is updated by Parse().
  double* AddDouble(const std::string& name, double default_value, const std::string& help);
  int64_t* AddInt(const std::string& name, int64_t default_value, const std::string& help);
  bool* AddBool(const std::string& name, bool default_value, const std::string& help);
  std::string* AddString(const std::string& name, const std::string& default_value,
                         const std::string& help);

  // Parses argv, updating registered flags. Fatal on unknown flags or
  // malformed values. Returns leftover positional arguments.
  std::vector<std::string> Parse(int argc, char** argv);

  // Renders the usage text (also shown for --help).
  std::string Usage() const;

 private:
  enum class Type { kDouble, kInt, kBool, kString };

  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    double* double_value = nullptr;
    int64_t* int_value = nullptr;
    bool* bool_value = nullptr;
    std::string* string_value = nullptr;
  };

  void SetFlagValue(const std::string& name, Flag& flag, const std::string& value);

  std::string program_doc_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  // Flag storage: node-based deques keep pointers stable.
  std::vector<std::unique_ptr<double>> double_storage_;
  std::vector<std::unique_ptr<int64_t>> int_storage_;
  std::vector<std::unique_ptr<bool>> bool_storage_;
  std::vector<std::unique_ptr<std::string>> string_storage_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_FLAGS_H_
