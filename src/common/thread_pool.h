// A small work-stealing thread pool: the concurrency substrate for the
// parallel experiment engine (src/sim/experiment_engine.h) and any future
// sharded workload / async runtime work.
//
// Each worker owns a deque of tasks; it pops from the back of its own deque
// (LIFO, cache-friendly) and steals from the front of a victim's deque
// (FIFO, takes the oldest — largest — pieces of work). Submission is
// round-robin across workers so a burst of tasks spreads without a single
// hot queue. The pool is intentionally simple — mutex-per-deque, no lock-free
// cleverness — because experiment tasks are milliseconds long and the pool
// must stay obviously correct under ThreadSanitizer.
//
// Determinism contract: the pool never introduces randomness. Any caller
// that wants thread-count-independent results must make its tasks
// independent (per-task seeding, disjoint output slots); see
// experiment_engine.h for the scheme the drivers use.

#ifndef CEDAR_SRC_COMMON_THREAD_POOL_H_
#define CEDAR_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cedar {

class ThreadPool {
 public:
  // Spawns |num_threads| workers (must be >= 1).
  explicit ThreadPool(int num_threads);

  // Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues |task| for execution on some worker. Thread-safe; tasks may
  // themselves Submit follow-up work.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far (including tasks spawned by
  // tasks) has finished. The pool is reusable afterwards.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Scheduling counters since construction. Maintained with relaxed atomics
  // on paths that already hold a deque lock, so the overhead is noise; the
  // experiment engine exports them to the metrics registry after a run.
  struct Stats {
    long long submitted = 0;       // tasks accepted by Submit
    long long executed_local = 0;  // tasks a worker popped from its own deque
    long long stolen = 0;          // tasks taken from another worker's deque
    long long idle_waits = 0;      // times a worker blocked on the work cv
  };
  Stats GetStats() const;

  // std::thread::hardware_concurrency() clamped to >= 1.
  static int HardwareThreads();

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> tasks CEDAR_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t worker_index);

  // Pops from the back of worker |i|'s own deque, or steals from the front
  // of another worker's. Returns an empty function when everything is idle.
  std::function<void()> TakeTask(size_t worker_index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex state_mutex_;
  CondVar work_cv_;  // signalled on Submit and shutdown
  CondVar idle_cv_;  // signalled when outstanding_ hits 0
  // Round-robin submission cursor.
  size_t next_submit_ CEDAR_GUARDED_BY(state_mutex_) = 0;
  // Submitted but not yet finished.
  long long outstanding_ CEDAR_GUARDED_BY(state_mutex_) = 0;
  std::atomic<long long> pending_{0};  // submitted but not yet taken
  bool stopping_ CEDAR_GUARDED_BY(state_mutex_) = false;

  std::atomic<long long> stat_submitted_{0};
  std::atomic<long long> stat_executed_local_{0};
  std::atomic<long long> stat_stolen_{0};
  std::atomic<long long> stat_idle_waits_{0};
};

// Resolves a thread-count request: n >= 1 means exactly n workers; n <= 0
// means "one per hardware thread". Shared by every --threads style flag.
int ResolveThreadCount(int requested);

// Splits [0, |total|) into |chunks| near-equal contiguous ranges and runs
// body(begin, end, chunk_index) for each across |pool|. Blocks until every
// chunk is done. Chunks are independent; the caller must make their side
// effects disjoint.
void ParallelForChunks(ThreadPool& pool, long long total, int chunks,
                       const std::function<void(long long, long long, int)>& body);

// Like ParallelForChunks, but safe to call from *inside* a pool task: the
// calling thread claims and runs chunks itself (so progress never depends on
// a free worker) while idle pool workers help, and completion is tracked
// with a chunk counter instead of ThreadPool::Wait() — which would deadlock
// when invoked from a worker. Chunk boundaries are identical to
// ParallelForChunks, so any chunk-indexed output is the same either way.
// |pool| may be null (or single-threaded): the body then runs inline,
// serially, in chunk order. Used by the wait-table store to parallelize
// single-flight table builds on the experiment's own worker pool.
void ParallelForChunksShared(ThreadPool* pool, long long total, int chunks,
                             const std::function<void(long long, long long, int)>& body);

}  // namespace cedar

#endif  // CEDAR_SRC_COMMON_THREAD_POOL_H_
