// Hot-path profiling hooks: scoped wall-clock timers attached to named
// sites, aggregated process-wide and printable as a text report.
//
// A site is declared once (usually via CEDAR_PROFILE_SCOPE at the top of a
// function) and self-registers with the global site list; its counters are
// relaxed atomics, so concurrent workers record without locking. When
// profiling is disabled — the default — a scope costs one relaxed atomic
// load and a branch: the timer never reads the clock.
//
//   void WaitOptimizer::CalculateWait(...) {
//     CEDAR_PROFILE_SCOPE("wait_optimizer.calculate_wait");
//     ...
//   }
//
//   SetProfilingEnabled(true);
//   ... workload ...
//   WriteProfileReport(std::cout);

#ifndef CEDAR_SRC_OBS_PROFILER_H_
#define CEDAR_SRC_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cedar {

// Global profiling switch (relaxed atomic; off by default).
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

// Monotonic clock in nanoseconds (std::chrono::steady_clock).
int64_t SteadyNowNs();

// One named timing site. Construction registers the site in the global
// report list; sites are expected to be function-local statics and live for
// the process (the registry holds raw pointers).
class ProfileSite {
 public:
  explicit ProfileSite(const char* name);
  ProfileSite(const ProfileSite&) = delete;
  ProfileSite& operator=(const ProfileSite&) = delete;

  void Record(int64_t elapsed_ns);

  const char* name() const { return name_; }
  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t total_ns() const { return total_ns_.load(std::memory_order_relaxed); }
  int64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  const char* name_;
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> total_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

// RAII timer: reads the clock at construction and records the delta at
// destruction, but only when profiling was enabled at construction time.
class ScopedProfileTimer {
 public:
  explicit ScopedProfileTimer(ProfileSite& site)
      : site_(ProfilingEnabled() ? &site : nullptr),
        start_ns_(site_ != nullptr ? SteadyNowNs() : 0) {}

  ScopedProfileTimer(const ScopedProfileTimer&) = delete;
  ScopedProfileTimer& operator=(const ScopedProfileTimer&) = delete;

  ~ScopedProfileTimer() {
    if (site_ != nullptr) {
      site_->Record(SteadyNowNs() - start_ns_);
    }
  }

 private:
  ProfileSite* site_;
  int64_t start_ns_;
};

// Merged sample of one site, for reports and tests.
struct ProfileSample {
  std::string name;
  int64_t calls = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;

  double MeanNs() const {
    return calls > 0 ? static_cast<double>(total_ns) / static_cast<double>(calls) : 0.0;
  }
};

// All registered sites with at least one recorded call, sorted by
// total_ns descending (name-ordered among ties for stable output).
std::vector<ProfileSample> CollectProfileSamples();

// Aligned text table of CollectProfileSamples() (the --metrics-report
// profiling section). Prints a placeholder line when nothing was recorded.
void WriteProfileReport(std::ostream& out);

// Zeroes every site's counters (registrations are kept).
void ResetProfile();

#define CEDAR_PROFILE_CONCAT_INNER(a, b) a##b
#define CEDAR_PROFILE_CONCAT(a, b) CEDAR_PROFILE_CONCAT_INNER(a, b)

// Times the rest of the enclosing scope under |name|. The site is a
// function-local static, so registration happens once per call site.
#define CEDAR_PROFILE_SCOPE(name)                                                       \
  static ::cedar::ProfileSite CEDAR_PROFILE_CONCAT(cedar_profile_site_, __LINE__){name}; \
  ::cedar::ScopedProfileTimer CEDAR_PROFILE_CONCAT(cedar_profile_timer_, __LINE__)(      \
      CEDAR_PROFILE_CONCAT(cedar_profile_site_, __LINE__))

}  // namespace cedar

#endif  // CEDAR_SRC_OBS_PROFILER_H_
