#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "src/common/csv.h"
#include "src/common/logging.h"
#include "src/common/table.h"

namespace cedar {
namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace obs_internal {

int ThreadShard() {
  // Hashed once per thread; kMetricShards is a power of two.
  static thread_local int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      static_cast<size_t>(kMetricShards - 1));
  return shard;
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace obs_internal

// ---- Counter ----

long long Counter::Value() const {
  long long total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge ----

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

// ---- Histogram ----

Histogram::Histogram(HistogramOptions options) : options_(options) {
  CEDAR_CHECK_GT(options_.min_value, 0.0);
  CEDAR_CHECK_GT(options_.max_value, options_.min_value);
  CEDAR_CHECK_GE(options_.num_buckets, 2);
  log_min_ = std::log(options_.min_value);
  log_step_ = (std::log(options_.max_value) - log_min_) /
              static_cast<double>(options_.num_buckets - 1);
  shards_ = std::vector<Shard>(static_cast<size_t>(obs_internal::kMetricShards));
  for (Shard& shard : shards_) {
    shard.min.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    shard.buckets = std::vector<std::atomic<long long>>(
        static_cast<size_t>(options_.num_buckets));
  }
}

int Histogram::BucketIndex(double value) const {
  if (!(value > options_.min_value)) {
    return 0;  // also catches NaN and non-positive values
  }
  if (value >= options_.max_value) {
    return options_.num_buckets - 1;
  }
  int index = static_cast<int>((std::log(value) - log_min_) / log_step_) + 1;
  return std::clamp(index, 1, options_.num_buckets - 1);
}

double Histogram::BucketUpperBound(int index) const {
  if (index <= 0) {
    return options_.min_value;
  }
  return std::exp(log_min_ + log_step_ * static_cast<double>(index));
}

void Histogram::Observe(double value) {
  Shard& shard = shards_[static_cast<size_t>(obs_internal::ThreadShard())];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  obs_internal::AtomicMin(shard.min, value);
  obs_internal::AtomicMax(shard.max, value);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
  shard.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
}

long long Histogram::Count() const {
  long long total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  double result = std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) > 0) {
      result = std::min(result, shard.min.load(std::memory_order_relaxed));
    }
  }
  return result;
}

double Histogram::Max() const {
  double result = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) > 0) {
      result = std::max(result, shard.max.load(std::memory_order_relaxed));
    }
  }
  return result;
}

std::vector<long long> Histogram::MergedBuckets() const {
  std::vector<long long> merged(static_cast<size_t>(options_.num_buckets), 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Quantile(double q) const {
  CEDAR_CHECK(q >= 0.0 && q <= 1.0);
  long long count = Count();
  if (count == 0) {
    return 0.0;
  }
  std::vector<long long> buckets = MergedBuckets();
  auto rank = static_cast<long long>(q * static_cast<double>(count - 1));
  long long seen = 0;
  for (int b = 0; b < options_.num_buckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (seen > rank) {
      return std::clamp(BucketUpperBound(b), Min(), Max());
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

// ---- MetricsSnapshot ----

void MetricsSnapshot::WriteReport(std::ostream& out) const {
  PrintBanner(out, "metrics report");
  if (empty()) {
    out << "(no metrics recorded — run with metrics enabled)\n";
    return;
  }
  if (!counters.empty()) {
    TablePrinter table({"counter", "value"});
    for (const auto& sample : counters) {
      table.AddRow({sample.name, std::to_string(sample.value)});
    }
    table.Print(out);
  }
  if (!gauges.empty()) {
    TablePrinter table({"gauge", "value"});
    for (const auto& sample : gauges) {
      table.AddRow({sample.name, TablePrinter::FormatDouble(sample.value, 4)});
    }
    table.Print(out);
  }
  if (!histograms.empty()) {
    TablePrinter table({"histogram", "count", "mean", "min", "p50", "p90", "p99", "max"});
    for (const auto& sample : histograms) {
      table.AddRow({sample.name, std::to_string(sample.count),
                    TablePrinter::FormatDouble(sample.Mean(), 4),
                    TablePrinter::FormatDouble(sample.min, 4),
                    TablePrinter::FormatDouble(sample.p50, 4),
                    TablePrinter::FormatDouble(sample.p90, 4),
                    TablePrinter::FormatDouble(sample.p99, 4),
                    TablePrinter::FormatDouble(sample.max, 4)});
    }
    table.Print(out);
  }
}

void MetricsSnapshot::WriteCsv(const std::string& path) const {
  CsvWriter writer(path);
  writer.Header({"name", "kind", "count", "sum", "mean", "min", "max", "p50", "p90", "p99"});
  for (const auto& sample : counters) {
    writer.Row({sample.name, "counter", std::to_string(sample.value),
                std::to_string(sample.value), "", "", "", "", "", ""});
  }
  for (const auto& sample : gauges) {
    writer.Row({sample.name, "gauge", "", TablePrinter::FormatDouble(sample.value, 6), "", "",
                "", "", "", ""});
  }
  for (const auto& sample : histograms) {
    writer.Row({sample.name, "histogram", std::to_string(sample.count),
                TablePrinter::FormatDouble(sample.sum, 6),
                TablePrinter::FormatDouble(sample.Mean(), 6),
                TablePrinter::FormatDouble(sample.min, 6),
                TablePrinter::FormatDouble(sample.max, 6),
                TablePrinter::FormatDouble(sample.p50, 6),
                TablePrinter::FormatDouble(sample.p90, 6),
                TablePrinter::FormatDouble(sample.p99, 6)});
  }
}

// ---- MetricsRegistry ----

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked process singleton (no destruction-order hazards).
  static MetricsRegistry* registry = new MetricsRegistry();  // cedar-lint: allow(raw-new)
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, HistogramOptions options) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(options);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->Count();
    if (sample.count > 0) {
      sample.sum = histogram->Sum();
      sample.min = histogram->Min();
      sample.max = histogram->Max();
      sample.p50 = histogram->Quantile(0.5);
      sample.p90 = histogram->Quantile(0.9);
      sample.p99 = histogram->Quantile(0.99);
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::string LabeledMetricName(const std::string& name, const std::string& key, double value) {
  char formatted[64];
  std::snprintf(formatted, sizeof(formatted), "%g", value);
  return name + "{" + key + "=" + formatted + "}";
}

}  // namespace cedar
