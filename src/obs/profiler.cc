#include "src/obs/profiler.h"

#include <algorithm>
#include <chrono>

#include "src/common/mutex.h"
#include "src/common/table.h"
#include "src/common/thread_annotations.h"

namespace cedar {
namespace {

std::atomic<bool> g_profiling_enabled{false};

// Registry of every constructed site. Sites are function-local statics, so
// registration happens a handful of times per process; a mutex is fine.
struct SiteRegistry {
  Mutex mutex;
  std::vector<ProfileSite*> sites CEDAR_GUARDED_BY(mutex);
};

SiteRegistry& Registry() {
  // Intentionally leaked process singleton (no destruction-order hazards).
  static SiteRegistry* registry = new SiteRegistry();  // cedar-lint: allow(raw-new)
  return *registry;
}

}  // namespace

bool ProfilingEnabled() { return g_profiling_enabled.load(std::memory_order_relaxed); }

void SetProfilingEnabled(bool enabled) {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProfileSite::ProfileSite(const char* name) : name_(name) {
  SiteRegistry& registry = Registry();
  MutexLock lock(registry.mutex);
  registry.sites.push_back(this);
}

void ProfileSite::Record(int64_t elapsed_ns) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  int64_t current = max_ns_.load(std::memory_order_relaxed);
  while (elapsed_ns > current &&
         !max_ns_.compare_exchange_weak(current, elapsed_ns, std::memory_order_relaxed)) {
  }
}

void ProfileSite::Reset() {
  calls_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

std::vector<ProfileSample> CollectProfileSamples() {
  std::vector<ProfileSample> samples;
  {
    SiteRegistry& registry = Registry();
    MutexLock lock(registry.mutex);
    samples.reserve(registry.sites.size());
    for (const ProfileSite* site : registry.sites) {
      if (site->calls() == 0) {
        continue;
      }
      samples.push_back({site->name(), site->calls(), site->total_ns(), site->max_ns()});
    }
  }
  std::sort(samples.begin(), samples.end(), [](const ProfileSample& a, const ProfileSample& b) {
    if (a.total_ns != b.total_ns) {
      return a.total_ns > b.total_ns;
    }
    return a.name < b.name;
  });
  return samples;
}

void WriteProfileReport(std::ostream& out) {
  PrintBanner(out, "profile report");
  std::vector<ProfileSample> samples = CollectProfileSamples();
  if (samples.empty()) {
    out << "(no profile samples — run with profiling enabled)\n";
    return;
  }
  TablePrinter table({"site", "calls", "total ms", "mean us", "max us"});
  for (const ProfileSample& sample : samples) {
    table.AddRow({sample.name, std::to_string(sample.calls),
                  TablePrinter::FormatDouble(static_cast<double>(sample.total_ns) / 1e6, 3),
                  TablePrinter::FormatDouble(sample.MeanNs() / 1e3, 3),
                  TablePrinter::FormatDouble(static_cast<double>(sample.max_ns) / 1e3, 3)});
  }
  table.Print(out);
}

void ResetProfile() {
  SiteRegistry& registry = Registry();
  MutexLock lock(registry.mutex);
  for (ProfileSite* site : registry.sites) {
    site->Reset();
  }
}

}  // namespace cedar
