#include "src/obs/query_trace.h"

#include <utility>

namespace cedar {
namespace {

constexpr char kCatLifecycle[] = "lifecycle";
constexpr char kCatDecision[] = "decision";

}  // namespace

QueryTraceBuilder::QueryTraceBuilder(TraceCollector* collector, uint64_t sequence,
                                     std::string policy, std::string engine, double origin)
    : collector_(collector),
      sequence_(sequence),
      policy_(std::move(policy)),
      engine_(std::move(engine)),
      origin_(origin) {
  if (collector_ != nullptr) {
    // A query's batch is usually a few dozen events; reserve a plausible
    // floor so the common case never reallocates more than once.
    events_.reserve(32);
  }
}

void QueryTraceBuilder::Push(TraceEvent event) {
  event.ts += origin_;
  event.track = sequence_;
  events_.push_back(std::move(event));
}

void QueryTraceBuilder::RecordTierPlan(int tier, double start_offset) {
  TraceEvent event;
  event.name = "tier_plan";
  event.category = kCatLifecycle;
  event.ts = start_offset;
  event.args = {TraceArg::Num("tier", tier), TraceArg::Num("start_offset", start_offset)};
  Push(std::move(event));
}

void QueryTraceBuilder::RecordInitialWait(int tier, long long index, double wait) {
  TraceEvent event;
  event.name = "initial_wait";
  event.category = kCatDecision;
  event.ts = 0.0;
  event.args = {TraceArg::Num("tier", tier),
                TraceArg::Num("aggregator", static_cast<double>(index)),
                TraceArg::Num("wait", wait)};
  Push(std::move(event));
}

void QueryTraceBuilder::RecordArrival(int tier, long long index, double time, int arrivals) {
  TraceEvent event;
  event.name = "arrival";
  event.category = kCatLifecycle;
  event.ts = time;
  event.args = {TraceArg::Num("tier", tier),
                TraceArg::Num("aggregator", static_cast<double>(index)),
                TraceArg::Num("arrivals", arrivals)};
  Push(std::move(event));
}

void QueryTraceBuilder::RecordWaitUpdate(int tier, long long index, double time,
                                         double new_wait) {
  TraceEvent event;
  event.name = "wait_update";
  event.category = kCatDecision;
  event.ts = time;
  event.args = {TraceArg::Num("tier", tier),
                TraceArg::Num("aggregator", static_cast<double>(index)),
                TraceArg::Num("new_wait", new_wait)};
  Push(std::move(event));
}

void QueryTraceBuilder::RecordSend(int tier, long long index, double time, int arrivals,
                                   int fanout, double weight) {
  const bool complete = arrivals >= fanout;
  if (complete) {
    ++holds_;
  } else {
    ++folds_;
  }
  TraceEvent event;
  event.name = complete ? "hold_send" : "fold_send";
  event.category = kCatDecision;
  event.ts = time;
  event.args = {TraceArg::Num("tier", tier),
                TraceArg::Num("aggregator", static_cast<double>(index)),
                TraceArg::Num("arrivals", arrivals), TraceArg::Num("fanout", fanout),
                TraceArg::Num("weight", weight)};
  Push(std::move(event));
}

void QueryTraceBuilder::RecordRootArrival(double time, bool in_time) {
  if (!in_time) {
    ++deadline_misses_;
  }
  TraceEvent event;
  event.name = in_time ? "root_arrival" : "deadline_miss";
  event.category = kCatLifecycle;
  event.ts = time;
  event.args = {TraceArg::Num("in_time", in_time ? 1 : 0)};
  Push(std::move(event));
}

void QueryTraceBuilder::Finish(double end_time, double inclusion_fraction,
                               std::vector<TraceArg> extra_args) {
  if (collector_ == nullptr) {
    return;
  }
  TraceEvent span;
  span.name = "query";
  span.category = "query";
  span.phase = 'X';
  span.ts = origin_;
  span.dur = end_time;
  span.track = sequence_;
  span.args = {TraceArg::Str("policy", policy_),
               TraceArg::Str("engine", engine_),
               TraceArg::Num("sequence", static_cast<double>(sequence_)),
               TraceArg::Num("inclusion_fraction", inclusion_fraction),
               // Query-level verdict: pure hold if no aggregator folded.
               TraceArg::Str("outcome", folds_ == 0 ? "hold" : "fold"),
               TraceArg::Num("holds", holds_), TraceArg::Num("folds", folds_),
               TraceArg::Num("deadline_misses", deadline_misses_)};
  for (TraceArg& arg : extra_args) {
    span.args.push_back(std::move(arg));
  }
  // The span leads the batch so a track's first event names the query.
  std::vector<TraceEvent> batch;
  batch.reserve(events_.size() + 1);
  batch.push_back(std::move(span));
  for (TraceEvent& event : events_) {
    batch.push_back(std::move(event));
  }
  events_.clear();
  collector_->EmitBatch(std::move(batch));
}

}  // namespace cedar
