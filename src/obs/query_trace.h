// QueryTraceBuilder: the per-query adapter between the execution engines and
// a TraceCollector. One builder lives on the stack of a RunQuery call (or in
// a loaded-runtime job); the engine and its AggregatorNodes record lifecycle
// events through it, and Finish() emits the assembled batch — the top-level
// "query" span plus every buffered instant event — into the collector under
// a single lock.
//
// All Record* calls take times *relative to the query's start*; |origin| (a
// loaded run's arrival time) shifts them onto the shared timeline at export.
// A builder constructed with a null collector is inert: active() is false
// and the engines skip every Record call, so disabled tracing costs one
// pointer test per event site.

#ifndef CEDAR_SRC_OBS_QUERY_TRACE_H_
#define CEDAR_SRC_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace cedar {

class QueryTraceBuilder {
 public:
  // |sequence| keys the trace track; |policy| and |engine| ("sim",
  // "cluster", "loaded") become span args. The collector is borrowed and may
  // be null (inert builder).
  QueryTraceBuilder(TraceCollector* collector, uint64_t sequence, std::string policy,
                    std::string engine, double origin = 0.0);

  bool active() const { return collector_ != nullptr; }
  uint64_t sequence() const { return sequence_; }

  // The *planned* start offset of one aggregator tier (tier 0 starts at 0).
  void RecordTierPlan(int tier, double start_offset);

  // An aggregator's initial wait decision (absolute send time from query
  // start), made before any arrival.
  void RecordInitialWait(int tier, long long index, double wait);

  // One child output arriving at an aggregator. |arrivals| counts arrivals
  // so far including this one.
  void RecordArrival(int tier, long long index, double time, int arrivals);

  // The policy re-armed the aggregator's timer to |new_wait| on an arrival.
  void RecordWaitUpdate(int tier, long long index, double time, double new_wait);

  // The aggregator sent its partial result upstream. A send with
  // arrivals == fanout is a *hold* that paid off (complete aggregation); a
  // timer-driven send with missing children is a *fold* (stragglers
  // abandoned).
  void RecordSend(int tier, long long index, double time, int arrivals, int fanout,
                  double weight);

  // A top-tier result reaching the root; !in_time is a deadline miss.
  void RecordRootArrival(double time, bool in_time);

  // Emits the query span [0, end_time] with the hold/fold outcome, the final
  // inclusion fraction, and |extra_args| (engine-specific diagnostics), then
  // flushes the batch. Call at most once; Record* calls after Finish are
  // invalid.
  void Finish(double end_time, double inclusion_fraction,
              std::vector<TraceArg> extra_args = {});

  int holds() const { return holds_; }
  int folds() const { return folds_; }
  int deadline_misses() const { return deadline_misses_; }

 private:
  void Push(TraceEvent event);

  TraceCollector* collector_;
  uint64_t sequence_;
  std::string policy_;
  std::string engine_;
  double origin_;
  int holds_ = 0;
  int folds_ = 0;
  int deadline_misses_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_OBS_QUERY_TRACE_H_
