// Thread-safe metrics registry: counters, gauges, and histograms.
//
// Design constraints (see DESIGN.md §9):
//  * Write paths are per-thread sharded — an Increment/Observe touches one
//    cache-line-aligned shard picked by the calling thread, so concurrent
//    experiment workers never contend, and instrumentation cannot perturb
//    the engine's bit-identical cross-thread-count guarantee (metrics are a
//    write-only side channel; nothing in a hot path ever reads them back).
//  * Shards are merged only on Snapshot(), which is an off-path operation
//    (end of a run, a test assertion).
//  * Collection is off by default: call sites gate on MetricsEnabled(), a
//    relaxed atomic load, so a disabled build pays one predictable branch.
//
// Usage:
//   if (MetricsEnabled()) {
//     MetricsRegistry::Global().GetCounter("sim.queries").Increment();
//   }
//   MetricsRegistry::Global().Snapshot().WriteReport(std::cout);

#ifndef CEDAR_SRC_OBS_METRICS_H_
#define CEDAR_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cedar {

// Global collection switch (relaxed atomic; off by default).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace obs_internal {

// Number of write shards per metric. A power of two so the thread-id hash
// folds cheaply; 16 covers the experiment engine's worker-count cap.
inline constexpr int kMetricShards = 16;

// Stable shard index of the calling thread in [0, kMetricShards).
int ThreadShard();

// Lock-free min/max update on an atomic double (relaxed CAS loop).
void AtomicMin(std::atomic<double>& target, double value);
void AtomicMax(std::atomic<double>& target, double value);

}  // namespace obs_internal

// A monotonically increasing integer metric.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(long long delta = 1) {
    shards_[obs_internal::ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  // Merged value across shards.
  long long Value() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<long long> value{0};
  };
  Shard shards_[obs_internal::kMetricShards];
};

// A last-write-wins double metric (plus Add for accumulators).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  // Geometric bucket boundaries spanning [min_value, max_value]; values at
  // or below min_value land in bucket 0, values at or above max_value in
  // the last bucket. Exact count/sum/min/max are tracked besides buckets,
  // so only the quantile estimates depend on the grid.
  double min_value = 1e-6;
  double max_value = 1e6;
  int num_buckets = 60;
};

// A distribution metric: exact count/sum/min/max plus geometric buckets for
// quantile estimation. Same sharded write path as Counter.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  long long Count() const;
  double Sum() const;
  double Min() const;  // +inf when empty
  double Max() const;  // -inf when empty

  // Estimated quantile (q in [0, 1]) from the merged buckets, clamped to
  // the exact [Min, Max] envelope. Returns 0 when empty.
  double Quantile(double q) const;

  void Reset();

  const HistogramOptions& options() const { return options_; }

 private:
  int BucketIndex(double value) const;
  // Upper bound of bucket |index| in value space.
  double BucketUpperBound(int index) const;
  std::vector<long long> MergedBuckets() const;

  HistogramOptions options_;
  double log_min_;
  double log_step_;

  struct alignas(64) Shard {
    std::atomic<long long> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // seeded to +/-inf by the constructor
    std::atomic<double> max{0.0};
    std::vector<std::atomic<long long>> buckets;
  };
  std::vector<Shard> shards_;
};

// One merged sample of each metric kind, for reports and CSV export.
struct CounterSample {
  std::string name;
  long long value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

// Point-in-time merged view of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  // Aligned text tables (the --metrics-report output).
  void WriteReport(std::ostream& out) const;

  // CSV with columns: name,kind,count,sum,mean,min,max,p50,p90,p99.
  void WriteCsv(const std::string& path) const;
};

// Owns metrics by name. Get* registers on first use and returns a stable
// reference; lookups take a mutex, so hot paths should hoist the reference
// out of per-event loops.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by engines, apps, and tools.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // |options| only apply when the histogram is first created.
  Histogram& GetHistogram(const std::string& name, HistogramOptions options = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (registrations are kept).
  void Reset();

 private:
  mutable Mutex mutex_;
  // std::map: snapshots iterate in name order, keeping reports deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters_ CEDAR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CEDAR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ CEDAR_GUARDED_BY(mutex_);
};

// Canonical labeled metric name: "name{key=value}", with |value| formatted
// %g so 250 and 250.0 collapse to one series. Used for the per-deadline
// experiment metrics (e.g. sim.queries{deadline_ms=250}); labeled series are
// emitted alongside the unlabeled totals, never instead of them.
std::string LabeledMetricName(const std::string& name, const std::string& key, double value);

}  // namespace cedar

#endif  // CEDAR_SRC_OBS_METRICS_H_
