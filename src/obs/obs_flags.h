// Shared observability command-line surface for tools and benches.
//
// A binary registers the flags on its FlagSet, calls InitObservability()
// after Parse(), runs its workload, and calls FinishObservability() before
// exit:
//
//   FlagSet flags("...");
//   ObservabilityFlags obs = AddObservabilityFlags(flags);
//   flags.Parse(argc, argv);
//   ObservabilityScope scope = InitObservability(obs);
//   ... workload ...
//   FinishObservability(obs, scope, std::cout);
//
// Flags added:
//   --metrics          enable metric counters/histograms and profiling hooks
//   --metrics-report   print metrics + profile report at exit (implies --metrics)
//   --trace-out=PATH   collect query-lifecycle traces and write them to PATH
//                      (.csv writes CSV, anything else Chrome trace JSON)

#ifndef CEDAR_SRC_OBS_OBS_FLAGS_H_
#define CEDAR_SRC_OBS_OBS_FLAGS_H_

#include <memory>
#include <ostream>
#include <string>

#include "src/common/flags.h"
#include "src/obs/trace.h"

namespace cedar {

struct ObservabilityFlags {
  bool* metrics = nullptr;
  bool* metrics_report = nullptr;
  std::string* trace_out = nullptr;
};

// Holds the trace collector (when --trace-out is set) installed as the
// process-global ActiveTraceCollector for the workload's duration.
struct ObservabilityScope {
  std::unique_ptr<TraceCollector> collector;
};

ObservabilityFlags AddObservabilityFlags(FlagSet& flags);

// Applies the parsed flags: flips the metrics/profiling switches and
// installs a global trace collector when --trace-out was given.
ObservabilityScope InitObservability(const ObservabilityFlags& flags);

// Writes requested outputs (trace file, metrics/profile report to |out|)
// and uninstalls the global collector.
void FinishObservability(const ObservabilityFlags& flags, ObservabilityScope& scope,
                         std::ostream& out);

}  // namespace cedar

#endif  // CEDAR_SRC_OBS_OBS_FLAGS_H_
