// Query-lifecycle tracing: a thread-safe event sink exportable as Chrome
// trace_event JSON (loadable in chrome://tracing or https://ui.perfetto.dev)
// and as CSV.
//
// Model: every query run becomes one *track* (rendered as a thread lane in
// the viewer), keyed by the driver-assigned query sequence id. The engines
// emit one top-level 'X' (complete) span named "query" per (query, policy)
// run plus instant events for the lifecycle: per-tier initial waits, child
// arrivals, wait re-arms, hold/fold sends, and root arrivals / deadline
// misses. Simulated time is exported 1:1 as trace microseconds.
//
// Emission is batched per query (see QueryTraceBuilder) so the collector's
// mutex is taken once per query, not once per event, and a whole query's
// events stay contiguous. Snapshot() canonicalizes order by (track, ts), so
// exported traces do not depend on which worker thread ran which query.

#ifndef CEDAR_SRC_OBS_TRACE_H_
#define CEDAR_SRC_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cedar {

// One key/value annotation on a trace event. Numeric args are exported as
// JSON numbers, everything else as JSON strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;

  static TraceArg Num(std::string key, double value);
  static TraceArg Str(std::string key, std::string value);
};

struct TraceEvent {
  std::string name;
  std::string category;
  // Chrome trace-event phase: 'X' = complete span (ts + dur), 'i' = instant.
  char phase = 'i';
  // Event time and span duration in simulated time units.
  double ts = 0.0;
  double dur = 0.0;
  // Track id, rendered as the viewer's thread lane; the engines use the
  // query sequence id.
  uint64_t track = 0;
  std::vector<TraceArg> args;
};

// Thread-safe trace sink. Writers only append; export sorts.
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void Emit(TraceEvent event);
  // Appends a whole batch under one lock (the per-query path).
  void EmitBatch(std::vector<TraceEvent> events);

  // All events so far, stably sorted by (track, ts) so intra-query emission
  // order is preserved while cross-query interleaving is canonical.
  std::vector<TraceEvent> Snapshot() const;

  size_t size() const;
  void Clear();

  // Chrome trace-event JSON: {"traceEvents": [...], ...}.
  void WriteChromeJson(std::ostream& out) const;
  void WriteChromeJson(const std::string& path) const;

  // CSV with columns: track,ts,dur,phase,category,name,args (args packed as
  // "k=v;k=v" — the simple dialect of src/common/csv.h has no quoting).
  void WriteCsv(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ CEDAR_GUARDED_BY(mutex_);
};

// Process-global collector used when an engine's options carry none: tools
// and benches install one for --trace-out. Borrowed, never owned; null
// (the default) disables global tracing. Relaxed atomic pointer — engines
// load it once per query.
TraceCollector* ActiveTraceCollector();
void SetActiveTraceCollector(TraceCollector* collector);

// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& text);

}  // namespace cedar

#endif  // CEDAR_SRC_OBS_TRACE_H_
