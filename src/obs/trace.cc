#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace cedar {
namespace {

std::atomic<TraceCollector*> g_active_collector{nullptr};

// Shortest round-trippable decimal for a double (printf %.17g is exact but
// noisy; %.12g keeps sim timestamps readable and is far below the engines'
// time resolution).
std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void WriteArgsJson(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\"" << JsonEscape(args[i].key) << "\":";
    if (args[i].numeric) {
      out << args[i].value;
    } else {
      out << "\"" << JsonEscape(args[i].value) << "\"";
    }
  }
  out << "}";
}

}  // namespace

TraceArg TraceArg::Num(std::string key, double value) {
  return {std::move(key), FormatNumber(value), true};
}

TraceArg TraceArg::Str(std::string key, std::string value) {
  return {std::move(key), std::move(value), false};
}

void TraceCollector::Emit(TraceEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceCollector::EmitBatch(std::vector<TraceEvent> events) {
  if (events.empty()) {
    return;
  }
  MutexLock lock(mutex_);
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<TraceEvent> snapshot;
  {
    MutexLock lock(mutex_);
    snapshot = events_;
  }
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.track != b.track) {
                       return a.track < b.track;
                     }
                     return a.ts < b.ts;
                   });
  return snapshot;
}

size_t TraceCollector::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

void TraceCollector::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

void TraceCollector::WriteChromeJson(std::ostream& out) const {
  std::vector<TraceEvent> events = Snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) {
      out << ",";
    }
    out << "\n{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
        << JsonEscape(event.category) << "\",\"ph\":\"" << event.phase << "\",\"ts\":"
        << FormatNumber(event.ts);
    if (event.phase == 'X') {
      out << ",\"dur\":" << FormatNumber(event.dur);
    }
    if (event.phase == 'i') {
      // Instant scope: thread-scoped so the tick renders on its track.
      out << ",\"s\":\"t\"";
    }
    out << ",\"pid\":1,\"tid\":" << event.track;
    if (!event.args.empty()) {
      out << ",\"args\":";
      WriteArgsJson(out, event.args);
    }
    out << "}";
  }
  out << "\n]}\n";
}

void TraceCollector::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  CEDAR_CHECK(out.good()) << "cannot open trace output file " << path;
  WriteChromeJson(out);
  CEDAR_CHECK(out.good()) << "failed writing trace to " << path;
}

void TraceCollector::WriteCsv(const std::string& path) const {
  std::vector<TraceEvent> events = Snapshot();
  CsvWriter writer(path);
  writer.Header({"track", "ts", "dur", "phase", "category", "name", "args"});
  for (const TraceEvent& event : events) {
    std::ostringstream args;
    for (size_t i = 0; i < event.args.size(); ++i) {
      if (i > 0) {
        args << ";";
      }
      args << event.args[i].key << "=" << event.args[i].value;
    }
    writer.Row({std::to_string(event.track), FormatNumber(event.ts),
                FormatNumber(event.dur), std::string(1, event.phase), event.category,
                event.name, args.str()});
  }
}

TraceCollector* ActiveTraceCollector() {
  return g_active_collector.load(std::memory_order_relaxed);
}

void SetActiveTraceCollector(TraceCollector* collector) {
  g_active_collector.store(collector, std::memory_order_relaxed);
}

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace cedar
