#include "src/obs/obs_flags.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace cedar {
namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

ObservabilityFlags AddObservabilityFlags(FlagSet& flags) {
  ObservabilityFlags obs;
  obs.metrics =
      flags.AddBool("metrics", false, "enable metric collection and profiling hooks");
  obs.metrics_report = flags.AddBool(
      "metrics-report", false, "print the metrics and profile report at exit (implies --metrics)");
  obs.trace_out = flags.AddString(
      "trace-out", "",
      "collect query-lifecycle traces and write them to this path (.csv for CSV, otherwise "
      "Chrome trace-event JSON for chrome://tracing or Perfetto)");
  return obs;
}

ObservabilityScope InitObservability(const ObservabilityFlags& flags) {
  const bool metrics = *flags.metrics || *flags.metrics_report;
  SetMetricsEnabled(metrics);
  SetProfilingEnabled(metrics);
  ObservabilityScope scope;
  if (!flags.trace_out->empty()) {
    scope.collector = std::make_unique<TraceCollector>();
    SetActiveTraceCollector(scope.collector.get());
  }
  return scope;
}

void FinishObservability(const ObservabilityFlags& flags, ObservabilityScope& scope,
                         std::ostream& out) {
  if (scope.collector != nullptr) {
    SetActiveTraceCollector(nullptr);
    const std::string& path = *flags.trace_out;
    if (EndsWith(path, ".csv")) {
      scope.collector->WriteCsv(path);
    } else {
      scope.collector->WriteChromeJson(path);
    }
    CEDAR_LOG(INFO) << "wrote " << scope.collector->size() << " trace events to " << path;
  }
  if (*flags.metrics_report) {
    MetricsRegistry::Global().Snapshot().WriteReport(out);
    WriteProfileReport(out);
  }
}

}  // namespace cedar
