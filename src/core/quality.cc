#include "src/core/quality.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cedar {

double ExpectedOutputsGivenNotAll(double phi, int k) {
  CEDAR_CHECK_GE(k, 1);
  CEDAR_CHECK(phi >= 0.0 && phi <= 1.0) << "phi out of [0,1]: " << phi;
  if (phi <= 0.0) {
    return 0.0;
  }
  double phik = std::pow(phi, k);
  double denom = 1.0 - phik;
  if (denom <= 0.0) {
    // phi == 1: conditioning event has probability zero; the limit of the
    // expression as phi -> 1 is k - 1 (all but the last have arrived).
    return static_cast<double>(k - 1);
  }
  return static_cast<double>(k) * (phi - phik) / denom;
}

PiecewiseLinear TabulateCdf(const Distribution& dist, double max_d, int grid_points) {
  CEDAR_CHECK_GE(grid_points, 2);
  CEDAR_CHECK_GT(max_d, 0.0);
  double h = max_d / static_cast<double>(grid_points - 1);
  std::vector<double> ys(static_cast<size_t>(grid_points));
  for (int i = 0; i < grid_points; ++i) {
    ys[static_cast<size_t>(i)] = dist.Cdf(h * static_cast<double>(i));
  }
  return PiecewiseLinear::FromUniform(0.0, h, std::move(ys));
}

namespace {

// Computes max_{c in [0,d]} of the accumulated (gain - loss) scan for one
// remaining-deadline value |d|, given tabulated Phi_X1 values at multiples of
// |eps| and the upper-subtree quality curve. This is the inner loop of both
// the curve builder and the wait optimizer (Pseudocode 2 without the argmax).
double ScanBestQuality(const std::vector<double>& cdf_at, const std::vector<double>& cdf_pow_at,
                       double eps, double d, const PiecewiseLinear& upper) {
  double q = 0.0;
  double best = 0.0;
  size_t max_j = cdf_at.size() - 1;
  for (size_t j = 0; j < max_j; ++j) {
    double c = eps * static_cast<double>(j);
    if (c >= d) {
      break;
    }
    double c2 = std::min(c + eps, d);
    double gain = (cdf_at[j + 1] - cdf_at[j]) * upper(d - c2);
    double loss = (cdf_at[j] - cdf_pow_at[j]) * (upper(d - c) - upper(d - c2));
    q += gain - loss;
    best = std::max(best, q);
  }
  return Clamp(best, 0.0, 1.0);
}

// Folds one bottom stage (|dist|, |k|) under the already-built |upper|
// curve: the q_{j} <- q_{j+1} step, tabulated on the same grid.
PiecewiseLinear FoldStageUnder(const Distribution& dist, int k, const PiecewiseLinear& upper,
                               double max_d, const QualityGridOptions& options) {
  double eps = max_d * options.epsilon_fraction;
  CEDAR_CHECK_GT(eps, 0.0);

  // Pre-tabulate Phi_X1 and Phi_X1^k at scan points (shared across all d).
  auto steps = static_cast<size_t>(std::ceil(max_d / eps)) + 1;
  std::vector<double> cdf_at(steps + 1);
  std::vector<double> cdf_pow_at(steps + 1);
  for (size_t j = 0; j <= steps; ++j) {
    double phi = dist.Cdf(eps * static_cast<double>(j));
    cdf_at[j] = phi;
    cdf_pow_at[j] = std::pow(phi, k);
  }

  double h = max_d / static_cast<double>(options.grid_points - 1);
  std::vector<double> ys(static_cast<size_t>(options.grid_points), 0.0);
  for (int gi = 1; gi < options.grid_points; ++gi) {
    double d = h * static_cast<double>(gi);
    ys[static_cast<size_t>(gi)] = ScanBestQuality(cdf_at, cdf_pow_at, eps, d, upper);
  }
  return PiecewiseLinear::FromUniform(0.0, h, std::move(ys));
}

}  // namespace

PiecewiseLinear BuildQualityCurve(const TreeSpec& tree, int first_stage, double max_d,
                                  const QualityGridOptions& options) {
  CEDAR_CHECK(first_stage >= 0 && first_stage < tree.num_stages());
  CEDAR_CHECK_GT(max_d, 0.0);
  if (first_stage == tree.num_stages() - 1) {
    // Base case: q_1(d) = Phi_{Xn}(d).
    return TabulateCdf(*tree.stage(first_stage).duration, max_d, options.grid_points);
  }
  PiecewiseLinear upper = BuildQualityCurve(tree, first_stage + 1, max_d, options);
  return FoldStageUnder(*tree.stage(first_stage).duration, tree.stage(first_stage).fanout,
                        upper, max_d, options);
}

std::vector<PiecewiseLinear> BuildQualityCurveStack(const TreeSpec& tree, double max_d,
                                                    const QualityGridOptions& options) {
  std::vector<PiecewiseLinear> stack(static_cast<size_t>(tree.num_stages()));
  // Build top-down so each level reuses the one above instead of recursing.
  int n = tree.num_stages();
  stack[static_cast<size_t>(n - 1)] =
      TabulateCdf(*tree.stage(n - 1).duration, max_d, options.grid_points);
  for (int i = n - 2; i >= 0; --i) {
    stack[static_cast<size_t>(i)] =
        FoldStageUnder(*tree.stage(i).duration, tree.stage(i).fanout,
                       stack[static_cast<size_t>(i + 1)], max_d, options);
  }
  return stack;
}

double MaxExpectedQuality(const TreeSpec& tree, double deadline,
                          const QualityGridOptions& options) {
  CEDAR_CHECK_GT(deadline, 0.0);
  return BuildQualityCurve(tree, 0, deadline, options)(deadline);
}

}  // namespace cedar
