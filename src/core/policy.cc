#include "src/core/policy.h"

#include "src/common/logging.h"

namespace cedar {

TreeSpec QueryTruth::OverlayOn(const TreeSpec& base) const {
  CEDAR_CHECK_EQ(static_cast<int>(stage_durations.size()), base.num_stages())
      << "truth/stage count mismatch";
  std::vector<StageSpec> stages;
  stages.reserve(stage_durations.size());
  for (int i = 0; i < base.num_stages(); ++i) {
    CEDAR_CHECK(stage_durations[static_cast<size_t>(i)] != nullptr);
    stages.emplace_back(stage_durations[static_cast<size_t>(i)], base.stage(i).fanout);
  }
  return TreeSpec(std::move(stages));
}

void WaitPolicy::BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) {
  (void)ctx;
  (void)truth;
  current_wait_ = 0.0;
}

double WaitPolicy::DecideInitialWait(const AggregatorContext& ctx) {
  current_wait_ = InitialWait(ctx);
  return current_wait_;
}

double WaitPolicy::DecideOnArrival(const AggregatorContext& ctx, double arrival_time,
                                   const std::vector<double>& arrivals) {
  current_wait_ = OnArrival(ctx, arrival_time, arrivals);
  return current_wait_;
}

double WaitPolicy::OnArrival(const AggregatorContext& ctx, double arrival_time,
                             const std::vector<double>& arrivals) {
  (void)ctx;
  (void)arrival_time;
  (void)arrivals;
  return current_wait_;
}

}  // namespace cedar
