// FitDistribution (Pseudocode 1, §4.2): per-query online learning of the
// bottom-stage duration distribution from arrival times at one aggregator.
//
// The distribution *type* is chosen offline (§4.2.1, see
// src/stats/fitting.h); this class learns its *parameters* online. As each
// of the k child outputs arrives, the arrival time is recorded; the current
// fit treats the i-th arrival as a draw from the i-th order statistic of k
// samples and applies the pairwise estimator from src/stats/estimators.h.
// Setting |use_empirical_estimates| switches to the biased sample-moments
// baseline (the ablation of Figure 10).

#ifndef CEDAR_SRC_CORE_ONLINE_LEARNER_H_
#define CEDAR_SRC_CORE_ONLINE_LEARNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/stats/distribution.h"
#include "src/stats/estimators.h"

namespace cedar {

struct OnlineLearnerOptions {
  // Distribution family to fit (the offline type decision).
  DistributionFamily family = DistributionFamily::kLogNormal;

  // Minimum number of arrivals before a fit is produced. Two suffice
  // mathematically, but a 2-point fit is extremely noisy and can drive the
  // optimizer to send almost immediately; the paper's error curves
  // (Figure 9) show estimates stabilize around 10 arrivals, which is the
  // default here. Tests and the estimation-error bench set it lower.
  int min_samples = 10;

  // Use exact integrated order-statistic scores (default) or Blom.
  OrderScoreMethod score_method = OrderScoreMethod::kExact;

  // Figure-10 ablation: ignore order statistics and fit plain sample
  // moments of the (biased) early arrivals.
  bool use_empirical_estimates = false;
};

class OnlineLearner {
 public:
  // |fanout| is k, the total number of children whose order statistics the
  // arrivals represent.
  OnlineLearner(int fanout, OnlineLearnerOptions options = {});

  // Records the next arrival. Times must be non-decreasing (they are
  // arrival times at one aggregator).
  void Observe(double arrival_time);

  // Number of arrivals observed so far.
  int num_observations() const { return static_cast<int>(arrivals_.size()); }

  // Current parameter fit, or nullopt if fewer than min_samples arrivals
  // (or the estimator degenerated). Recomputed lazily per call after new
  // observations.
  std::optional<DistributionSpec> CurrentFit() const;

  // Like CurrentFit() but materialized as a Distribution.
  std::unique_ptr<Distribution> CurrentDistribution() const;

  const std::vector<double>& arrivals() const { return arrivals_; }
  int fanout() const { return fanout_; }

  // Clears all observations (reused across queries).
  void Reset();

 private:
  int fanout_;
  OnlineLearnerOptions options_;
  std::vector<double> arrivals_;

  mutable bool fit_valid_ = false;
  mutable std::optional<DistributionSpec> cached_fit_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_ONLINE_LEARNER_H_
