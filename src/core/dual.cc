#include "src/core/dual.h"

#include "src/common/logging.h"

namespace cedar {

DualSolution SolveDeadlineForQuality(const TreeSpec& tree, double target_quality,
                                     double max_deadline, double tolerance,
                                     const QualityGridOptions& options) {
  CEDAR_CHECK(target_quality > 0.0 && target_quality < 1.0)
      << "target quality must be in (0,1): " << target_quality;
  CEDAR_CHECK_GT(max_deadline, 0.0);
  CEDAR_CHECK_GT(tolerance, 0.0);

  DualSolution solution;
  double q_max = MaxExpectedQuality(tree, max_deadline, options);
  if (q_max < target_quality) {
    solution.deadline = max_deadline;
    solution.achieved_quality = q_max;
    solution.feasible = false;
    return solution;
  }

  // q_n(D) is monotone in D (more budget can only help when waits are
  // optimal), so a plain bisection converges.
  double lo = 0.0;
  double hi = max_deadline;
  while ((hi - lo) > tolerance * max_deadline) {
    double mid = 0.5 * (lo + hi);
    double q = mid > 0.0 ? MaxExpectedQuality(tree, mid, options) : 0.0;
    if (q >= target_quality) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  solution.deadline = hi;
  solution.achieved_quality = MaxExpectedQuality(tree, hi, options);
  solution.feasible = true;
  return solution;
}

}  // namespace cedar
