#include "src/core/tracing_policy.h"

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace cedar {

void DecisionRecorder::Record(WaitDecisionRecord record) {
  MutexLock lock(mutex_);
  records_.push_back(record);
}

std::vector<WaitDecisionRecord> DecisionRecorder::Snapshot() const {
  MutexLock lock(mutex_);
  return records_;
}

std::vector<WaitDecisionRecord> DecisionRecorder::ForQuery(uint64_t query_sequence) const {
  MutexLock lock(mutex_);
  std::vector<WaitDecisionRecord> result;
  for (const auto& record : records_) {
    if (record.query_sequence == query_sequence) {
      result.push_back(record);
    }
  }
  return result;
}

void DecisionRecorder::Clear() {
  MutexLock lock(mutex_);
  records_.clear();
}

size_t DecisionRecorder::size() const {
  MutexLock lock(mutex_);
  return records_.size();
}

void DecisionRecorder::WriteCsv(const std::string& path) const {
  auto snapshot = Snapshot();
  CsvWriter writer(path);
  writer.Header({"query", "tier", "arrivals", "at_time", "wait"});
  for (const auto& record : snapshot) {
    writer.NumericRow({static_cast<double>(record.query_sequence),
                       static_cast<double>(record.tier), static_cast<double>(record.arrivals),
                       record.at_time, record.wait});
  }
}

TracingPolicy::TracingPolicy(std::unique_ptr<WaitPolicy> inner, DecisionRecorder* recorder)
    : inner_(std::move(inner)), recorder_(recorder) {
  CEDAR_CHECK(inner_ != nullptr);
  CEDAR_CHECK(recorder_ != nullptr);
}

std::unique_ptr<WaitPolicy> TracingPolicy::Clone() const {
  return std::make_unique<TracingPolicy>(inner_->Clone(), recorder_);
}

std::unique_ptr<WaitPolicy> TracingPolicy::ForkForWorker() const {
  return std::make_unique<TracingPolicy>(inner_->ForkForWorker(), recorder_);
}

void TracingPolicy::BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) {
  WaitPolicy::BeginQuery(ctx, truth);
  inner_->BeginQuery(ctx, truth);
  query_sequence_ = truth != nullptr ? truth->sequence : 0;
}

double TracingPolicy::InitialWait(const AggregatorContext& ctx) {
  double wait = inner_->DecideInitialWait(ctx);
  recorder_->Record({query_sequence_, ctx.tier, 0, 0.0, wait});
  return wait;
}

double TracingPolicy::OnArrival(const AggregatorContext& ctx, double arrival_time,
                                const std::vector<double>& arrivals) {
  double wait = inner_->DecideOnArrival(ctx, arrival_time, arrivals);
  recorder_->Record(
      {query_sequence_, ctx.tier, static_cast<int>(arrivals.size()), arrival_time, wait});
  return wait;
}

}  // namespace cedar
