// Process-wide precompute service for wait tables (§4.3.3 fast path).
//
// CedarPolicy historically kept a *per-worker* TableCache, so a sweep with N
// worker forks rebuilt the same (curve, deadline) table up to N times. The
// WaitTableStore amortizes that work across every worker in the process:
//
//  * Keys are **content fingerprints** of everything a build consumes — the
//    upper-quality curve's ys and extent, the remaining deadline, the fanout,
//    epsilon, and the WaitTableSpec. Never addresses: per-query curve stacks
//    are freed between queries, so a recycled allocation could alias a stale
//    table (same hazard TableCache guarded against, solved here by keying).
//  * Lookups hash the fingerprint to one of a fixed set of shards, each under
//    its own mutex, so concurrent hits from sweep workers rarely contend.
//  * Construction is **single-flight**: when K workers miss on the same key,
//    exactly one builds while the rest block on that entry's shared_future.
//    The builder may parallelize the grid fill over a lent ThreadPool (see
//    WaitTable's build_pool parameter) — bit-identical to a serial build.
//  * Capacity is LRU-bounded per shard; evicting a table retires its
//    clamped-lookup count into the store's stats so the mis-sized-grid signal
//    survives eviction.
//
// Stats are also exported through the obs MetricsRegistry (when enabled) as
// wait_table_store.{hits,misses,build_waits,evictions}.
//
// Determinism: a returned table depends only on its key (WaitTable's build is
// thread-count-invariant), so experiment results are byte-identical with the
// store enabled or disabled, for any worker count. See DESIGN.md §11.

#ifndef CEDAR_SRC_CORE_WAIT_TABLE_STORE_H_
#define CEDAR_SRC_CORE_WAIT_TABLE_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/wait_table.h"

namespace cedar {

class ThreadPool;

// The full content a wait-table build depends on. Equality is deep (curve ys
// included); Fingerprint() mixes every field, so equal keys always collide
// and unequal keys collide only by hash accident — which the store resolves
// with a chained content compare.
struct WaitTableKey {
  WaitTableSpec spec;
  int fanout = 0;
  double deadline = 0.0;  // remaining deadline the table was built for
  double epsilon = 0.0;
  double curve_min_x = 0.0;
  double curve_max_x = 0.0;
  std::vector<double> curve_ys;

  static WaitTableKey Of(const WaitTableSpec& spec, int fanout,
                         const PiecewiseLinear& upper_quality, double deadline,
                         double epsilon);

  bool operator==(const WaitTableKey& other) const;

  // 64-bit content hash (splitmix64-style mixing over the raw double bits).
  // Not an identity: the store compares full keys on fingerprint collisions.
  uint64_t Fingerprint() const;
};

// True iff |key| was built from exactly these inputs. Equivalent to
// key == WaitTableKey::Of(...) but without copying the curve's ys.
bool MatchesKey(const WaitTableKey& key, const WaitTableSpec& spec, int fanout,
                const PiecewiseLinear& upper_quality, double deadline, double epsilon);

struct WaitTableStoreOptions {
  // Total table capacity across shards; each shard holds ~capacity/num_shards
  // entries (at least one). A fig08-style sweep needs one table per distinct
  // (deadline, curve), so the default comfortably covers whole sweeps.
  size_t capacity = 128;
  int num_shards = 8;
  // Borrowed pool for parallel grid fills (may be null: builds are serial).
  // Also settable later via SetBuildPool.
  ThreadPool* build_pool = nullptr;
  // ANDed onto every fingerprint before use. All-ones in production; tests
  // set 0 to force every key into one chain and exercise collision handling.
  uint64_t fingerprint_mask = ~0ull;
};

// Point-in-time counters (monotone since construction or Clear()).
struct WaitTableStoreStats {
  long long hits = 0;         // lookup found a ready table
  long long misses = 0;       // lookup built the table itself
  long long build_waits = 0;  // lookup blocked on another thread's build
  long long evictions = 0;    // tables dropped by the LRU bound
  // Clamped Lookup calls summed over evicted tables plus tables still
  // resident — the store-wide mis-sized-grid signal.
  long long clamped_lookups = 0;

  long long Gets() const { return hits + misses + build_waits; }
  double HitRate() const {
    long long gets = Gets();
    return gets > 0 ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
  }
};

class WaitTableStore {
 public:
  using TablePtr = std::shared_ptr<const WaitTable>;

  explicit WaitTableStore(WaitTableStoreOptions options = {});

  WaitTableStore(const WaitTableStore&) = delete;
  WaitTableStore& operator=(const WaitTableStore&) = delete;

  // The process-wide store CedarPolicy resolves to by default.
  static WaitTableStore& Global();

  // Returns the table for |key|, building it (single-flight) on a miss.
  // |upper_quality| must be the curve |key| was fingerprinted from (or one
  // equal in content): a miss builds from this live curve, never from a
  // reconstruction, so the table is bit-identical to a direct WaitTable
  // build. Blocks until the table is ready; never returns null.
  TablePtr GetOrBuild(const WaitTableKey& key, const PiecewiseLinear& upper_quality);

  // Convenience: key construction + lookup.
  TablePtr GetOrBuild(const WaitTableSpec& spec, int fanout,
                      const PiecewiseLinear& upper_quality, double deadline,
                      double epsilon);

  // Lends (or revokes, with null) a pool for parallel builds. Safe to call
  // concurrently with lookups; in-flight builds keep the pool they started
  // with. The caller must revoke before destroying the pool.
  void SetBuildPool(ThreadPool* pool) { build_pool_.store(pool, std::memory_order_release); }

  WaitTableStoreStats GetStats() const;

  // Resident tables (ready or building).
  size_t size() const;

  // Drops every entry and zeroes the stats. Callers must ensure no lookup is
  // concurrently in flight (tests, bench runs between configurations).
  void Clear();

 private:
  struct Entry {
    WaitTableKey key;
    uint64_t fingerprint = 0;
    std::shared_future<TablePtr> future;
    uint64_t lru_tick = 0;
    bool ready = false;  // future holds a value; safe to evict
  };

  struct alignas(64) Shard {
    mutable Mutex mutex;
    // Chained (linear scan) entry list and stats, all guarded by |mutex|.
    std::vector<std::shared_ptr<Entry>> entries CEDAR_GUARDED_BY(mutex);
    uint64_t tick CEDAR_GUARDED_BY(mutex) = 0;
    long long hits CEDAR_GUARDED_BY(mutex) = 0;
    long long misses CEDAR_GUARDED_BY(mutex) = 0;
    long long build_waits CEDAR_GUARDED_BY(mutex) = 0;
    long long evictions CEDAR_GUARDED_BY(mutex) = 0;
    // clamped_lookups of evicted tables.
    long long retired_clamped CEDAR_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[fingerprint % shards_.size()];
  }
  // Evicts least-recently-used *ready* entries until the shard is under its
  // per-shard cap.
  void EnforceCapacity(Shard& shard) CEDAR_REQUIRES(shard.mutex);

  WaitTableStoreOptions options_;
  size_t per_shard_capacity_;
  std::atomic<ThreadPool*> build_pool_;
  std::vector<Shard> shards_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_WAIT_TABLE_STORE_H_
