// Name-based policy construction for CLI tools and config-driven
// experiments.
//
// Recognized names: "cedar", "cedar-empirical", "cedar-offline",
// "prop-split", "equal-split", "mean-subtract", "ideal", and
// "fixed:<wait>" (e.g. "fixed:120.5"). Names match WaitPolicy::name() so a
// round trip through the registry is stable.

#ifndef CEDAR_SRC_CORE_POLICY_REGISTRY_H_
#define CEDAR_SRC_CORE_POLICY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/policy.h"

namespace cedar {

// Builds the policy named |name|; fatal on unknown names (listing the
// available ones). |name| may carry a "fixed:<wait>" parameter.
std::unique_ptr<WaitPolicy> MakePolicyByName(const std::string& name);

// All constructible names (without the parameterized "fixed:<wait>" form).
std::vector<std::string> KnownPolicyNames();

// Parses a comma-separated list ("prop-split,cedar,ideal") into policies.
std::vector<std::unique_ptr<WaitPolicy>> MakePolicyList(const std::string& comma_separated);

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_POLICY_REGISTRY_H_
