#include "src/core/policy_registry.h"

#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"
#include "src/core/policies.h"

namespace cedar {

std::vector<std::string> KnownPolicyNames() {
  return {"cedar",       "cedar-empirical", "cedar-offline", "prop-split",
          "equal-split", "mean-subtract",   "ideal"};
}

std::unique_ptr<WaitPolicy> MakePolicyByName(const std::string& name) {
  if (name == "cedar") {
    return std::make_unique<CedarPolicy>();
  }
  if (name == "cedar-empirical") {
    CedarPolicyOptions options;
    options.learner.use_empirical_estimates = true;
    return std::make_unique<CedarPolicy>(options);
  }
  if (name == "cedar-offline") {
    return std::make_unique<OfflineOptimalPolicy>();
  }
  if (name == "prop-split") {
    return std::make_unique<ProportionalSplitPolicy>();
  }
  if (name == "equal-split") {
    return std::make_unique<EqualSplitPolicy>();
  }
  if (name == "mean-subtract") {
    return std::make_unique<MeanSubtractPolicy>();
  }
  if (name == "ideal") {
    return std::make_unique<OraclePolicy>();
  }
  constexpr char kFixedPrefix[] = "fixed:";
  if (name.rfind(kFixedPrefix, 0) == 0) {
    const std::string value = name.substr(sizeof(kFixedPrefix) - 1);
    char* end = nullptr;
    double wait = std::strtod(value.c_str(), &end);
    CEDAR_CHECK(end != value.c_str() && *end == '\0' && wait >= 0.0)
        << "bad fixed policy wait: '" << value << "'";
    return std::make_unique<FixedWaitPolicy>(wait);
  }

  std::ostringstream known;
  for (const auto& known_name : KnownPolicyNames()) {
    known << " " << known_name;
  }
  CEDAR_LOG(FATAL) << "unknown policy '" << name << "'; known:" << known.str()
                   << " fixed:<wait>";
  __builtin_unreachable();
}

std::vector<std::unique_ptr<WaitPolicy>> MakePolicyList(const std::string& comma_separated) {
  std::vector<std::unique_ptr<WaitPolicy>> policies;
  std::istringstream in(comma_separated);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      policies.push_back(MakePolicyByName(token));
    }
  }
  CEDAR_CHECK(!policies.empty()) << "empty policy list: '" << comma_separated << "'";
  return policies;
}

}  // namespace cedar
