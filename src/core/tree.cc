#include "src/core/tree.h"

#include <sstream>

#include "src/common/logging.h"

namespace cedar {

TreeSpec::TreeSpec(std::vector<StageSpec> stages) : stages_(std::move(stages)) {
  CEDAR_CHECK_GE(stages_.size(), 1u) << "a tree needs at least one stage";
  for (const auto& stage : stages_) {
    CEDAR_CHECK(stage.duration != nullptr) << "stage without a duration distribution";
    CEDAR_CHECK_GE(stage.fanout, 1) << "stage fanout must be >= 1";
  }
}

TreeSpec TreeSpec::TwoLevel(std::shared_ptr<const Distribution> x1, int k1,
                            std::shared_ptr<const Distribution> x2, int k2) {
  std::vector<StageSpec> stages;
  stages.emplace_back(std::move(x1), k1);
  stages.emplace_back(std::move(x2), k2);
  return TreeSpec(std::move(stages));
}

const StageSpec& TreeSpec::stage(int i) const {
  CEDAR_CHECK(i >= 0 && i < num_stages()) << "stage index " << i << " out of range";
  return stages_[static_cast<size_t>(i)];
}

long long TreeSpec::TotalProcesses() const {
  long long total = 1;
  for (const auto& stage : stages_) {
    total *= stage.fanout;
  }
  return total;
}

long long TreeSpec::AggregatorsAtTier(int tier) const {
  CEDAR_CHECK(tier >= 0 && tier < num_aggregator_tiers()) << "tier " << tier << " out of range";
  long long total = 1;
  for (int i = tier + 1; i < num_stages(); ++i) {
    total *= stages_[static_cast<size_t>(i)].fanout;
  }
  return total;
}

double TreeSpec::SumOfStageMeans() const {
  double sum = 0.0;
  for (const auto& stage : stages_) {
    sum += stage.duration->Mean();
  }
  return sum;
}

TreeSpec TreeSpec::WithStage(int i, StageSpec stage) const {
  CEDAR_CHECK(i >= 0 && i < num_stages());
  std::vector<StageSpec> stages = stages_;
  stages[static_cast<size_t>(i)] = std::move(stage);
  return TreeSpec(std::move(stages));
}

std::string TreeSpec::ToString() const {
  std::ostringstream s;
  s << "tree[";
  for (int i = 0; i < num_stages(); ++i) {
    if (i != 0) {
      s << " -> ";
    }
    s << "X" << (i + 1) << "=" << stages_[static_cast<size_t>(i)].duration->ToString() << " k"
      << (i + 1) << "=" << stages_[static_cast<size_t>(i)].fanout;
  }
  s << "]";
  return s.str();
}

}  // namespace cedar
