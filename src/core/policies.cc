#include "src/core/policies.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cedar {
namespace {

double OfflineOptimalWait(const AggregatorContext& ctx) {
  CEDAR_CHECK(ctx.offline_tree != nullptr);
  CEDAR_CHECK(ctx.upper_quality != nullptr);
  double remaining = std::max(0.0, ctx.deadline - ctx.start_offset);
  WaitDecision decision =
      OptimizeWait(*ctx.offline_tree->stage(ctx.tier).duration,
                   ctx.fanout, *ctx.upper_quality, remaining, ctx.epsilon);
  return ctx.start_offset + decision.wait;
}

}  // namespace

// ---------------------------------------------------------------- FixedWait

FixedWaitPolicy::FixedWaitPolicy(double absolute_wait) : absolute_wait_(absolute_wait) {
  CEDAR_CHECK_GE(absolute_wait, 0.0);
}

std::unique_ptr<WaitPolicy> FixedWaitPolicy::Clone() const {
  return std::make_unique<FixedWaitPolicy>(*this);
}

double FixedWaitPolicy::InitialWait(const AggregatorContext& ctx) {
  (void)ctx;
  return absolute_wait_;
}

// --------------------------------------------------------------- EqualSplit

std::unique_ptr<WaitPolicy> EqualSplitPolicy::Clone() const {
  return std::make_unique<EqualSplitPolicy>(*this);
}

double EqualSplitPolicy::InitialWait(const AggregatorContext& ctx) {
  CEDAR_CHECK(ctx.offline_tree != nullptr);
  int remaining_stages = ctx.offline_tree->num_stages() - ctx.tier;
  CEDAR_CHECK_GE(remaining_stages, 1);
  double budget = std::max(0.0, ctx.deadline - ctx.start_offset);
  return ctx.start_offset + budget / static_cast<double>(remaining_stages);
}

// -------------------------------------------------------- ProportionalSplit

std::unique_ptr<WaitPolicy> ProportionalSplitPolicy::Clone() const {
  return std::make_unique<ProportionalSplitPolicy>(*this);
}

double ProportionalSplitPolicy::InitialWait(const AggregatorContext& ctx) {
  CEDAR_CHECK(ctx.offline_tree != nullptr);
  // D * (mu_1 + ... + mu_{tier+1-th stage}) / sum of all stage means: the
  // share of the deadline proportional to the mean time spent up to and
  // including this aggregator's input stage (§3).
  double below = 0.0;
  for (int i = 0; i <= ctx.tier; ++i) {
    below += ctx.offline_tree->stage(i).duration->Mean();
  }
  double total = ctx.offline_tree->SumOfStageMeans();
  CEDAR_CHECK_GT(total, 0.0);
  double wait = ctx.deadline * below / total;
  return Clamp(wait, ctx.start_offset, ctx.deadline);
}

// ------------------------------------------------------------- MeanSubtract

std::unique_ptr<WaitPolicy> MeanSubtractPolicy::Clone() const {
  return std::make_unique<MeanSubtractPolicy>(*this);
}

double MeanSubtractPolicy::InitialWait(const AggregatorContext& ctx) {
  CEDAR_CHECK(ctx.offline_tree != nullptr);
  double above = 0.0;
  for (int i = ctx.tier + 1; i < ctx.offline_tree->num_stages(); ++i) {
    above += ctx.offline_tree->stage(i).duration->Mean();
  }
  return Clamp(ctx.deadline - above, ctx.start_offset, ctx.deadline);
}

// ----------------------------------------------------------- OfflineOptimal

std::unique_ptr<WaitPolicy> OfflineOptimalPolicy::Clone() const {
  return std::make_unique<OfflineOptimalPolicy>(*this);
}

double OfflineOptimalPolicy::InitialWait(const AggregatorContext& ctx) {
  return OfflineOptimalWait(ctx);
}

// -------------------------------------------------------------------- Cedar

CedarPolicy::CedarPolicy(CedarPolicyOptions options) : options_(options) {
  CEDAR_CHECK_GE(options_.reoptimize_every, 1);
  if (options_.use_wait_table) {
    CEDAR_CHECK(options_.table_spec.family == options_.learner.family)
        << "wait-table family must match the learner family";
    if (!options_.share_wait_tables) {
      table_cache_ = std::make_shared<TableCache>();
    }
  }
}

std::unique_ptr<WaitPolicy> CedarPolicy::Clone() const {
  // Clones share options (and the store-off wait-table cache) but never
  // learner state or the store-table memo.
  auto clone = std::make_unique<CedarPolicy>(options_);
  clone->table_cache_ = table_cache_;
  return clone;
}

std::unique_ptr<WaitPolicy> CedarPolicy::ForkForWorker() const {
  // A fresh instance shares nothing mutable with this one: the store-off
  // constructor allocates a new TableCache, and the shared-store path keeps
  // only per-instance memo state. The WaitTableStore itself is safe to share
  // across workers — that sharing is the point of the store.
  return std::make_unique<CedarPolicy>(options_);
}

WaitTableStore* CedarPolicy::ResolveStore(const AggregatorContext& ctx) const {
  if (!options_.use_wait_table || !options_.share_wait_tables) {
    return nullptr;
  }
  if (ctx.table_store != nullptr) {
    return ctx.table_store;
  }
  if (options_.table_store != nullptr) {
    return options_.table_store;
  }
  return &WaitTableStore::Global();
}

const WaitTable& CedarPolicy::StoreTableFor(WaitTableStore& store,
                                            const AggregatorContext& ctx) {
  double remaining = std::max(0.0, ctx.deadline - ctx.start_offset);
  if (store_table_ != nullptr && store_key_.deadline == remaining) {
    // Same query as the last validation: the curve behind the memo is still
    // the one in flight. Across queries, re-validate by curve *content* (the
    // store's keying discipline — a hit is the stationary-upper-curve case).
    bool same_query = query_sequence_ != 0 && store_sequence_ == query_sequence_;
    if (same_query || MatchesKey(store_key_, options_.table_spec, ctx.fanout,
                                 *ctx.upper_quality, remaining, ctx.epsilon)) {
      store_sequence_ = query_sequence_;
      return *store_table_;
    }
  }
  store_key_ = WaitTableKey::Of(options_.table_spec, ctx.fanout, *ctx.upper_quality,
                                remaining, ctx.epsilon);
  store_table_ = store.GetOrBuild(store_key_, *ctx.upper_quality);
  store_sequence_ = query_sequence_;
  return *store_table_;
}

const WaitTable& CedarPolicy::TableFor(const AggregatorContext& ctx) {
  if (WaitTableStore* store = ResolveStore(ctx); store != nullptr) {
    return StoreTableFor(*store, ctx);
  }
  MutexLock lock(table_cache_->mutex);
  TableCache& cache = *table_cache_;
  double remaining = std::max(0.0, ctx.deadline - ctx.start_offset);
  bool key_match = cache.table != nullptr && cache.curve_key == ctx.upper_quality &&
                   cache.deadline == remaining;
  if (key_match) {
    // Same query as the last validation: the curve behind the pointer is
    // still alive, the table is trusted. Across queries a recycled
    // allocation can alias the old address, so re-validate by content (one
    // vector compare per query; a hit is the stationary-upper-curve case).
    bool same_query = query_sequence_ != 0 && cache.sequence == query_sequence_;
    if (same_query ||
        (cache.curve_min_x == ctx.upper_quality->min_x() &&
         cache.curve_max_x == ctx.upper_quality->max_x() &&
         cache.curve_ys == ctx.upper_quality->ys())) {
      cache.sequence = query_sequence_;
      return *cache.table;
    }
  }
  cache.table = std::make_unique<WaitTable>(options_.table_spec, ctx.fanout,
                                            *ctx.upper_quality, remaining, ctx.epsilon);
  cache.curve_key = ctx.upper_quality;
  cache.deadline = remaining;
  cache.curve_ys = ctx.upper_quality->ys();
  cache.curve_min_x = ctx.upper_quality->min_x();
  cache.curve_max_x = ctx.upper_quality->max_x();
  cache.sequence = query_sequence_;
  return *cache.table;
}

void CedarPolicy::BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) {
  WaitPolicy::BeginQuery(ctx, truth);
  query_sequence_ = truth != nullptr ? truth->sequence : 0;
  arrivals_since_reopt_ = 0;
  if (LearnsAt(ctx.tier)) {
    // Small fanouts cannot supply the default number of warm-up samples;
    // keep at least two-thirds of the children as usable signal.
    OnlineLearnerOptions learner_options = options_.learner;
    learner_options.min_samples =
        std::max(2, std::min(learner_options.min_samples, (2 * ctx.fanout) / 3));
    effective_min_samples_ = learner_options.min_samples;
    learner_ = std::make_unique<OnlineLearner>(ctx.fanout, learner_options);
  } else {
    learner_.reset();
  }
}

double CedarPolicy::InitialWait(const AggregatorContext& ctx) {
  // Before any arrival, Cedar can only use the offline fit; the online
  // estimate takes over as outputs come in.
  return OfflineOptimalWait(ctx);
}

double CedarPolicy::OnArrival(const AggregatorContext& ctx, double arrival_time,
                              const std::vector<double>& arrivals) {
  (void)arrivals;
  if (learner_ == nullptr) {
    return current_wait_;
  }
  // The learner models stage durations relative to this tier's dispatch
  // time. Tier 0 dispatches at 0, so arrivals are durations directly;
  // clamping guards upper tiers where children may send early.
  double stage_duration = std::max(arrival_time - ctx.start_offset, 1e-12);
  learner_->Observe(stage_duration);

  if (learner_->num_observations() < effective_min_samples_) {
    return current_wait_;
  }
  if (++arrivals_since_reopt_ < options_.reoptimize_every) {
    return current_wait_;
  }
  arrivals_since_reopt_ = 0;

  auto fit = learner_->CurrentFit();
  if (!fit.has_value()) {
    return current_wait_;
  }
  if (options_.use_wait_table) {
    return ctx.start_offset + TableFor(ctx).LookupSpec(*fit);
  }
  auto fitted = MakeDistribution(*fit);
  double remaining = std::max(0.0, ctx.deadline - ctx.start_offset);
  WaitDecision decision =
      OptimizeWait(*fitted, ctx.fanout, *ctx.upper_quality, remaining, ctx.epsilon);
  return ctx.start_offset + decision.wait;
}

// ------------------------------------------------------------------- Oracle

OraclePolicy::OraclePolicy() : cache_(std::make_shared<PlanCache>()) {}

std::unique_ptr<WaitPolicy> OraclePolicy::Clone() const {
  auto clone = std::make_unique<OraclePolicy>();
  clone->cache_ = cache_;  // share the per-query plan across all nodes
  return clone;
}

std::unique_ptr<WaitPolicy> OraclePolicy::ForkForWorker() const {
  return std::make_unique<OraclePolicy>();  // fresh plan cache
}

void OraclePolicy::BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) {
  WaitPolicy::BeginQuery(ctx, truth);
  truth_ = truth;
}

double OraclePolicy::InitialWait(const AggregatorContext& ctx) {
  CEDAR_CHECK(ctx.offline_tree != nullptr);
  MutexLock lock(cache_->mutex);
  uint64_t sequence = truth_ != nullptr ? truth_->sequence : 0;
  if (sequence == 0 || cache_->sequence != sequence || cache_->deadline != ctx.deadline) {
    TreeSpec tree =
        truth_ != nullptr ? truth_->OverlayOn(*ctx.offline_tree) : *ctx.offline_tree;
    QualityGridOptions options;
    if (ctx.deadline > 0.0 && ctx.epsilon > 0.0) {
      options.epsilon_fraction = ctx.epsilon / ctx.deadline;
    }
    cache_->plan = PlanTree(tree, ctx.deadline, options);
    cache_->sequence = sequence;
    cache_->deadline = ctx.deadline;
  }
  CEDAR_CHECK_LT(static_cast<size_t>(ctx.tier), cache_->plan.absolute_waits.size());
  return cache_->plan.absolute_waits[static_cast<size_t>(ctx.tier)];
}

}  // namespace cedar
