// CalculateWait (Pseudocode 2): picks the wait duration that maximizes the
// expected quality contribution of one aggregator, by scanning candidate
// waits in steps of eps and balancing the gain (Eqn 3) against the loss
// (Eqn 4), given the quality curve q_{n-1} of the subtree above it.

#ifndef CEDAR_SRC_CORE_WAIT_OPTIMIZER_H_
#define CEDAR_SRC_CORE_WAIT_OPTIMIZER_H_

#include <vector>

#include "src/core/quality.h"
#include "src/core/tree.h"

namespace cedar {

struct WaitDecision {
  // Chosen wait duration, relative to this aggregator's start.
  double wait = 0.0;
  // Expected quality contribution at that wait (the running max of the
  // gain/loss scan).
  double expected_quality = 0.0;
};

// Scans c in [0, deadline] in steps of |epsilon| per Pseudocode 2. |bottom|
// is this aggregator's child-duration distribution (X1 from its viewpoint),
// |fanout| its child count, |upper_quality| the q-curve of everything above
// it (for a two-level tree: the tabulated CDF of X2), and |deadline| the
// remaining time budget. Ties pick the later wait, matching the paper's
// ">= bestQ" update rule.
WaitDecision OptimizeWait(const Distribution& bottom, int fanout,
                          const PiecewiseLinear& upper_quality, double deadline, double epsilon);

// A full static plan for a tree: the absolute send time of every aggregator
// tier, assuming tier i's children were dispatched at the planned send time
// of tier i-1 (tier 0 starts at 0).
struct TreePlan {
  // absolute_waits[i] is the absolute time at which tier-i aggregators send
  // their partial result upstream; size = num_aggregator_tiers().
  std::vector<double> absolute_waits;
  // q_n(D): the expected quality of the plan.
  double expected_quality = 0.0;
};

// Plans every tier of |tree| under end-to-end deadline |deadline|, building
// the quality-curve stack once. This is the "Ideal"/offline computation; the
// online policies re-run OptimizeWait for the bottom tier as arrivals come
// in.
TreePlan PlanTree(const TreeSpec& tree, double deadline, const QualityGridOptions& options = {});

// Parallel variant of OptimizeWait (§4.3.3: "the exploration is easily
// parallelizable, i.e., we can perform the calculation for each value of
// epsilon independently"). The scan range is split into |threads| chunks;
// each chunk's partial gain/loss sums are computed concurrently, then a
// sequential prefix pass recovers the global running maximum — equal to the
// serial scan up to floating-point association (identical tie-breaking).
// threads <= 1 falls back to OptimizeWait.
WaitDecision OptimizeWaitParallel(const Distribution& bottom, int fanout,
                                  const PiecewiseLinear& upper_quality, double deadline,
                                  double epsilon, int threads);

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_WAIT_OPTIMIZER_H_
