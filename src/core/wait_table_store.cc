#include "src/core/wait_table_store.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace cedar {
namespace {

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ Mix64(value));
}

uint64_t DoubleBits(double value) { return std::bit_cast<uint64_t>(value); }

bool SpecEquals(const WaitTableSpec& a, const WaitTableSpec& b) {
  return a.family == b.family && a.location_min == b.location_min &&
         a.location_max == b.location_max && a.location_points == b.location_points &&
         a.scale_min == b.scale_min && a.scale_max == b.scale_max &&
         a.scale_points == b.scale_points;
}

}  // namespace

WaitTableKey WaitTableKey::Of(const WaitTableSpec& spec, int fanout,
                              const PiecewiseLinear& upper_quality, double deadline,
                              double epsilon) {
  WaitTableKey key;
  key.spec = spec;
  key.fanout = fanout;
  key.deadline = deadline;
  key.epsilon = epsilon;
  key.curve_min_x = upper_quality.min_x();
  key.curve_max_x = upper_quality.max_x();
  key.curve_ys = upper_quality.ys();
  return key;
}

bool WaitTableKey::operator==(const WaitTableKey& other) const {
  return SpecEquals(spec, other.spec) && fanout == other.fanout &&
         deadline == other.deadline && epsilon == other.epsilon &&
         curve_min_x == other.curve_min_x && curve_max_x == other.curve_max_x &&
         curve_ys == other.curve_ys;
}

uint64_t WaitTableKey::Fingerprint() const {
  uint64_t h = 0x5a8f2d13c0de7ab1ull;
  h = HashCombine(h, static_cast<uint64_t>(spec.family));
  h = HashCombine(h, DoubleBits(spec.location_min));
  h = HashCombine(h, DoubleBits(spec.location_max));
  h = HashCombine(h, static_cast<uint64_t>(spec.location_points));
  h = HashCombine(h, DoubleBits(spec.scale_min));
  h = HashCombine(h, DoubleBits(spec.scale_max));
  h = HashCombine(h, static_cast<uint64_t>(spec.scale_points));
  h = HashCombine(h, static_cast<uint64_t>(fanout));
  h = HashCombine(h, DoubleBits(deadline));
  h = HashCombine(h, DoubleBits(epsilon));
  h = HashCombine(h, DoubleBits(curve_min_x));
  h = HashCombine(h, DoubleBits(curve_max_x));
  h = HashCombine(h, curve_ys.size());
  for (double y : curve_ys) {
    h = HashCombine(h, DoubleBits(y));
  }
  return h;
}

bool MatchesKey(const WaitTableKey& key, const WaitTableSpec& spec, int fanout,
                const PiecewiseLinear& upper_quality, double deadline, double epsilon) {
  return SpecEquals(key.spec, spec) && key.fanout == fanout && key.deadline == deadline &&
         key.epsilon == epsilon && key.curve_min_x == upper_quality.min_x() &&
         key.curve_max_x == upper_quality.max_x() && key.curve_ys == upper_quality.ys();
}

WaitTableStore::WaitTableStore(WaitTableStoreOptions options)
    : options_(options), build_pool_(options.build_pool) {
  CEDAR_CHECK_GE(options_.capacity, static_cast<size_t>(1));
  CEDAR_CHECK_GE(options_.num_shards, 1);
  per_shard_capacity_ =
      std::max<size_t>(1, (options_.capacity + static_cast<size_t>(options_.num_shards) - 1) /
                              static_cast<size_t>(options_.num_shards));
  shards_ = std::vector<Shard>(static_cast<size_t>(options_.num_shards));
}

WaitTableStore& WaitTableStore::Global() {
  static WaitTableStore store;
  return store;
}

WaitTableStore::TablePtr WaitTableStore::GetOrBuild(const WaitTableKey& key,
                                                    const PiecewiseLinear& upper_quality) {
  CEDAR_PROFILE_SCOPE("wait_table_store.get");
  const uint64_t fingerprint = key.Fingerprint() & options_.fingerprint_mask;
  Shard& shard = ShardFor(fingerprint);

  std::shared_future<TablePtr> future;
  std::promise<TablePtr> promise;
  std::shared_ptr<Entry> building;
  bool wait_for_other = false;
  {
    MutexLock lock(shard.mutex);
    for (auto& entry : shard.entries) {
      // Fingerprint first (cheap reject), full content compare to resolve
      // hash collisions — distinct keys sharing a fingerprint chain here.
      if (entry->fingerprint == fingerprint && entry->key == key) {
        entry->lru_tick = ++shard.tick;
        if (entry->ready) {
          ++shard.hits;
        } else {
          ++shard.build_waits;
          wait_for_other = true;
        }
        future = entry->future;
        break;
      }
    }
    if (!future.valid()) {
      ++shard.misses;
      building = std::make_shared<Entry>();
      building->key = key;
      building->fingerprint = fingerprint;
      building->future = promise.get_future().share();
      building->lru_tick = ++shard.tick;
      shard.entries.push_back(building);
      future = building->future;
    }
  }

  if (building != nullptr) {
    // Build outside the shard lock — hits on other keys in this shard
    // proceed while we build; same-key lookups block on the future
    // (single-flight). The build reads the caller's live curve, not a
    // reconstruction from the key, so the table is bit-for-bit what a
    // store-less WaitTable build from the same inputs produces.
    auto table = std::make_shared<const WaitTable>(
        key.spec, key.fanout, upper_quality, key.deadline, key.epsilon,
        build_pool_.load(std::memory_order_acquire));
    promise.set_value(table);
    {
      MutexLock lock(shard.mutex);
      building->ready = true;
      EnforceCapacity(shard);
    }
    if (MetricsEnabled()) {
      MetricsRegistry::Global().GetCounter("wait_table_store.misses").Increment();
    }
    return table;
  }

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter(wait_for_other ? "wait_table_store.build_waits"
                                       : "wait_table_store.hits")
        .Increment();
  }
  return future.get();
}

WaitTableStore::TablePtr WaitTableStore::GetOrBuild(const WaitTableSpec& spec, int fanout,
                                                    const PiecewiseLinear& upper_quality,
                                                    double deadline, double epsilon) {
  return GetOrBuild(WaitTableKey::Of(spec, fanout, upper_quality, deadline, epsilon),
                    upper_quality);
}

void WaitTableStore::EnforceCapacity(Shard& shard) CEDAR_REQUIRES(shard.mutex) {
  while (shard.entries.size() > per_shard_capacity_) {
    // Evict the least-recently-used *ready* entry; in-flight builds are
    // pinned (waiters hold their futures, and the builder will mark them
    // ready momentarily).
    size_t victim = shard.entries.size();
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (!shard.entries[i]->ready) {
        continue;
      }
      if (victim == shard.entries.size() ||
          shard.entries[i]->lru_tick < shard.entries[victim]->lru_tick) {
        victim = i;
      }
    }
    if (victim == shard.entries.size()) {
      return;  // everything in flight; retry on the next insert
    }
    TablePtr table = shard.entries[victim]->future.get();
    shard.retired_clamped += table->clamped_lookups();
    ++shard.evictions;
    shard.entries.erase(shard.entries.begin() + static_cast<long>(victim));
    if (MetricsEnabled()) {
      MetricsRegistry::Global().GetCounter("wait_table_store.evictions").Increment();
    }
  }
}

WaitTableStoreStats WaitTableStore::GetStats() const {
  WaitTableStoreStats stats;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.build_waits += shard.build_waits;
    stats.evictions += shard.evictions;
    stats.clamped_lookups += shard.retired_clamped;
    for (const auto& entry : shard.entries) {
      if (entry->ready) {
        stats.clamped_lookups += entry->future.get()->clamped_lookups();
      }
    }
  }
  return stats;
}

size_t WaitTableStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void WaitTableStore::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.entries.clear();
    shard.tick = 0;
    shard.hits = 0;
    shard.misses = 0;
    shard.build_waits = 0;
    shard.evictions = 0;
    shard.retired_clamped = 0;
  }
}

}  // namespace cedar
