// Precomputed wait-duration tables (§4.3.3: "one can simply precompute
// these wait-durations for recorded distributions").
//
// A WaitTable fixes the tree *above* an aggregator (the upper quality curve
// and the fanout) and precomputes the optimal wait over a grid of
// (location, scale) parameters of the learned bottom-stage distribution.
// The online path then replaces a full CalculateWait scan (~10^2..10^3 CDF
// evaluations) with one bilinear interpolation — the fast path for
// deployments with very tight deadlines or very high aggregator counts.
//
// Grids are in the *fitted parameter* space: (mu, sigma) for log-normal,
// (mean, sd) for normal. Lookups outside the grid are clamped to the edge
// (with a counter so callers can detect a mis-sized grid).

#ifndef CEDAR_SRC_CORE_WAIT_TABLE_H_
#define CEDAR_SRC_CORE_WAIT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/core/wait_optimizer.h"
#include "src/stats/distribution.h"

namespace cedar {

class ThreadPool;

struct WaitTableSpec {
  DistributionFamily family = DistributionFamily::kLogNormal;
  // Location (mu / mean) grid.
  double location_min = 0.0;
  double location_max = 1.0;
  int location_points = 33;
  // Scale (sigma / sd) grid.
  double scale_min = 0.1;
  double scale_max = 2.0;
  int scale_points = 17;
};

class WaitTable {
 public:
  // Precomputes optimal waits for every grid point: |fanout| children with
  // the parameterized bottom distribution, |upper_quality| above, remaining
  // deadline |deadline|, scan step |epsilon|. Cost: location_points *
  // scale_points CalculateWait scans, run once offline.
  //
  // |build_pool| (borrowed, may be null) parallelizes the grid fill: every
  // grid point is an independent OptimizeWait scan written to its own slot,
  // so the table is bit-identical to the serial build for any thread count.
  // The fill uses ParallelForChunksShared, so building from inside a pool
  // task (the wait-table store's single-flight path) cannot deadlock.
  WaitTable(WaitTableSpec spec, int fanout, const PiecewiseLinear& upper_quality,
            double deadline, double epsilon, ThreadPool* build_pool = nullptr);

  // Bilinear interpolation of the precomputed wait at the fitted
  // parameters. Out-of-grid values clamp to the edge.
  double Lookup(double location, double scale) const;

  // Like Lookup but takes a fitted spec (family must match).
  double LookupSpec(const DistributionSpec& fitted) const;

  // Number of Lookup calls that clamped at least one axis (atomic: lookups
  // may come from concurrent aggregators sharing one table).
  long long clamped_lookups() const { return clamped_lookups_.load(std::memory_order_relaxed); }

  const WaitTableSpec& spec() const { return spec_; }
  double deadline() const { return deadline_; }

 private:
  // Index arithmetic in size_t: int * int would overflow (UB) before the
  // widening cast on grids past ~2^31 cells.
  size_t CellIndex(int li, int si) const {
    return static_cast<size_t>(li) * static_cast<size_t>(spec_.scale_points) +
           static_cast<size_t>(si);
  }
  double& At(int li, int si) { return waits_[CellIndex(li, si)]; }
  double At(int li, int si) const { return waits_[CellIndex(li, si)]; }

  WaitTableSpec spec_;
  double deadline_;
  std::vector<double> waits_;
  mutable std::atomic<long long> clamped_lookups_{0};
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_WAIT_TABLE_H_
