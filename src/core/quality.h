// The recursive maximum-quality function q_n (§4.3 of the paper).
//
// q_n(D, X1, k1, ..., Xn, kn) is the maximum expected response quality of an
// n-stage tree under deadline D, equal to the maximum probability that any
// one process output reaches the root when every aggregator picks its
// optimal wait. The base case is q_1(d) = Phi_{Xn}(d); each additional
// bottom stage is folded in by scanning candidate waits c in steps of eps,
// accumulating
//
//   gain(c) = (Phi_X1(c+eps) - Phi_X1(c)) * q_{n-1}(D - (c+eps))      (Eqn 3)
//   loss(c) = (Phi_X1(c) - Phi_X1(c)^k1)
//             * (q_{n-1}(D - c) - q_{n-1}(D - (c+eps)))               (Eqn 4)
//
// and taking the running maximum of the partial sums. Curves are tabulated
// on a uniform grid and linearly interpolated, so building the full curve
// stack for an n-stage tree costs O(n * (D/eps)^2).

#ifndef CEDAR_SRC_CORE_QUALITY_H_
#define CEDAR_SRC_CORE_QUALITY_H_

#include <vector>

#include "src/common/math_util.h"
#include "src/core/tree.h"

namespace cedar {

// Tuning for the quality/wait computations.
struct QualityGridOptions {
  // Scan step eps, as a fraction of the deadline. The paper notes eps just
  // controls discretization error; 1/400 keeps curves smooth while staying
  // well inside the "tens of milliseconds" compute budget reported in §5.2.
  double epsilon_fraction = 1.0 / 400.0;

  // Number of points in each tabulated curve (grid covers [0, D]).
  int grid_points = 401;
};

// Expected number of outputs received by time t at an aggregator with fanout
// k over i.i.d. durations with CDF value phi = Phi_X(t), conditioned on not
// all k having arrived: k * (phi - phi^k) / (1 - phi^k) (Appendix C).
double ExpectedOutputsGivenNotAll(double phi, int k);

// Tabulates the CDF of |dist| on a uniform grid over [0, max_d]:
// the base-case curve q_1.
PiecewiseLinear TabulateCdf(const Distribution& dist, double max_d, int grid_points);

// Builds q for the subtree formed by stages [first_stage, n) of |tree| under
// deadline budget |max_d|. The returned curve maps a remaining deadline
// d in [0, max_d] to the maximum expected quality of that subtree.
PiecewiseLinear BuildQualityCurve(const TreeSpec& tree, int first_stage, double max_d,
                                  const QualityGridOptions& options = {});

// Builds the whole stack: result[i] is the curve for stages [i, n). Index 0
// is the full tree; index n-1 is the topmost stage's CDF. All curves share
// the grid [0, max_d].
std::vector<PiecewiseLinear> BuildQualityCurveStack(const TreeSpec& tree, double max_d,
                                                    const QualityGridOptions& options = {});

// One-shot evaluation: maximum expected quality of the whole tree at
// deadline D (q_n(D)).
double MaxExpectedQuality(const TreeSpec& tree, double deadline,
                          const QualityGridOptions& options = {});

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_QUALITY_H_
