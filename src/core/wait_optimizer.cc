#include "src/core/wait_optimizer.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/profiler.h"

namespace cedar {

WaitDecision OptimizeWait(const Distribution& bottom, int fanout,
                          const PiecewiseLinear& upper_quality, double deadline, double epsilon) {
  CEDAR_PROFILE_SCOPE("wait_optimizer.optimize_wait");
  CEDAR_CHECK_GE(fanout, 1);
  CEDAR_CHECK_GT(epsilon, 0.0);
  WaitDecision decision;
  if (deadline <= 0.0) {
    return decision;  // no budget: send immediately, expect nothing
  }

  double q = 0.0;
  double best_q = 0.0;
  double best_wait = 0.0;
  for (double c = 0.0; c < deadline; c += epsilon) {
    double c2 = std::min(c + epsilon, deadline);
    double phi = bottom.Cdf(c);
    double phi2 = bottom.Cdf(c2);
    double phik = std::pow(phi, fanout);
    double gain = (phi2 - phi) * upper_quality(deadline - c2);                   // Eqn 3
    double loss = (phi - phik) * (upper_quality(deadline - c) - upper_quality(deadline - c2));
    q += gain - loss;                                                            // Eqn 4
    if (q >= best_q) {
      best_q = q;
      best_wait = c2;
    }
  }
  decision.wait = best_wait;
  decision.expected_quality = Clamp(best_q, 0.0, 1.0);
  return decision;
}

WaitDecision OptimizeWaitParallel(const Distribution& bottom, int fanout,
                                  const PiecewiseLinear& upper_quality, double deadline,
                                  double epsilon, int threads) {
  CEDAR_CHECK_GE(fanout, 1);
  CEDAR_CHECK_GT(epsilon, 0.0);
  if (threads <= 1 || deadline <= 0.0) {
    return OptimizeWait(bottom, fanout, upper_quality, deadline, epsilon);
  }

  // Enumerate the scan points exactly as the serial loop does.
  auto total_steps = static_cast<size_t>(std::ceil(deadline / epsilon));
  threads = std::min<int>(threads, static_cast<int>(total_steps));

  struct ChunkResult {
    double sum = 0.0;        // total gain - loss over the chunk
    double best_prefix = 0.0;  // max over prefixes of the chunk's partial sums
    double best_wait = 0.0;    // wait (c2) achieving best_prefix
    bool best_set = false;
  };
  std::vector<ChunkResult> chunks(static_cast<size_t>(threads));

  auto worker = [&](int t) {
    size_t begin = total_steps * static_cast<size_t>(t) / static_cast<size_t>(threads);
    size_t end = total_steps * static_cast<size_t>(t + 1) / static_cast<size_t>(threads);
    ChunkResult& chunk = chunks[static_cast<size_t>(t)];
    for (size_t j = begin; j < end; ++j) {
      double c = epsilon * static_cast<double>(j);
      if (c >= deadline) {
        break;
      }
      double c2 = std::min(c + epsilon, deadline);
      double phi = bottom.Cdf(c);
      double phi2 = bottom.Cdf(c2);
      double phik = std::pow(phi, fanout);
      double gain = (phi2 - phi) * upper_quality(deadline - c2);
      double loss = (phi - phik) * (upper_quality(deadline - c) - upper_quality(deadline - c2));
      chunk.sum += gain - loss;
      // ">=" tie rule: later wait wins, as in the serial scan.
      if (!chunk.best_set || chunk.sum >= chunk.best_prefix) {
        chunk.best_prefix = chunk.sum;
        chunk.best_wait = c2;
        chunk.best_set = true;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  for (auto& thread : pool) {
    thread.join();
  }

  // Sequential combine: global prefix max = offset-adjusted chunk maxima.
  WaitDecision decision;
  double offset = 0.0;
  double best_q = 0.0;
  double best_wait = 0.0;
  for (const auto& chunk : chunks) {
    if (chunk.best_set && offset + chunk.best_prefix >= best_q) {
      best_q = offset + chunk.best_prefix;
      best_wait = chunk.best_wait;
    }
    offset += chunk.sum;
  }
  decision.wait = best_wait;
  decision.expected_quality = Clamp(best_q, 0.0, 1.0);
  return decision;
}

TreePlan PlanTree(const TreeSpec& tree, double deadline, const QualityGridOptions& options) {
  CEDAR_PROFILE_SCOPE("wait_optimizer.plan_tree");
  CEDAR_CHECK_GT(deadline, 0.0);
  TreePlan plan;
  auto stack = BuildQualityCurveStack(tree, deadline, options);
  plan.expected_quality = stack[0](deadline);

  double eps = deadline * options.epsilon_fraction;
  double offset = 0.0;
  int tiers = tree.num_aggregator_tiers();
  plan.absolute_waits.reserve(static_cast<size_t>(tiers));
  for (int tier = 0; tier < tiers; ++tier) {
    double remaining = std::max(0.0, deadline - offset);
    WaitDecision decision =
        OptimizeWait(*tree.stage(tier).duration, tree.stage(tier).fanout,
                     stack[static_cast<size_t>(tier + 1)], remaining, eps);
    offset += decision.wait;
    plan.absolute_waits.push_back(offset);
  }
  return plan;
}

}  // namespace cedar
