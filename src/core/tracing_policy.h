// TracingPolicy: a decorator that records every wait decision an inner
// policy makes — the observability hook for debugging aggregator behaviour
// ("why did this aggregator fold at t=412?"). Works with any WaitPolicy and
// any engine; the recorder is shared across clones so a whole tree's
// decisions land in one trace.

#ifndef CEDAR_SRC_CORE_TRACING_POLICY_H_
#define CEDAR_SRC_CORE_TRACING_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

#include "src/core/policy.h"

namespace cedar {

// One recorded decision.
struct WaitDecisionRecord {
  uint64_t query_sequence = 0;
  int tier = 0;
  // Number of arrivals seen when the decision was made (0 = initial).
  int arrivals = 0;
  // Time of the triggering arrival (0 for the initial decision).
  double at_time = 0.0;
  // The decided absolute wait.
  double wait = 0.0;
};

// Thread-safe decision sink shared by all clones of a TracingPolicy.
class DecisionRecorder {
 public:
  void Record(WaitDecisionRecord record);

  // Snapshot of everything recorded so far.
  std::vector<WaitDecisionRecord> Snapshot() const;

  // Decisions of one query, in record order.
  std::vector<WaitDecisionRecord> ForQuery(uint64_t query_sequence) const;

  void Clear();
  size_t size() const;

  // Writes the trace as CSV (query,tier,arrivals,at_time,wait).
  void WriteCsv(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  std::vector<WaitDecisionRecord> records_ CEDAR_GUARDED_BY(mutex_);
};

// Wraps |inner|; delegates every call and records the resulting waits into
// |recorder| (not owned; must outlive all clones).
class TracingPolicy final : public WaitPolicy {
 public:
  TracingPolicy(std::unique_ptr<WaitPolicy> inner, DecisionRecorder* recorder);

  std::string name() const override { return inner_->name(); }
  std::unique_ptr<WaitPolicy> Clone() const override;
  // Forks the inner policy detached but keeps the (thread-safe) recorder, so
  // a whole parallel experiment still lands in one trace. Record order across
  // queries then follows scheduling; group with DecisionRecorder::ForQuery.
  std::unique_ptr<WaitPolicy> ForkForWorker() const override;
  void BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
  double OnArrival(const AggregatorContext& ctx, double arrival_time,
                   const std::vector<double>& arrivals) override;

 private:
  std::unique_ptr<WaitPolicy> inner_;
  DecisionRecorder* recorder_;
  uint64_t query_sequence_ = 0;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_TRACING_POLICY_H_
