#include "src/core/wait_table.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/math_util.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace cedar {
namespace {

std::unique_ptr<Distribution> MakeParameterized(DistributionFamily family, double location,
                                                double scale) {
  DistributionSpec spec;
  spec.family = family;
  spec.p1 = location;
  spec.p2 = scale;
  return MakeDistribution(spec);
}

}  // namespace

WaitTable::WaitTable(WaitTableSpec spec, int fanout, const PiecewiseLinear& upper_quality,
                     double deadline, double epsilon, ThreadPool* build_pool)
    : spec_(spec), deadline_(deadline) {
  CEDAR_PROFILE_SCOPE("wait_table.build");
  CEDAR_CHECK_GE(spec_.location_points, 2);
  CEDAR_CHECK_GE(spec_.scale_points, 2);
  CEDAR_CHECK_LT(spec_.location_min, spec_.location_max);
  CEDAR_CHECK_LT(spec_.scale_min, spec_.scale_max);
  CEDAR_CHECK_GT(spec_.scale_min, 0.0);
  CEDAR_CHECK(spec_.family == DistributionFamily::kLogNormal ||
              spec_.family == DistributionFamily::kNormal)
      << "wait tables support the location-scale families the learner fits";

  const size_t total =
      static_cast<size_t>(spec_.location_points) * static_cast<size_t>(spec_.scale_points);
  waits_.resize(total);
  if (MetricsEnabled()) {
    // Every build counts here, store-resolved or private: "wait_table.builds"
    // is the total-table-build-work measure the store microbench compares.
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("wait_table.builds").Increment();
    registry.GetCounter("wait_table.grid_points").Increment(static_cast<long long>(total));
  }

  // Each grid point is an independent CalculateWait scan writing its own
  // slot, so filling chunks concurrently is bit-identical to the serial
  // double loop for any thread count (and with no pool at all).
  auto fill = [&](long long begin, long long end, int /*chunk*/) {
    for (long long cell = begin; cell < end; ++cell) {
      const int li = static_cast<int>(cell / spec_.scale_points);
      const int si = static_cast<int>(cell % spec_.scale_points);
      double location = Lerp(spec_.location_min, spec_.location_max,
                             static_cast<double>(li) / (spec_.location_points - 1));
      double scale = Lerp(spec_.scale_min, spec_.scale_max,
                          static_cast<double>(si) / (spec_.scale_points - 1));
      auto dist = MakeParameterized(spec_.family, location, scale);
      At(li, si) = OptimizeWait(*dist, fanout, upper_quality, deadline, epsilon).wait;
    }
  };
  const int chunks = build_pool != nullptr ? build_pool->num_threads() * 4 : 1;
  ParallelForChunksShared(build_pool, static_cast<long long>(total), chunks, fill);
}

double WaitTable::Lookup(double location, double scale) const {
  double lpos = (location - spec_.location_min) / (spec_.location_max - spec_.location_min) *
                (spec_.location_points - 1);
  double spos =
      (scale - spec_.scale_min) / (spec_.scale_max - spec_.scale_min) * (spec_.scale_points - 1);
  if (lpos < 0.0 || lpos > spec_.location_points - 1 || spos < 0.0 ||
      spos > spec_.scale_points - 1) {
    clamped_lookups_.fetch_add(1, std::memory_order_relaxed);
  }
  lpos = Clamp(lpos, 0.0, static_cast<double>(spec_.location_points - 1));
  spos = Clamp(spos, 0.0, static_cast<double>(spec_.scale_points - 1));

  int l0 = static_cast<int>(lpos);
  int s0 = static_cast<int>(spos);
  int l1 = std::min(l0 + 1, spec_.location_points - 1);
  int s1 = std::min(s0 + 1, spec_.scale_points - 1);
  double lf = lpos - l0;
  double sf = spos - s0;

  double low = Lerp(At(l0, s0), At(l0, s1), sf);
  double high = Lerp(At(l1, s0), At(l1, s1), sf);
  return Lerp(low, high, lf);
}

double WaitTable::LookupSpec(const DistributionSpec& fitted) const {
  CEDAR_CHECK(fitted.family == spec_.family)
      << "wait table family mismatch: " << DistributionFamilyName(fitted.family) << " vs "
      << DistributionFamilyName(spec_.family);
  return Lookup(fitted.p1, fitted.p2);
}

}  // namespace cedar
