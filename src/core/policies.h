// Concrete wait policies.
//
//  * FixedWaitPolicy        — constant absolute wait (unit tests, ablations)
//  * EqualSplitPolicy       — deadline divided evenly across stages (§3 fn 3)
//  * ProportionalSplitPolicy— the paper's main baseline: deadline split in
//                             proportion to the offline stage means (§3)
//  * MeanSubtractPolicy     — deadline minus the mean of the upper stages
//                             (the other straw-man in §3 footnote 3)
//  * OfflineOptimalPolicy   — CalculateWait on the offline distributions; no
//                             online learning ("Cedar w/o online learning",
//                             Figure 11, and the Cosmos regime of Figure 15)
//  * CedarPolicy            — the full system: offline plan + per-query
//                             online order-statistics learning at the
//                             learning tiers, re-optimizing on arrivals
//  * OraclePolicy           — the "Ideal" scheme: knows the query's true
//                             distributions a priori, plans optimally
//
// All policies are deterministic given their inputs.

#ifndef CEDAR_SRC_CORE_POLICIES_H_
#define CEDAR_SRC_CORE_POLICIES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

#include "src/core/online_learner.h"
#include "src/core/policy.h"
#include "src/core/wait_optimizer.h"
#include "src/core/wait_table.h"
#include "src/core/wait_table_store.h"

namespace cedar {

// Stateless between queries: Clone() shares nothing mutable, so the default
// ForkForWorker (= Clone) is already detached.
class FixedWaitPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  explicit FixedWaitPolicy(double absolute_wait);

  std::string name() const override { return "fixed"; }
  std::unique_ptr<WaitPolicy> Clone() const override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;

 private:
  double absolute_wait_;
};

// Stateless; default fork is detached (see FixedWaitPolicy).
class EqualSplitPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  std::string name() const override { return "equal-split"; }
  std::unique_ptr<WaitPolicy> Clone() const override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
};

// Stateless; default fork is detached (see FixedWaitPolicy).
class ProportionalSplitPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  std::string name() const override { return "prop-split"; }
  std::unique_ptr<WaitPolicy> Clone() const override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
};

// Stateless; default fork is detached (see FixedWaitPolicy).
class MeanSubtractPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  std::string name() const override { return "mean-subtract"; }
  std::unique_ptr<WaitPolicy> Clone() const override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
};

// Stateless; default fork is detached (see FixedWaitPolicy).
class OfflineOptimalPolicy final : public WaitPolicy {  // cedar-lint: allow(fork-override)
 public:
  std::string name() const override { return "cedar-offline"; }
  std::unique_ptr<WaitPolicy> Clone() const override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
};

struct CedarPolicyOptions {
  OnlineLearnerOptions learner;

  // Re-run CalculateWait every n-th arrival once min_samples is reached
  // (1 = every arrival, as in Pseudocode 1).
  int reoptimize_every = 1;

  // Only this tier learns online; upper tiers use the offline optimum. The
  // paper learns the bottom stage per query and fits upper stages offline
  // (§4.1). Set to -1 to learn at every tier.
  int learning_tier = 0;

  // §4.3.3 fast path: replace the per-arrival CalculateWait scan with a
  // bilinear lookup in a precomputed wait table over the learner's fitted
  // (location, scale) grid. The table is built once per upper-quality curve
  // and shared across all cloned aggregators; out-of-grid fits clamp to the
  // table edge. table_spec.family must match learner.family.
  bool use_wait_table = false;
  WaitTableSpec table_spec;

  // Resolve tables through the shared fingerprint-keyed WaitTableStore, so
  // worker forks (and whole sweeps) amortize builds instead of each keeping
  // a private TableCache. Tables are read-only and content-keyed, so results
  // are bit-identical either way; disable only to measure the un-amortized
  // baseline or to isolate a run from the process-wide store.
  bool share_wait_tables = true;
  // Store to use when sharing; null resolves ctx.table_store, then Global().
  WaitTableStore* table_store = nullptr;
};

class CedarPolicy final : public WaitPolicy {
 public:
  explicit CedarPolicy(CedarPolicyOptions options = {});

  std::string name() const override {
    return options_.learner.use_empirical_estimates ? "cedar-empirical" : "cedar";
  }
  std::unique_ptr<WaitPolicy> Clone() const override;
  // A worker fork shares no mutable policy state: with the shared store
  // (default) the fork re-resolves tables through the store — which is what
  // lets N workers amortize one build — and with share_wait_tables=false it
  // gets its own detached TableCache.
  std::unique_ptr<WaitPolicy> ForkForWorker() const override;
  void BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) override;

  // Exposes the learner's current fit (tests and diagnostics).
  const OnlineLearner* learner() const { return learner_ ? learner_.get() : nullptr; }

 protected:
  double InitialWait(const AggregatorContext& ctx) override;
  double OnArrival(const AggregatorContext& ctx, double arrival_time,
                   const std::vector<double>& arrivals) override;

 private:
  bool LearnsAt(int tier) const {
    return options_.learning_tier < 0 || tier == options_.learning_tier;
  }

  // Store-off fallback, shared across clones: the precomputed wait table for
  // the current upper curve. The cache remembers which query it was last
  // validated for; when a new query shows up it re-validates by curve
  // *content*, never by address alone — per-query curve stacks are freed
  // between queries, so a recycled allocation can otherwise alias a stale
  // table. Worker threads never share a cache (ForkForWorker() detaches it);
  // the mutex covers the one-prototype-many-node-clones sharing within a
  // query. Allocated only when use_wait_table && !share_wait_tables.
  struct TableCache {
    Mutex mutex;
    uint64_t sequence CEDAR_GUARDED_BY(mutex) = 0;  // query last validated for (0 = none)
    const void* curve_key CEDAR_GUARDED_BY(mutex) = nullptr;
    double deadline CEDAR_GUARDED_BY(mutex) = 0.0;
    // Content fingerprint of the curve.
    std::vector<double> curve_ys CEDAR_GUARDED_BY(mutex);
    double curve_min_x CEDAR_GUARDED_BY(mutex) = 0.0;
    double curve_max_x CEDAR_GUARDED_BY(mutex) = 0.0;
    std::unique_ptr<WaitTable> table CEDAR_GUARDED_BY(mutex);
  };

  const WaitTable& TableFor(const AggregatorContext& ctx);
  const WaitTable& StoreTableFor(WaitTableStore& store, const AggregatorContext& ctx);

  // The store this instance resolves tables through, or null when the run
  // (or the options) opted out of sharing.
  WaitTableStore* ResolveStore(const AggregatorContext& ctx) const;

  CedarPolicyOptions options_;
  std::unique_ptr<OnlineLearner> learner_;
  std::shared_ptr<TableCache> table_cache_;

  // Per-instance memo of the last store-resolved table. Instances are owned
  // by exactly one aggregator node (no concurrent callers), so no mutex: the
  // memo just keeps the common per-arrival path at one deadline compare and
  // one sequence compare instead of a store lookup.
  WaitTableStore::TablePtr store_table_;
  WaitTableKey store_key_;
  uint64_t store_sequence_ = 0;  // query the memo was last validated for

  uint64_t query_sequence_ = 0;
  int effective_min_samples_ = 2;
  int arrivals_since_reopt_ = 0;
};

// The Ideal scheme. All clones share a per-query plan cache so the plan for
// one query's truth is computed once even though every aggregator node owns
// its own policy instance.
class OraclePolicy final : public WaitPolicy {
 public:
  OraclePolicy();

  std::string name() const override { return "ideal"; }
  std::unique_ptr<WaitPolicy> Clone() const override;
  // A worker fork gets its own plan cache: the cache is keyed by the query
  // sequence in flight, which differs across concurrent workers.
  std::unique_ptr<WaitPolicy> ForkForWorker() const override;
  void BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth) override;

 protected:
  double InitialWait(const AggregatorContext& ctx) override;

 private:
  struct PlanCache {
    Mutex mutex;
    uint64_t sequence CEDAR_GUARDED_BY(mutex) = 0;  // 0 = empty/never reuse
    double deadline CEDAR_GUARDED_BY(mutex) = 0.0;
    TreePlan plan CEDAR_GUARDED_BY(mutex);
  };

  std::shared_ptr<PlanCache> cache_;
  const QueryTruth* truth_ = nullptr;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_POLICIES_H_
