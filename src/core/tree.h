// Aggregation-tree topology and stage-duration specification (Figure 5 and
// Table 1 of the paper).
//
// A tree has n stages, indexed bottom-up from 0. Stage i describes the
// transfer from level-i nodes to their parents: stage 0 is the process
// durations X1, stage n-1 is the topmost aggregators' combine-and-ship
// durations Xn arriving at the root. Fanout k_i is the number of stage-i
// children per parent. Aggregator *tiers* sit above stages 0..n-2; the root
// simply enforces the deadline D on stage n-1 arrivals.

#ifndef CEDAR_SRC_CORE_TREE_H_
#define CEDAR_SRC_CORE_TREE_H_

#include <memory>
#include <string>
#include <vector>
#include <utility>

#include "src/stats/distribution.h"

namespace cedar {

// One stage of the tree. The distribution pointer is shared because the same
// offline distribution object is referenced by every query and policy.
struct StageSpec {
  std::shared_ptr<const Distribution> duration;
  int fanout = 0;

  StageSpec() = default;
  StageSpec(std::shared_ptr<const Distribution> d, int k) : duration(std::move(d)), fanout(k) {}
};

// The full tree: stages[0] is the bottom (process) stage.
class TreeSpec {
 public:
  TreeSpec() = default;
  explicit TreeSpec(std::vector<StageSpec> stages);

  // Convenience for the common two-level case (X1/k1, X2/k2).
  static TreeSpec TwoLevel(std::shared_ptr<const Distribution> x1, int k1,
                           std::shared_ptr<const Distribution> x2, int k2);

  int num_stages() const { return static_cast<int>(stages_.size()); }

  // Number of aggregator tiers that make a wait decision (= n - 1).
  int num_aggregator_tiers() const { return num_stages() - 1; }

  const StageSpec& stage(int i) const;
  const std::vector<StageSpec>& stages() const { return stages_; }

  // Total number of leaf processes: product of all fanouts.
  long long TotalProcesses() const;

  // Number of aggregators at tier |tier| (tier 0 aggregates stage-0
  // outputs): product of fanouts of stages above it.
  long long AggregatorsAtTier(int tier) const;

  // Sum of stage means (used by the Proportional-split baseline).
  double SumOfStageMeans() const;

  // Returns a copy with stage |i| replaced (used by per-query truth overlays).
  TreeSpec WithStage(int i, StageSpec stage) const;

  std::string ToString() const;

 private:
  std::vector<StageSpec> stages_;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_TREE_H_
