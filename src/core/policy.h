// WaitPolicy: the decision interface every aggregator consults (Pseudocode 1
// hooks). A policy instance is owned by exactly one aggregator node; fresh
// instances are made with Clone() and per-query state is reset by
// BeginQuery().
//
// Decisions are expressed as an *absolute send time* measured from query
// start, which keeps multi-tier trees consistent: a tier-i aggregator's
// children were dispatched at the planned send time of tier i-1
// (ctx.start_offset), and the root enforces the global deadline D.

#ifndef CEDAR_SRC_CORE_POLICY_H_
#define CEDAR_SRC_CORE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/math_util.h"
#include "src/core/tree.h"

namespace cedar {

class WaitTableStore;

// True per-query stage distributions, available only to the Oracle/Ideal
// policy (and to metric code). stage_durations.size() == tree.num_stages().
struct QueryTruth {
  std::vector<std::shared_ptr<const Distribution>> stage_durations;

  // Monotone per-query identifier assigned by the experiment driver; lets
  // per-query caches (OraclePolicy's plan cache) distinguish queries whose
  // QueryTruth objects happen to reuse the same address. 0 means "unknown":
  // caches must then recompute every time.
  uint64_t sequence = 0;

  // Materializes a TreeSpec with these distributions and |base|'s fanouts.
  TreeSpec OverlayOn(const TreeSpec& base) const;
};

// Everything a policy may consult when deciding. The pointers reference
// simulation-owned storage that outlives the policy call.
struct AggregatorContext {
  // Aggregator tier: 0 aggregates process outputs (stage 0).
  int tier = 0;
  // End-to-end deadline D at the root.
  double deadline = 0.0;
  // Planned absolute time at which this aggregator's children were
  // dispatched (0 for tier 0).
  double start_offset = 0.0;
  // Number of children (k_{tier+1} in paper notation).
  int fanout = 0;
  // Offline/global tree spec: what the system learned from completed
  // queries. Never the current query's truth.
  const TreeSpec* offline_tree = nullptr;
  // Offline quality curve q of the stages above this tier, tabulated on
  // [0, D] (for a two-level tree at tier 0: the CDF of X2).
  const PiecewiseLinear* upper_quality = nullptr;
  // Scan step for CalculateWait.
  double epsilon = 0.0;
  // Experiment-scoped wait-table store, set by the driver when the run wants
  // a specific (usually test- or bench-local) store instead of the process
  // Global(). Null means "policy default".
  WaitTableStore* table_store = nullptr;
};

class WaitPolicy {
 public:
  virtual ~WaitPolicy() = default;

  // Stable identifier used in tables ("cedar", "prop-split", ...).
  virtual std::string name() const = 0;

  virtual std::unique_ptr<WaitPolicy> Clone() const = 0;

  // Creates an independent replica for a concurrent experiment shard. Unlike
  // Clone() — whose instances may *share* mutable per-query caches so that
  // all aggregator nodes of one query reuse one plan — a forked replica must
  // share no mutable state with the source, so two worker threads can run
  // different queries through their forks without synchronizing. Policies
  // whose clones are already state-free inherit this default.
  virtual std::unique_ptr<WaitPolicy> ForkForWorker() const { return Clone(); }

  // Called once per query before any arrival. |truth| carries the current
  // query's true distributions and is null unless the experiment grants the
  // policy oracle knowledge.
  virtual void BeginQuery(const AggregatorContext& ctx, const QueryTruth* truth);

  // Non-virtual entry points used by the simulators; they keep the last
  // decision cached so subclasses that never reconsider only implement
  // InitialWait().

  // Absolute send time decided before any arrivals.
  double DecideInitialWait(const AggregatorContext& ctx);

  // Notification of one child output arriving at |arrival_time| (absolute);
  // |arrivals| holds all arrivals so far in ascending order, including this
  // one. Returns the (possibly updated) absolute send time.
  double DecideOnArrival(const AggregatorContext& ctx, double arrival_time,
                         const std::vector<double>& arrivals);

  double current_wait() const { return current_wait_; }

 protected:
  virtual double InitialWait(const AggregatorContext& ctx) = 0;

  // Default: keep the previous decision.
  virtual double OnArrival(const AggregatorContext& ctx, double arrival_time,
                           const std::vector<double>& arrivals);

  double current_wait_ = 0.0;
};

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_POLICY_H_
