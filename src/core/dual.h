// The dual problem (§6 of the paper): instead of maximizing quality under a
// fixed deadline, find the smallest deadline whose maximum expected quality
// reaches a target x%. Cedar's machinery solves this directly because
// q_n(D) is monotone non-decreasing in D.

#ifndef CEDAR_SRC_CORE_DUAL_H_
#define CEDAR_SRC_CORE_DUAL_H_

#include "src/core/quality.h"
#include "src/core/tree.h"

namespace cedar {

struct DualSolution {
  // Smallest deadline found with q_n(deadline) >= target_quality.
  double deadline = 0.0;
  // q_n at that deadline.
  double achieved_quality = 0.0;
  // False if even |max_deadline| cannot reach the target.
  bool feasible = false;
};

// Binary-searches D in (0, max_deadline] for the minimum deadline with
// q_n(D) >= target_quality (target in (0, 1)). |tolerance| is the relative
// precision of the returned deadline.
DualSolution SolveDeadlineForQuality(const TreeSpec& tree, double target_quality,
                                     double max_deadline, double tolerance = 1e-3,
                                     const QualityGridOptions& options = {});

}  // namespace cedar

#endif  // CEDAR_SRC_CORE_DUAL_H_
