#include "src/core/online_learner.h"

#include "src/common/logging.h"
#include "src/obs/profiler.h"

namespace cedar {

OnlineLearner::OnlineLearner(int fanout, OnlineLearnerOptions options)
    : fanout_(fanout), options_(options) {
  CEDAR_CHECK_GE(fanout, 1);
  CEDAR_CHECK_GE(options_.min_samples, 2) << "pairwise estimation needs >= 2 samples";
}

void OnlineLearner::Observe(double arrival_time) {
  CEDAR_CHECK_LT(num_observations(), fanout_) << "more arrivals than fanout";
  if (!arrivals_.empty()) {
    CEDAR_CHECK_GE(arrival_time, arrivals_.back()) << "arrival times must be non-decreasing";
  }
  arrivals_.push_back(arrival_time);
  fit_valid_ = false;
}

std::optional<DistributionSpec> OnlineLearner::CurrentFit() const {
  if (fit_valid_) {
    return cached_fit_;
  }
  fit_valid_ = true;
  cached_fit_ = std::nullopt;
  if (num_observations() < options_.min_samples) {
    return cached_fit_;
  }
  // Only the recompute path is timed; cache hits return above.
  CEDAR_PROFILE_SCOPE("online_learner.fit");
  if (options_.use_empirical_estimates) {
    cached_fit_ = FitSpecEmpirical(options_.family, arrivals_);
  } else {
    cached_fit_ =
        FitSpecFromOrderStats(options_.family, arrivals_, fanout_, options_.score_method);
  }
  return cached_fit_;
}

std::unique_ptr<Distribution> OnlineLearner::CurrentDistribution() const {
  auto fit = CurrentFit();
  if (!fit.has_value()) {
    return nullptr;
  }
  return MakeDistribution(*fit);
}

void OnlineLearner::Reset() {
  arrivals_.clear();
  fit_valid_ = false;
  cached_fit_ = std::nullopt;
}

}  // namespace cedar
